//! `ares` — distributed sociometric sensing and mission support for space
//! habitats.
//!
//! A comprehensive Rust reproduction of *"30 Sensors to Mars: Toward
//! Distributed Support Systems for Astronauts in Space Habitats"*
//! (ICDCS 2019). The original system — custom wearable sociometric badges,
//! 27 BLE beacons, and an offline analysis pipeline deployed during the
//! two-week ICAres-1 analog Mars mission — depended on proprietary hardware
//! and a one-off human study; this workspace rebuilds every layer in
//! simulation and validates the pipeline against known ground truth:
//!
//! * [`simkit`] — deterministic discrete-event kernel (time, events, RNG,
//!   clocks, geometry, intervals).
//! * [`habitat`] — the Lunares-class floor plan, RF propagation, beacons and
//!   environment.
//! * [`crew`] — the six-astronaut behaviour simulator with the mission's
//!   scripted incidents.
//! * [`scenario`] — seeded scenario generation and the habitat-layout
//!   validator; the canonical world is one spec among many.
//! * [`badge`] — the badge device model: sensors, radios, drifting clocks,
//!   storage and power.
//! * [`sociometrics`] — **the core contribution**: the offline pipeline that
//!   turns badge logs into the paper's findings.
//! * [`support`] — the Section VI mission-support runtime: failover, Earth
//!   link, alerts, approvals, privacy, resources.
//! * [`icares`] — the end-to-end scenario, figure generators and calibration
//!   checks.
//!
//! # Quick start
//!
//! ```no_run
//! use ares::icares::MissionRunner;
//!
//! let runner = MissionRunner::icares();
//! let (_recording, analysis) = runner.run_day(3);
//! println!("{} meetings detected", analysis.meetings.len());
//! ```

pub use ares_badge as badge;
pub use ares_crew as crew;
pub use ares_habitat as habitat;
pub use ares_icares as icares;
pub use ares_scenario as scenario;
pub use ares_simkit as simkit;
pub use ares_sociometrics as sociometrics;
pub use ares_support as support;
