/root/repo/target/debug/deps/fig2-b4acc7f0a9c9a0c7.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-b4acc7f0a9c9a0c7: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
