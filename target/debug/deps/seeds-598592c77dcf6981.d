/root/repo/target/debug/deps/seeds-598592c77dcf6981.d: crates/bench/src/bin/seeds.rs Cargo.toml

/root/repo/target/debug/deps/libseeds-598592c77dcf6981.rmeta: crates/bench/src/bin/seeds.rs Cargo.toml

crates/bench/src/bin/seeds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
