/root/repo/target/debug/deps/bytes-bb6efe2f7661e3c8.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-bb6efe2f7661e3c8.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
