/root/repo/target/debug/deps/fig5-314e45b5c16d01d3.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-314e45b5c16d01d3: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
