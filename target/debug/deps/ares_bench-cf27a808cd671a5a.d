/root/repo/target/debug/deps/ares_bench-cf27a808cd671a5a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ares_bench-cf27a808cd671a5a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
