/root/repo/target/debug/deps/stats-1dc3c22aef72bbe1.d: crates/bench/src/bin/stats.rs Cargo.toml

/root/repo/target/debug/deps/libstats-1dc3c22aef72bbe1.rmeta: crates/bench/src/bin/stats.rs Cargo.toml

crates/bench/src/bin/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
