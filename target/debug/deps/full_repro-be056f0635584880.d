/root/repo/target/debug/deps/full_repro-be056f0635584880.d: crates/bench/src/bin/full_repro.rs

/root/repo/target/debug/deps/full_repro-be056f0635584880: crates/bench/src/bin/full_repro.rs

crates/bench/src/bin/full_repro.rs:
