/root/repo/target/debug/deps/tmp_probe-2616b19f624b4878.d: tests/tmp_probe.rs

/root/repo/target/debug/deps/tmp_probe-2616b19f624b4878: tests/tmp_probe.rs

tests/tmp_probe.rs:
