/root/repo/target/debug/deps/table1-5b041d3f3ebd876b.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5b041d3f3ebd876b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
