/root/repo/target/debug/deps/rand_distr-7bf29abd592e04c1.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-7bf29abd592e04c1.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-7bf29abd592e04c1.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
