/root/repo/target/debug/deps/streaming_equivalence-fcb95a9331a274cd.d: tests/streaming_equivalence.rs

/root/repo/target/debug/deps/streaming_equivalence-fcb95a9331a274cd: tests/streaming_equivalence.rs

tests/streaming_equivalence.rs:
