/root/repo/target/debug/deps/probe-04125ef3e4a3d554.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-04125ef3e4a3d554: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
