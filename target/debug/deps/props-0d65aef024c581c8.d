/root/repo/target/debug/deps/props-0d65aef024c581c8.d: crates/support/tests/props.rs

/root/repo/target/debug/deps/props-0d65aef024c581c8: crates/support/tests/props.rs

crates/support/tests/props.rs:
