/root/repo/target/debug/deps/ares_bench-a73c0ad101d521ce.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libares_bench-a73c0ad101d521ce.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libares_bench-a73c0ad101d521ce.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
