/root/repo/target/debug/deps/seeds-78dd670b2780f1c3.d: crates/bench/src/bin/seeds.rs Cargo.toml

/root/repo/target/debug/deps/libseeds-78dd670b2780f1c3.rmeta: crates/bench/src/bin/seeds.rs Cargo.toml

crates/bench/src/bin/seeds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
