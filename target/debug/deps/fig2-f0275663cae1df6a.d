/root/repo/target/debug/deps/fig2-f0275663cae1df6a.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-f0275663cae1df6a: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
