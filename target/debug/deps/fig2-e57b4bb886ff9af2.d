/root/repo/target/debug/deps/fig2-e57b4bb886ff9af2.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-e57b4bb886ff9af2: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
