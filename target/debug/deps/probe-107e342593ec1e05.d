/root/repo/target/debug/deps/probe-107e342593ec1e05.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-107e342593ec1e05: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
