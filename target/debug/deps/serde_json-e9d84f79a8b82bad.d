/root/repo/target/debug/deps/serde_json-e9d84f79a8b82bad.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-e9d84f79a8b82bad.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-e9d84f79a8b82bad.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
