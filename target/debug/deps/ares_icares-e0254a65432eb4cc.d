/root/repo/target/debug/deps/ares_icares-e0254a65432eb4cc.d: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

/root/repo/target/debug/deps/ares_icares-e0254a65432eb4cc: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

crates/icares/src/lib.rs:
crates/icares/src/calibration.rs:
crates/icares/src/export.rs:
crates/icares/src/figures.rs:
crates/icares/src/scenario.rs:
