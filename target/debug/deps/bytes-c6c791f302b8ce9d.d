/root/repo/target/debug/deps/bytes-c6c791f302b8ce9d.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c6c791f302b8ce9d.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c6c791f302b8ce9d.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
