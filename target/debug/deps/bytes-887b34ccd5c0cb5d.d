/root/repo/target/debug/deps/bytes-887b34ccd5c0cb5d.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-887b34ccd5c0cb5d: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
