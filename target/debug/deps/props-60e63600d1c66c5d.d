/root/repo/target/debug/deps/props-60e63600d1c66c5d.d: crates/simkit/tests/props.rs

/root/repo/target/debug/deps/props-60e63600d1c66c5d: crates/simkit/tests/props.rs

crates/simkit/tests/props.rs:
