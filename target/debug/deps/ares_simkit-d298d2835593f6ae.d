/root/repo/target/debug/deps/ares_simkit-d298d2835593f6ae.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libares_simkit-d298d2835593f6ae.rlib: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libares_simkit-d298d2835593f6ae.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/event.rs:
crates/simkit/src/geometry.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
