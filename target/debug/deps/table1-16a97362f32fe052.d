/root/repo/target/debug/deps/table1-16a97362f32fe052.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-16a97362f32fe052: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
