/root/repo/target/debug/deps/parallel_determinism-50727ceb9a4f134b.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-50727ceb9a4f134b: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
