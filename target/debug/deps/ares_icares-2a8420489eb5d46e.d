/root/repo/target/debug/deps/ares_icares-2a8420489eb5d46e.d: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

/root/repo/target/debug/deps/libares_icares-2a8420489eb5d46e.rlib: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

/root/repo/target/debug/deps/libares_icares-2a8420489eb5d46e.rmeta: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

crates/icares/src/lib.rs:
crates/icares/src/calibration.rs:
crates/icares/src/export.rs:
crates/icares/src/figures.rs:
crates/icares/src/scenario.rs:
