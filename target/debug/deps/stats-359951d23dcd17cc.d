/root/repo/target/debug/deps/stats-359951d23dcd17cc.d: crates/bench/src/bin/stats.rs Cargo.toml

/root/repo/target/debug/deps/libstats-359951d23dcd17cc.rmeta: crates/bench/src/bin/stats.rs Cargo.toml

crates/bench/src/bin/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
