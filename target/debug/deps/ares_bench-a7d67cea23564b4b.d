/root/repo/target/debug/deps/ares_bench-a7d67cea23564b4b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libares_bench-a7d67cea23564b4b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libares_bench-a7d67cea23564b4b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
