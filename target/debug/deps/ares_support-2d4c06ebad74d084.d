/root/repo/target/debug/deps/ares_support-2d4c06ebad74d084.d: crates/support/src/lib.rs crates/support/src/accessibility.rs crates/support/src/alerts.rs crates/support/src/approval.rs crates/support/src/bus.rs crates/support/src/chaos.rs crates/support/src/earthlink.rs crates/support/src/failover.rs crates/support/src/privacy.rs crates/support/src/resources.rs crates/support/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libares_support-2d4c06ebad74d084.rmeta: crates/support/src/lib.rs crates/support/src/accessibility.rs crates/support/src/alerts.rs crates/support/src/approval.rs crates/support/src/bus.rs crates/support/src/chaos.rs crates/support/src/earthlink.rs crates/support/src/failover.rs crates/support/src/privacy.rs crates/support/src/resources.rs crates/support/src/runtime.rs Cargo.toml

crates/support/src/lib.rs:
crates/support/src/accessibility.rs:
crates/support/src/alerts.rs:
crates/support/src/approval.rs:
crates/support/src/bus.rs:
crates/support/src/chaos.rs:
crates/support/src/earthlink.rs:
crates/support/src/failover.rs:
crates/support/src/privacy.rs:
crates/support/src/resources.rs:
crates/support/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
