/root/repo/target/debug/deps/rand-7a6b71d223132674.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-7a6b71d223132674.rlib: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-7a6b71d223132674.rmeta: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
