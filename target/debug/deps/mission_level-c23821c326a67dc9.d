/root/repo/target/debug/deps/mission_level-c23821c326a67dc9.d: tests/mission_level.rs

/root/repo/target/debug/deps/mission_level-c23821c326a67dc9: tests/mission_level.rs

tests/mission_level.rs:
