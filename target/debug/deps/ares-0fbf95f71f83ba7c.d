/root/repo/target/debug/deps/ares-0fbf95f71f83ba7c.d: src/lib.rs

/root/repo/target/debug/deps/ares-0fbf95f71f83ba7c: src/lib.rs

src/lib.rs:
