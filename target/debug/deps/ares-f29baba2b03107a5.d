/root/repo/target/debug/deps/ares-f29baba2b03107a5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libares-f29baba2b03107a5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
