/root/repo/target/debug/deps/ares-4e8a6c29dd4ae401.d: src/lib.rs

/root/repo/target/debug/deps/libares-4e8a6c29dd4ae401.rlib: src/lib.rs

/root/repo/target/debug/deps/libares-4e8a6c29dd4ae401.rmeta: src/lib.rs

src/lib.rs:
