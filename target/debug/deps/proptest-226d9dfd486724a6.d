/root/repo/target/debug/deps/proptest-226d9dfd486724a6.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-226d9dfd486724a6.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-226d9dfd486724a6.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
