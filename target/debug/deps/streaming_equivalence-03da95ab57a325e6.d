/root/repo/target/debug/deps/streaming_equivalence-03da95ab57a325e6.d: tests/streaming_equivalence.rs

/root/repo/target/debug/deps/streaming_equivalence-03da95ab57a325e6: tests/streaming_equivalence.rs

tests/streaming_equivalence.rs:
