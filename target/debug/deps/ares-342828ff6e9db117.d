/root/repo/target/debug/deps/ares-342828ff6e9db117.d: src/lib.rs

/root/repo/target/debug/deps/ares-342828ff6e9db117: src/lib.rs

src/lib.rs:
