/root/repo/target/debug/deps/fig6-cb90a68a68e988d0.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-cb90a68a68e988d0: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
