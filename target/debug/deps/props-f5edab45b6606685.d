/root/repo/target/debug/deps/props-f5edab45b6606685.d: crates/habitat/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-f5edab45b6606685.rmeta: crates/habitat/tests/props.rs Cargo.toml

crates/habitat/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
