/root/repo/target/debug/deps/fig3-114df264a6bfd23c.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-114df264a6bfd23c: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
