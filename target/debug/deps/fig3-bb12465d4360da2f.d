/root/repo/target/debug/deps/fig3-bb12465d4360da2f.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-bb12465d4360da2f: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
