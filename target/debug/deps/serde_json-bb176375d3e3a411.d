/root/repo/target/debug/deps/serde_json-bb176375d3e3a411.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-bb176375d3e3a411: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
