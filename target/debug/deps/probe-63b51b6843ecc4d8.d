/root/repo/target/debug/deps/probe-63b51b6843ecc4d8.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-63b51b6843ecc4d8: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
