/root/repo/target/debug/deps/fig5-b353b624aefb5a84.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-b353b624aefb5a84: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
