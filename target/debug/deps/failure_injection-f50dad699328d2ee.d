/root/repo/target/debug/deps/failure_injection-f50dad699328d2ee.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-f50dad699328d2ee: tests/failure_injection.rs

tests/failure_injection.rs:
