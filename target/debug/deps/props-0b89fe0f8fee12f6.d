/root/repo/target/debug/deps/props-0b89fe0f8fee12f6.d: crates/crew/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-0b89fe0f8fee12f6.rmeta: crates/crew/tests/props.rs Cargo.toml

crates/crew/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
