/root/repo/target/debug/deps/chaos-b363be03f51b82e8.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/chaos-b363be03f51b82e8: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
