/root/repo/target/debug/deps/ares_bench-62c36e4a2711f5d2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ares_bench-62c36e4a2711f5d2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
