/root/repo/target/debug/deps/proptest-9b35b326dae84b2c.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-9b35b326dae84b2c: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
