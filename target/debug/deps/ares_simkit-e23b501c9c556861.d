/root/repo/target/debug/deps/ares_simkit-e23b501c9c556861.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/ares_simkit-e23b501c9c556861: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/event.rs:
crates/simkit/src/geometry.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
