/root/repo/target/debug/deps/seeds-78c4bef59a80e0b4.d: crates/bench/src/bin/seeds.rs

/root/repo/target/debug/deps/seeds-78c4bef59a80e0b4: crates/bench/src/bin/seeds.rs

crates/bench/src/bin/seeds.rs:
