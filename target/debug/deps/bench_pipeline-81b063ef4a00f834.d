/root/repo/target/debug/deps/bench_pipeline-81b063ef4a00f834.d: crates/bench/src/bin/bench_pipeline.rs

/root/repo/target/debug/deps/bench_pipeline-81b063ef4a00f834: crates/bench/src/bin/bench_pipeline.rs

crates/bench/src/bin/bench_pipeline.rs:
