/root/repo/target/debug/deps/props-137b1ae917774b29.d: crates/badge/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-137b1ae917774b29.rmeta: crates/badge/tests/props.rs Cargo.toml

crates/badge/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
