/root/repo/target/debug/deps/stats-fe5b9d666dd6a88b.d: crates/bench/src/bin/stats.rs

/root/repo/target/debug/deps/stats-fe5b9d666dd6a88b: crates/bench/src/bin/stats.rs

crates/bench/src/bin/stats.rs:
