/root/repo/target/debug/deps/failure_injection-70031358cb1c72dd.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-70031358cb1c72dd: tests/failure_injection.rs

tests/failure_injection.rs:
