/root/repo/target/debug/deps/ares_badge-3b98f81e2a270b79.d: crates/badge/src/lib.rs crates/badge/src/clockdrift.rs crates/badge/src/links.rs crates/badge/src/mic.rs crates/badge/src/power.rs crates/badge/src/recorder.rs crates/badge/src/records.rs crates/badge/src/scanner.rs crates/badge/src/sensors.rs crates/badge/src/storage.rs crates/badge/src/world.rs

/root/repo/target/debug/deps/libares_badge-3b98f81e2a270b79.rlib: crates/badge/src/lib.rs crates/badge/src/clockdrift.rs crates/badge/src/links.rs crates/badge/src/mic.rs crates/badge/src/power.rs crates/badge/src/recorder.rs crates/badge/src/records.rs crates/badge/src/scanner.rs crates/badge/src/sensors.rs crates/badge/src/storage.rs crates/badge/src/world.rs

/root/repo/target/debug/deps/libares_badge-3b98f81e2a270b79.rmeta: crates/badge/src/lib.rs crates/badge/src/clockdrift.rs crates/badge/src/links.rs crates/badge/src/mic.rs crates/badge/src/power.rs crates/badge/src/recorder.rs crates/badge/src/records.rs crates/badge/src/scanner.rs crates/badge/src/sensors.rs crates/badge/src/storage.rs crates/badge/src/world.rs

crates/badge/src/lib.rs:
crates/badge/src/clockdrift.rs:
crates/badge/src/links.rs:
crates/badge/src/mic.rs:
crates/badge/src/power.rs:
crates/badge/src/recorder.rs:
crates/badge/src/records.rs:
crates/badge/src/scanner.rs:
crates/badge/src/sensors.rs:
crates/badge/src/storage.rs:
crates/badge/src/world.rs:
