/root/repo/target/debug/deps/ares_crew-a225b9a8708994fa.d: crates/crew/src/lib.rs crates/crew/src/behavior.rs crates/crew/src/conversation.rs crates/crew/src/incidents.rs crates/crew/src/roster.rs crates/crew/src/schedule.rs crates/crew/src/surveys.rs crates/crew/src/truth.rs Cargo.toml

/root/repo/target/debug/deps/libares_crew-a225b9a8708994fa.rmeta: crates/crew/src/lib.rs crates/crew/src/behavior.rs crates/crew/src/conversation.rs crates/crew/src/incidents.rs crates/crew/src/roster.rs crates/crew/src/schedule.rs crates/crew/src/surveys.rs crates/crew/src/truth.rs Cargo.toml

crates/crew/src/lib.rs:
crates/crew/src/behavior.rs:
crates/crew/src/conversation.rs:
crates/crew/src/incidents.rs:
crates/crew/src/roster.rs:
crates/crew/src/schedule.rs:
crates/crew/src/surveys.rs:
crates/crew/src/truth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
