/root/repo/target/debug/deps/streaming_equivalence-17949784c4dc804c.d: tests/streaming_equivalence.rs

/root/repo/target/debug/deps/streaming_equivalence-17949784c4dc804c: tests/streaming_equivalence.rs

tests/streaming_equivalence.rs:
