/root/repo/target/debug/deps/failure_injection-e56b8b1fcbeb6af6.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-e56b8b1fcbeb6af6: tests/failure_injection.rs

tests/failure_injection.rs:
