/root/repo/target/debug/deps/scratch_thin-9319b9640d664c26.d: tests/scratch_thin.rs

/root/repo/target/debug/deps/scratch_thin-9319b9640d664c26: tests/scratch_thin.rs

tests/scratch_thin.rs:
