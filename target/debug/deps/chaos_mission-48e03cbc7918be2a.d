/root/repo/target/debug/deps/chaos_mission-48e03cbc7918be2a.d: tests/chaos_mission.rs

/root/repo/target/debug/deps/chaos_mission-48e03cbc7918be2a: tests/chaos_mission.rs

tests/chaos_mission.rs:
