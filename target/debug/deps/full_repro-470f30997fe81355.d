/root/repo/target/debug/deps/full_repro-470f30997fe81355.d: crates/bench/src/bin/full_repro.rs

/root/repo/target/debug/deps/full_repro-470f30997fe81355: crates/bench/src/bin/full_repro.rs

crates/bench/src/bin/full_repro.rs:
