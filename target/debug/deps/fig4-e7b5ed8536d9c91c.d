/root/repo/target/debug/deps/fig4-e7b5ed8536d9c91c.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-e7b5ed8536d9c91c.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
