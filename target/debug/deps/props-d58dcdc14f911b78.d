/root/repo/target/debug/deps/props-d58dcdc14f911b78.d: crates/support/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-d58dcdc14f911b78.rmeta: crates/support/tests/props.rs Cargo.toml

crates/support/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
