/root/repo/target/debug/deps/ares_support-e006284c182fe821.d: crates/support/src/lib.rs crates/support/src/accessibility.rs crates/support/src/alerts.rs crates/support/src/approval.rs crates/support/src/bus.rs crates/support/src/chaos.rs crates/support/src/earthlink.rs crates/support/src/failover.rs crates/support/src/privacy.rs crates/support/src/resources.rs crates/support/src/runtime.rs

/root/repo/target/debug/deps/ares_support-e006284c182fe821: crates/support/src/lib.rs crates/support/src/accessibility.rs crates/support/src/alerts.rs crates/support/src/approval.rs crates/support/src/bus.rs crates/support/src/chaos.rs crates/support/src/earthlink.rs crates/support/src/failover.rs crates/support/src/privacy.rs crates/support/src/resources.rs crates/support/src/runtime.rs

crates/support/src/lib.rs:
crates/support/src/accessibility.rs:
crates/support/src/alerts.rs:
crates/support/src/approval.rs:
crates/support/src/bus.rs:
crates/support/src/chaos.rs:
crates/support/src/earthlink.rs:
crates/support/src/failover.rs:
crates/support/src/privacy.rs:
crates/support/src/resources.rs:
crates/support/src/runtime.rs:
