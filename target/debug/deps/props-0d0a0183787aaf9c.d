/root/repo/target/debug/deps/props-0d0a0183787aaf9c.d: crates/simkit/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-0d0a0183787aaf9c.rmeta: crates/simkit/tests/props.rs Cargo.toml

crates/simkit/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
