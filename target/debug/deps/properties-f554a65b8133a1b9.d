/root/repo/target/debug/deps/properties-f554a65b8133a1b9.d: tests/properties.rs

/root/repo/target/debug/deps/properties-f554a65b8133a1b9: tests/properties.rs

tests/properties.rs:
