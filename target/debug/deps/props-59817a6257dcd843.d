/root/repo/target/debug/deps/props-59817a6257dcd843.d: crates/badge/tests/props.rs

/root/repo/target/debug/deps/props-59817a6257dcd843: crates/badge/tests/props.rs

crates/badge/tests/props.rs:
