/root/repo/target/debug/deps/ares-43649734419d05bd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libares-43649734419d05bd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
