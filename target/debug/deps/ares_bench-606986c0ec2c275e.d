/root/repo/target/debug/deps/ares_bench-606986c0ec2c275e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ares_bench-606986c0ec2c275e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
