/root/repo/target/debug/deps/stats-7439cde3f02e05fb.d: crates/bench/src/bin/stats.rs

/root/repo/target/debug/deps/stats-7439cde3f02e05fb: crates/bench/src/bin/stats.rs

crates/bench/src/bin/stats.rs:
