/root/repo/target/debug/deps/full_repro-4426d75cb2bd189f.d: crates/bench/src/bin/full_repro.rs

/root/repo/target/debug/deps/full_repro-4426d75cb2bd189f: crates/bench/src/bin/full_repro.rs

crates/bench/src/bin/full_repro.rs:
