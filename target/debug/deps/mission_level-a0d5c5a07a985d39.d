/root/repo/target/debug/deps/mission_level-a0d5c5a07a985d39.d: tests/mission_level.rs

/root/repo/target/debug/deps/mission_level-a0d5c5a07a985d39: tests/mission_level.rs

tests/mission_level.rs:
