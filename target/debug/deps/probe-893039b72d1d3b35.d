/root/repo/target/debug/deps/probe-893039b72d1d3b35.d: crates/bench/src/bin/probe.rs Cargo.toml

/root/repo/target/debug/deps/libprobe-893039b72d1d3b35.rmeta: crates/bench/src/bin/probe.rs Cargo.toml

crates/bench/src/bin/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
