/root/repo/target/debug/deps/fig3-ff650862052e6fa1.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-ff650862052e6fa1: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
