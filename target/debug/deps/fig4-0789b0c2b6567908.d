/root/repo/target/debug/deps/fig4-0789b0c2b6567908.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-0789b0c2b6567908: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
