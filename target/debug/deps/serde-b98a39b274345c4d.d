/root/repo/target/debug/deps/serde-b98a39b274345c4d.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-b98a39b274345c4d.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
