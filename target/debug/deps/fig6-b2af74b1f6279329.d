/root/repo/target/debug/deps/fig6-b2af74b1f6279329.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-b2af74b1f6279329: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
