/root/repo/target/debug/deps/fig5-6317c9ebea1ccc35.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-6317c9ebea1ccc35: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
