/root/repo/target/debug/deps/ares_crew-577b8386084381fd.d: crates/crew/src/lib.rs crates/crew/src/behavior.rs crates/crew/src/conversation.rs crates/crew/src/incidents.rs crates/crew/src/roster.rs crates/crew/src/schedule.rs crates/crew/src/surveys.rs crates/crew/src/truth.rs

/root/repo/target/debug/deps/libares_crew-577b8386084381fd.rlib: crates/crew/src/lib.rs crates/crew/src/behavior.rs crates/crew/src/conversation.rs crates/crew/src/incidents.rs crates/crew/src/roster.rs crates/crew/src/schedule.rs crates/crew/src/surveys.rs crates/crew/src/truth.rs

/root/repo/target/debug/deps/libares_crew-577b8386084381fd.rmeta: crates/crew/src/lib.rs crates/crew/src/behavior.rs crates/crew/src/conversation.rs crates/crew/src/incidents.rs crates/crew/src/roster.rs crates/crew/src/schedule.rs crates/crew/src/surveys.rs crates/crew/src/truth.rs

crates/crew/src/lib.rs:
crates/crew/src/behavior.rs:
crates/crew/src/conversation.rs:
crates/crew/src/incidents.rs:
crates/crew/src/roster.rs:
crates/crew/src/schedule.rs:
crates/crew/src/surveys.rs:
crates/crew/src/truth.rs:
