/root/repo/target/debug/deps/props-d7ab4fa3bf95ea7f.d: crates/core/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-d7ab4fa3bf95ea7f.rmeta: crates/core/tests/props.rs Cargo.toml

crates/core/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
