/root/repo/target/debug/deps/ares_bench-1fdfae4d5e42a13c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libares_bench-1fdfae4d5e42a13c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libares_bench-1fdfae4d5e42a13c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
