/root/repo/target/debug/deps/properties-cd3823ddbb6856c4.d: tests/properties.rs

/root/repo/target/debug/deps/properties-cd3823ddbb6856c4: tests/properties.rs

tests/properties.rs:
