/root/repo/target/debug/deps/end_to_end-e8051381f84d8adc.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e8051381f84d8adc: tests/end_to_end.rs

tests/end_to_end.rs:
