/root/repo/target/debug/deps/probe-10a0e153535462bd.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-10a0e153535462bd: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
