/root/repo/target/debug/deps/stats-9c11a6565dca9e26.d: crates/bench/src/bin/stats.rs

/root/repo/target/debug/deps/stats-9c11a6565dca9e26: crates/bench/src/bin/stats.rs

crates/bench/src/bin/stats.rs:
