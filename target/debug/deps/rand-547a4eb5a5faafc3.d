/root/repo/target/debug/deps/rand-547a4eb5a5faafc3.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs Cargo.toml

/root/repo/target/debug/deps/librand-547a4eb5a5faafc3.rmeta: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs Cargo.toml

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
