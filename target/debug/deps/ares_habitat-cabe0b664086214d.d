/root/repo/target/debug/deps/ares_habitat-cabe0b664086214d.d: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs

/root/repo/target/debug/deps/ares_habitat-cabe0b664086214d: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs

crates/habitat/src/lib.rs:
crates/habitat/src/beacons.rs:
crates/habitat/src/environment.rs:
crates/habitat/src/floorplan.rs:
crates/habitat/src/rf.rs:
crates/habitat/src/rooms.rs:
