/root/repo/target/debug/deps/parallel_determinism-5ab951674a3f2b9a.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-5ab951674a3f2b9a: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
