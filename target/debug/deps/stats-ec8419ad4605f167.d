/root/repo/target/debug/deps/stats-ec8419ad4605f167.d: crates/bench/src/bin/stats.rs

/root/repo/target/debug/deps/stats-ec8419ad4605f167: crates/bench/src/bin/stats.rs

crates/bench/src/bin/stats.rs:
