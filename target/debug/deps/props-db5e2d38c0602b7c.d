/root/repo/target/debug/deps/props-db5e2d38c0602b7c.d: crates/core/tests/props.rs

/root/repo/target/debug/deps/props-db5e2d38c0602b7c: crates/core/tests/props.rs

crates/core/tests/props.rs:
