/root/repo/target/debug/deps/properties-6a74f889ccaf1393.d: tests/properties.rs

/root/repo/target/debug/deps/properties-6a74f889ccaf1393: tests/properties.rs

tests/properties.rs:
