/root/repo/target/debug/deps/rand_distr-75a074c384af1e1b.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/rand_distr-75a074c384af1e1b: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
