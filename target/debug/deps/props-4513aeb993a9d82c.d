/root/repo/target/debug/deps/props-4513aeb993a9d82c.d: crates/support/tests/props.rs

/root/repo/target/debug/deps/props-4513aeb993a9d82c: crates/support/tests/props.rs

crates/support/tests/props.rs:
