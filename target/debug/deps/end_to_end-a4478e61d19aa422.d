/root/repo/target/debug/deps/end_to_end-a4478e61d19aa422.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a4478e61d19aa422: tests/end_to_end.rs

tests/end_to_end.rs:
