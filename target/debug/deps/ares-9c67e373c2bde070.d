/root/repo/target/debug/deps/ares-9c67e373c2bde070.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libares-9c67e373c2bde070.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
