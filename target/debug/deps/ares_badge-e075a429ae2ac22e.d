/root/repo/target/debug/deps/ares_badge-e075a429ae2ac22e.d: crates/badge/src/lib.rs crates/badge/src/clockdrift.rs crates/badge/src/links.rs crates/badge/src/mic.rs crates/badge/src/power.rs crates/badge/src/recorder.rs crates/badge/src/records.rs crates/badge/src/scanner.rs crates/badge/src/sensors.rs crates/badge/src/storage.rs crates/badge/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libares_badge-e075a429ae2ac22e.rmeta: crates/badge/src/lib.rs crates/badge/src/clockdrift.rs crates/badge/src/links.rs crates/badge/src/mic.rs crates/badge/src/power.rs crates/badge/src/recorder.rs crates/badge/src/records.rs crates/badge/src/scanner.rs crates/badge/src/sensors.rs crates/badge/src/storage.rs crates/badge/src/world.rs Cargo.toml

crates/badge/src/lib.rs:
crates/badge/src/clockdrift.rs:
crates/badge/src/links.rs:
crates/badge/src/mic.rs:
crates/badge/src/power.rs:
crates/badge/src/recorder.rs:
crates/badge/src/records.rs:
crates/badge/src/scanner.rs:
crates/badge/src/sensors.rs:
crates/badge/src/storage.rs:
crates/badge/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
