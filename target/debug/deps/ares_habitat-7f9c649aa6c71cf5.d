/root/repo/target/debug/deps/ares_habitat-7f9c649aa6c71cf5.d: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs

/root/repo/target/debug/deps/libares_habitat-7f9c649aa6c71cf5.rlib: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs

/root/repo/target/debug/deps/libares_habitat-7f9c649aa6c71cf5.rmeta: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs

crates/habitat/src/lib.rs:
crates/habitat/src/beacons.rs:
crates/habitat/src/environment.rs:
crates/habitat/src/floorplan.rs:
crates/habitat/src/rf.rs:
crates/habitat/src/rooms.rs:
