/root/repo/target/debug/deps/fig4-f45ea32a276ec515.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-f45ea32a276ec515: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
