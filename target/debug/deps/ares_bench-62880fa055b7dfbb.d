/root/repo/target/debug/deps/ares_bench-62880fa055b7dfbb.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libares_bench-62880fa055b7dfbb.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
