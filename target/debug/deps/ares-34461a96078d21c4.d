/root/repo/target/debug/deps/ares-34461a96078d21c4.d: src/lib.rs

/root/repo/target/debug/deps/libares-34461a96078d21c4.rlib: src/lib.rs

/root/repo/target/debug/deps/libares-34461a96078d21c4.rmeta: src/lib.rs

src/lib.rs:
