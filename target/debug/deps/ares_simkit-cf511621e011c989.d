/root/repo/target/debug/deps/ares_simkit-cf511621e011c989.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libares_simkit-cf511621e011c989.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs Cargo.toml

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/event.rs:
crates/simkit/src/geometry.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
