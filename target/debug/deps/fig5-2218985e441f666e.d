/root/repo/target/debug/deps/fig5-2218985e441f666e.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-2218985e441f666e: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
