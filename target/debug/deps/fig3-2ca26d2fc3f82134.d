/root/repo/target/debug/deps/fig3-2ca26d2fc3f82134.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-2ca26d2fc3f82134: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
