/root/repo/target/debug/deps/fig6-d7095811d7e58f99.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-d7095811d7e58f99: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
