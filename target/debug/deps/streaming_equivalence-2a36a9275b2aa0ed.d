/root/repo/target/debug/deps/streaming_equivalence-2a36a9275b2aa0ed.d: tests/streaming_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming_equivalence-2a36a9275b2aa0ed.rmeta: tests/streaming_equivalence.rs Cargo.toml

tests/streaming_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
