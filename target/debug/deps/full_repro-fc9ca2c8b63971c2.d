/root/repo/target/debug/deps/full_repro-fc9ca2c8b63971c2.d: crates/bench/src/bin/full_repro.rs Cargo.toml

/root/repo/target/debug/deps/libfull_repro-fc9ca2c8b63971c2.rmeta: crates/bench/src/bin/full_repro.rs Cargo.toml

crates/bench/src/bin/full_repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
