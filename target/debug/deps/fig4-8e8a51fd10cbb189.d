/root/repo/target/debug/deps/fig4-8e8a51fd10cbb189.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-8e8a51fd10cbb189: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
