/root/repo/target/debug/deps/rand-88c5e4366200c576.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/debug/deps/rand-88c5e4366200c576: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
