/root/repo/target/debug/deps/ares_badge-7c15f5881b5e65fe.d: crates/badge/src/lib.rs crates/badge/src/clockdrift.rs crates/badge/src/links.rs crates/badge/src/mic.rs crates/badge/src/power.rs crates/badge/src/recorder.rs crates/badge/src/records.rs crates/badge/src/scanner.rs crates/badge/src/sensors.rs crates/badge/src/storage.rs crates/badge/src/world.rs

/root/repo/target/debug/deps/ares_badge-7c15f5881b5e65fe: crates/badge/src/lib.rs crates/badge/src/clockdrift.rs crates/badge/src/links.rs crates/badge/src/mic.rs crates/badge/src/power.rs crates/badge/src/recorder.rs crates/badge/src/records.rs crates/badge/src/scanner.rs crates/badge/src/sensors.rs crates/badge/src/storage.rs crates/badge/src/world.rs

crates/badge/src/lib.rs:
crates/badge/src/clockdrift.rs:
crates/badge/src/links.rs:
crates/badge/src/mic.rs:
crates/badge/src/power.rs:
crates/badge/src/recorder.rs:
crates/badge/src/records.rs:
crates/badge/src/scanner.rs:
crates/badge/src/sensors.rs:
crates/badge/src/storage.rs:
crates/badge/src/world.rs:
