/root/repo/target/debug/deps/fig2-0fe1e752ba5669df.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-0fe1e752ba5669df: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
