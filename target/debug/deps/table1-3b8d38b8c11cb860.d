/root/repo/target/debug/deps/table1-3b8d38b8c11cb860.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3b8d38b8c11cb860: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
