/root/repo/target/debug/deps/mission_level-a9afbdf980678e1e.d: tests/mission_level.rs Cargo.toml

/root/repo/target/debug/deps/libmission_level-a9afbdf980678e1e.rmeta: tests/mission_level.rs Cargo.toml

tests/mission_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
