/root/repo/target/debug/deps/ares-d03085ff0d666279.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libares-d03085ff0d666279.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
