/root/repo/target/debug/deps/mission_level-600451a5de787670.d: tests/mission_level.rs

/root/repo/target/debug/deps/mission_level-600451a5de787670: tests/mission_level.rs

tests/mission_level.rs:
