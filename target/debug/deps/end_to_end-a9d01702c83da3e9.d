/root/repo/target/debug/deps/end_to_end-a9d01702c83da3e9.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a9d01702c83da3e9: tests/end_to_end.rs

tests/end_to_end.rs:
