/root/repo/target/debug/deps/mission_level-d38a59660b39f2c8.d: tests/mission_level.rs Cargo.toml

/root/repo/target/debug/deps/libmission_level-d38a59660b39f2c8.rmeta: tests/mission_level.rs Cargo.toml

tests/mission_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
