/root/repo/target/debug/deps/rand_distr-a917332a5632fbc3.d: vendor/rand_distr/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_distr-a917332a5632fbc3.rmeta: vendor/rand_distr/src/lib.rs Cargo.toml

vendor/rand_distr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
