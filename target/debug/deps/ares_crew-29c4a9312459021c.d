/root/repo/target/debug/deps/ares_crew-29c4a9312459021c.d: crates/crew/src/lib.rs crates/crew/src/behavior.rs crates/crew/src/conversation.rs crates/crew/src/incidents.rs crates/crew/src/roster.rs crates/crew/src/schedule.rs crates/crew/src/surveys.rs crates/crew/src/truth.rs

/root/repo/target/debug/deps/ares_crew-29c4a9312459021c: crates/crew/src/lib.rs crates/crew/src/behavior.rs crates/crew/src/conversation.rs crates/crew/src/incidents.rs crates/crew/src/roster.rs crates/crew/src/schedule.rs crates/crew/src/surveys.rs crates/crew/src/truth.rs

crates/crew/src/lib.rs:
crates/crew/src/behavior.rs:
crates/crew/src/conversation.rs:
crates/crew/src/incidents.rs:
crates/crew/src/roster.rs:
crates/crew/src/schedule.rs:
crates/crew/src/surveys.rs:
crates/crew/src/truth.rs:
