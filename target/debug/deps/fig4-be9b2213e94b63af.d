/root/repo/target/debug/deps/fig4-be9b2213e94b63af.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-be9b2213e94b63af: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
