/root/repo/target/debug/deps/chaos_mission-2a5db97a896d99a3.d: tests/chaos_mission.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_mission-2a5db97a896d99a3.rmeta: tests/chaos_mission.rs Cargo.toml

tests/chaos_mission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
