/root/repo/target/debug/deps/ares_sociometrics-dc1749f5a8a61995.d: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/anomaly.rs crates/core/src/environment.rs crates/core/src/localization.rs crates/core/src/meetings.rs crates/core/src/occupancy.rs crates/core/src/pipeline.rs crates/core/src/proximity.rs crates/core/src/report.rs crates/core/src/social.rs crates/core/src/speech.rs crates/core/src/streaming.rs crates/core/src/sync.rs crates/core/src/validation.rs crates/core/src/wear.rs Cargo.toml

/root/repo/target/debug/deps/libares_sociometrics-dc1749f5a8a61995.rmeta: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/anomaly.rs crates/core/src/environment.rs crates/core/src/localization.rs crates/core/src/meetings.rs crates/core/src/occupancy.rs crates/core/src/pipeline.rs crates/core/src/proximity.rs crates/core/src/report.rs crates/core/src/social.rs crates/core/src/speech.rs crates/core/src/streaming.rs crates/core/src/sync.rs crates/core/src/validation.rs crates/core/src/wear.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/activity.rs:
crates/core/src/anomaly.rs:
crates/core/src/environment.rs:
crates/core/src/localization.rs:
crates/core/src/meetings.rs:
crates/core/src/occupancy.rs:
crates/core/src/pipeline.rs:
crates/core/src/proximity.rs:
crates/core/src/report.rs:
crates/core/src/social.rs:
crates/core/src/speech.rs:
crates/core/src/streaming.rs:
crates/core/src/sync.rs:
crates/core/src/validation.rs:
crates/core/src/wear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
