/root/repo/target/debug/deps/seeds-65a40acb0fa5408b.d: crates/bench/src/bin/seeds.rs

/root/repo/target/debug/deps/seeds-65a40acb0fa5408b: crates/bench/src/bin/seeds.rs

crates/bench/src/bin/seeds.rs:
