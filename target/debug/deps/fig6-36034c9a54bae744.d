/root/repo/target/debug/deps/fig6-36034c9a54bae744.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-36034c9a54bae744: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
