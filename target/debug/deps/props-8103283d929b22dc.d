/root/repo/target/debug/deps/props-8103283d929b22dc.d: crates/crew/tests/props.rs

/root/repo/target/debug/deps/props-8103283d929b22dc: crates/crew/tests/props.rs

crates/crew/tests/props.rs:
