/root/repo/target/debug/deps/chaos-4dae57ed09de2fb7.d: crates/bench/src/bin/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-4dae57ed09de2fb7.rmeta: crates/bench/src/bin/chaos.rs Cargo.toml

crates/bench/src/bin/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
