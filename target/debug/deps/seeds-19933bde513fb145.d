/root/repo/target/debug/deps/seeds-19933bde513fb145.d: crates/bench/src/bin/seeds.rs

/root/repo/target/debug/deps/seeds-19933bde513fb145: crates/bench/src/bin/seeds.rs

crates/bench/src/bin/seeds.rs:
