/root/repo/target/debug/deps/seeds-369016b61bdb3b83.d: crates/bench/src/bin/seeds.rs

/root/repo/target/debug/deps/seeds-369016b61bdb3b83: crates/bench/src/bin/seeds.rs

crates/bench/src/bin/seeds.rs:
