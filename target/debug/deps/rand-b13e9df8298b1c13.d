/root/repo/target/debug/deps/rand-b13e9df8298b1c13.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs Cargo.toml

/root/repo/target/debug/deps/librand-b13e9df8298b1c13.rmeta: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs Cargo.toml

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
