/root/repo/target/debug/deps/ares_sociometrics-7ddc6e63a45d7f29.d: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/anomaly.rs crates/core/src/environment.rs crates/core/src/localization.rs crates/core/src/meetings.rs crates/core/src/occupancy.rs crates/core/src/pipeline.rs crates/core/src/proximity.rs crates/core/src/report.rs crates/core/src/social.rs crates/core/src/speech.rs crates/core/src/streaming.rs crates/core/src/sync.rs crates/core/src/validation.rs crates/core/src/wear.rs

/root/repo/target/debug/deps/libares_sociometrics-7ddc6e63a45d7f29.rlib: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/anomaly.rs crates/core/src/environment.rs crates/core/src/localization.rs crates/core/src/meetings.rs crates/core/src/occupancy.rs crates/core/src/pipeline.rs crates/core/src/proximity.rs crates/core/src/report.rs crates/core/src/social.rs crates/core/src/speech.rs crates/core/src/streaming.rs crates/core/src/sync.rs crates/core/src/validation.rs crates/core/src/wear.rs

/root/repo/target/debug/deps/libares_sociometrics-7ddc6e63a45d7f29.rmeta: crates/core/src/lib.rs crates/core/src/activity.rs crates/core/src/anomaly.rs crates/core/src/environment.rs crates/core/src/localization.rs crates/core/src/meetings.rs crates/core/src/occupancy.rs crates/core/src/pipeline.rs crates/core/src/proximity.rs crates/core/src/report.rs crates/core/src/social.rs crates/core/src/speech.rs crates/core/src/streaming.rs crates/core/src/sync.rs crates/core/src/validation.rs crates/core/src/wear.rs

crates/core/src/lib.rs:
crates/core/src/activity.rs:
crates/core/src/anomaly.rs:
crates/core/src/environment.rs:
crates/core/src/localization.rs:
crates/core/src/meetings.rs:
crates/core/src/occupancy.rs:
crates/core/src/pipeline.rs:
crates/core/src/proximity.rs:
crates/core/src/report.rs:
crates/core/src/social.rs:
crates/core/src/speech.rs:
crates/core/src/streaming.rs:
crates/core/src/sync.rs:
crates/core/src/validation.rs:
crates/core/src/wear.rs:
