/root/repo/target/debug/deps/ares-ab0aa6800353243e.d: src/lib.rs

/root/repo/target/debug/deps/ares-ab0aa6800353243e: src/lib.rs

src/lib.rs:
