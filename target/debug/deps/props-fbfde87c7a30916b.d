/root/repo/target/debug/deps/props-fbfde87c7a30916b.d: crates/habitat/tests/props.rs

/root/repo/target/debug/deps/props-fbfde87c7a30916b: crates/habitat/tests/props.rs

crates/habitat/tests/props.rs:
