/root/repo/target/debug/deps/full_repro-7f4e0f37546695d4.d: crates/bench/src/bin/full_repro.rs

/root/repo/target/debug/deps/full_repro-7f4e0f37546695d4: crates/bench/src/bin/full_repro.rs

crates/bench/src/bin/full_repro.rs:
