/root/repo/target/debug/deps/table1-b585cae332a02b95.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b585cae332a02b95: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
