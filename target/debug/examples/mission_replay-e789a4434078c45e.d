/root/repo/target/debug/examples/mission_replay-e789a4434078c45e.d: examples/mission_replay.rs Cargo.toml

/root/repo/target/debug/examples/libmission_replay-e789a4434078c45e.rmeta: examples/mission_replay.rs Cargo.toml

examples/mission_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
