/root/repo/target/debug/examples/realtime_feedback-a678ea10407cbcb8.d: examples/realtime_feedback.rs

/root/repo/target/debug/examples/realtime_feedback-a678ea10407cbcb8: examples/realtime_feedback.rs

examples/realtime_feedback.rs:
