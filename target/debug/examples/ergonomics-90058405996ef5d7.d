/root/repo/target/debug/examples/ergonomics-90058405996ef5d7.d: examples/ergonomics.rs

/root/repo/target/debug/examples/ergonomics-90058405996ef5d7: examples/ergonomics.rs

examples/ergonomics.rs:
