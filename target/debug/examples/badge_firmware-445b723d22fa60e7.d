/root/repo/target/debug/examples/badge_firmware-445b723d22fa60e7.d: examples/badge_firmware.rs

/root/repo/target/debug/examples/badge_firmware-445b723d22fa60e7: examples/badge_firmware.rs

examples/badge_firmware.rs:
