/root/repo/target/debug/examples/support_system-d9d90fa03f8195f5.d: examples/support_system.rs

/root/repo/target/debug/examples/support_system-d9d90fa03f8195f5: examples/support_system.rs

examples/support_system.rs:
