/root/repo/target/debug/examples/badge_firmware-c4b62f0b4bf3e7ab.d: examples/badge_firmware.rs

/root/repo/target/debug/examples/badge_firmware-c4b62f0b4bf3e7ab: examples/badge_firmware.rs

examples/badge_firmware.rs:
