/root/repo/target/debug/examples/ergonomics-1bbff0704b379659.d: examples/ergonomics.rs Cargo.toml

/root/repo/target/debug/examples/libergonomics-1bbff0704b379659.rmeta: examples/ergonomics.rs Cargo.toml

examples/ergonomics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
