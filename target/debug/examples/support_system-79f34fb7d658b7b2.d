/root/repo/target/debug/examples/support_system-79f34fb7d658b7b2.d: examples/support_system.rs

/root/repo/target/debug/examples/support_system-79f34fb7d658b7b2: examples/support_system.rs

examples/support_system.rs:
