/root/repo/target/debug/examples/support_system-f6084c6bc752adaf.d: examples/support_system.rs Cargo.toml

/root/repo/target/debug/examples/libsupport_system-f6084c6bc752adaf.rmeta: examples/support_system.rs Cargo.toml

examples/support_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
