/root/repo/target/debug/examples/mission_replay-3bcf3a0c2d8bb6f5.d: examples/mission_replay.rs

/root/repo/target/debug/examples/mission_replay-3bcf3a0c2d8bb6f5: examples/mission_replay.rs

examples/mission_replay.rs:
