/root/repo/target/debug/examples/badge_firmware-f587e42783a9b6ca.d: examples/badge_firmware.rs Cargo.toml

/root/repo/target/debug/examples/libbadge_firmware-f587e42783a9b6ca.rmeta: examples/badge_firmware.rs Cargo.toml

examples/badge_firmware.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
