/root/repo/target/debug/examples/ergonomics-7005370306f36359.d: examples/ergonomics.rs

/root/repo/target/debug/examples/ergonomics-7005370306f36359: examples/ergonomics.rs

examples/ergonomics.rs:
