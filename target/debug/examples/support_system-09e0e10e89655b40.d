/root/repo/target/debug/examples/support_system-09e0e10e89655b40.d: examples/support_system.rs

/root/repo/target/debug/examples/support_system-09e0e10e89655b40: examples/support_system.rs

examples/support_system.rs:
