/root/repo/target/debug/examples/quickstart-17b1f6aca0f54fc7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-17b1f6aca0f54fc7: examples/quickstart.rs

examples/quickstart.rs:
