/root/repo/target/debug/examples/realtime_feedback-ad0402add4924042.d: examples/realtime_feedback.rs

/root/repo/target/debug/examples/realtime_feedback-ad0402add4924042: examples/realtime_feedback.rs

examples/realtime_feedback.rs:
