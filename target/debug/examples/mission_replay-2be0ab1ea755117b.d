/root/repo/target/debug/examples/mission_replay-2be0ab1ea755117b.d: examples/mission_replay.rs

/root/repo/target/debug/examples/mission_replay-2be0ab1ea755117b: examples/mission_replay.rs

examples/mission_replay.rs:
