/root/repo/target/debug/examples/realtime_feedback-5b7aa57636ee3d3f.d: examples/realtime_feedback.rs

/root/repo/target/debug/examples/realtime_feedback-5b7aa57636ee3d3f: examples/realtime_feedback.rs

examples/realtime_feedback.rs:
