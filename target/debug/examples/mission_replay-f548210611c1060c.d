/root/repo/target/debug/examples/mission_replay-f548210611c1060c.d: examples/mission_replay.rs

/root/repo/target/debug/examples/mission_replay-f548210611c1060c: examples/mission_replay.rs

examples/mission_replay.rs:
