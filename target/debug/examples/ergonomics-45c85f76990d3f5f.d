/root/repo/target/debug/examples/ergonomics-45c85f76990d3f5f.d: examples/ergonomics.rs

/root/repo/target/debug/examples/ergonomics-45c85f76990d3f5f: examples/ergonomics.rs

examples/ergonomics.rs:
