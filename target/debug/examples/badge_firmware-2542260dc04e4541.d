/root/repo/target/debug/examples/badge_firmware-2542260dc04e4541.d: examples/badge_firmware.rs

/root/repo/target/debug/examples/badge_firmware-2542260dc04e4541: examples/badge_firmware.rs

examples/badge_firmware.rs:
