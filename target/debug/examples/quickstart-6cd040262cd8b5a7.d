/root/repo/target/debug/examples/quickstart-6cd040262cd8b5a7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6cd040262cd8b5a7: examples/quickstart.rs

examples/quickstart.rs:
