/root/repo/target/debug/examples/quickstart-eeded18d646fe914.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-eeded18d646fe914: examples/quickstart.rs

examples/quickstart.rs:
