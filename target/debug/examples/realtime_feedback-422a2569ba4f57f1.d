/root/repo/target/debug/examples/realtime_feedback-422a2569ba4f57f1.d: examples/realtime_feedback.rs Cargo.toml

/root/repo/target/debug/examples/librealtime_feedback-422a2569ba4f57f1.rmeta: examples/realtime_feedback.rs Cargo.toml

examples/realtime_feedback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
