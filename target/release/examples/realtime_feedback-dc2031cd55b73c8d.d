/root/repo/target/release/examples/realtime_feedback-dc2031cd55b73c8d.d: examples/realtime_feedback.rs

/root/repo/target/release/examples/realtime_feedback-dc2031cd55b73c8d: examples/realtime_feedback.rs

examples/realtime_feedback.rs:
