/root/repo/target/release/examples/ergonomics-cb6edc1542f0396f.d: examples/ergonomics.rs

/root/repo/target/release/examples/ergonomics-cb6edc1542f0396f: examples/ergonomics.rs

examples/ergonomics.rs:
