/root/repo/target/release/examples/badge_firmware-8687fb5d07aff342.d: examples/badge_firmware.rs

/root/repo/target/release/examples/badge_firmware-8687fb5d07aff342: examples/badge_firmware.rs

examples/badge_firmware.rs:
