/root/repo/target/release/examples/quickstart-5884a646af81869a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5884a646af81869a: examples/quickstart.rs

examples/quickstart.rs:
