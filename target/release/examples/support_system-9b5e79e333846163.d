/root/repo/target/release/examples/support_system-9b5e79e333846163.d: examples/support_system.rs

/root/repo/target/release/examples/support_system-9b5e79e333846163: examples/support_system.rs

examples/support_system.rs:
