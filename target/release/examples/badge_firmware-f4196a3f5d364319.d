/root/repo/target/release/examples/badge_firmware-f4196a3f5d364319.d: examples/badge_firmware.rs Cargo.toml

/root/repo/target/release/examples/libbadge_firmware-f4196a3f5d364319.rmeta: examples/badge_firmware.rs Cargo.toml

examples/badge_firmware.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
