/root/repo/target/release/examples/ergonomics-604e3fd972e01d7f.d: examples/ergonomics.rs Cargo.toml

/root/repo/target/release/examples/libergonomics-604e3fd972e01d7f.rmeta: examples/ergonomics.rs Cargo.toml

examples/ergonomics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
