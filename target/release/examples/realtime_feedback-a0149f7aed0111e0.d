/root/repo/target/release/examples/realtime_feedback-a0149f7aed0111e0.d: examples/realtime_feedback.rs Cargo.toml

/root/repo/target/release/examples/librealtime_feedback-a0149f7aed0111e0.rmeta: examples/realtime_feedback.rs Cargo.toml

examples/realtime_feedback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
