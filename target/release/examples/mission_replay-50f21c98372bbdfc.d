/root/repo/target/release/examples/mission_replay-50f21c98372bbdfc.d: examples/mission_replay.rs

/root/repo/target/release/examples/mission_replay-50f21c98372bbdfc: examples/mission_replay.rs

examples/mission_replay.rs:
