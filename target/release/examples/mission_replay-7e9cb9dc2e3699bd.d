/root/repo/target/release/examples/mission_replay-7e9cb9dc2e3699bd.d: examples/mission_replay.rs Cargo.toml

/root/repo/target/release/examples/libmission_replay-7e9cb9dc2e3699bd.rmeta: examples/mission_replay.rs Cargo.toml

examples/mission_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
