/root/repo/target/release/examples/support_system-44c1fee6fa2c553d.d: examples/support_system.rs Cargo.toml

/root/repo/target/release/examples/libsupport_system-44c1fee6fa2c553d.rmeta: examples/support_system.rs Cargo.toml

examples/support_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
