/root/repo/target/release/deps/bench_pipeline-c799cdb783ed3349.d: crates/bench/src/bin/bench_pipeline.rs

/root/repo/target/release/deps/bench_pipeline-c799cdb783ed3349: crates/bench/src/bin/bench_pipeline.rs

crates/bench/src/bin/bench_pipeline.rs:
