/root/repo/target/release/deps/properties-38431e7129f0e10d.d: tests/properties.rs

/root/repo/target/release/deps/properties-38431e7129f0e10d: tests/properties.rs

tests/properties.rs:
