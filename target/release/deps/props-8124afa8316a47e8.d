/root/repo/target/release/deps/props-8124afa8316a47e8.d: crates/support/tests/props.rs

/root/repo/target/release/deps/props-8124afa8316a47e8: crates/support/tests/props.rs

crates/support/tests/props.rs:
