/root/repo/target/release/deps/props-e989d099d2166746.d: crates/habitat/tests/props.rs

/root/repo/target/release/deps/props-e989d099d2166746: crates/habitat/tests/props.rs

crates/habitat/tests/props.rs:
