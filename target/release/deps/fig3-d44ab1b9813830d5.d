/root/repo/target/release/deps/fig3-d44ab1b9813830d5.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-d44ab1b9813830d5: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
