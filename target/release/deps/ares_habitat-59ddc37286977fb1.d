/root/repo/target/release/deps/ares_habitat-59ddc37286977fb1.d: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs crates/habitat/src/visibility.rs

/root/repo/target/release/deps/ares_habitat-59ddc37286977fb1: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs crates/habitat/src/visibility.rs

crates/habitat/src/lib.rs:
crates/habitat/src/beacons.rs:
crates/habitat/src/environment.rs:
crates/habitat/src/floorplan.rs:
crates/habitat/src/rf.rs:
crates/habitat/src/rooms.rs:
crates/habitat/src/visibility.rs:
