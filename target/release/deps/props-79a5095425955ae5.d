/root/repo/target/release/deps/props-79a5095425955ae5.d: crates/core/tests/props.rs

/root/repo/target/release/deps/props-79a5095425955ae5: crates/core/tests/props.rs

crates/core/tests/props.rs:
