/root/repo/target/release/deps/ares_bench-a9f306e70dae0a52.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libares_bench-a9f306e70dae0a52.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libares_bench-a9f306e70dae0a52.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
