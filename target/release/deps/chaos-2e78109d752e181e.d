/root/repo/target/release/deps/chaos-2e78109d752e181e.d: crates/bench/src/bin/chaos.rs

/root/repo/target/release/deps/chaos-2e78109d752e181e: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
