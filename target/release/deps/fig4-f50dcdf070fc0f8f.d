/root/repo/target/release/deps/fig4-f50dcdf070fc0f8f.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-f50dcdf070fc0f8f: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
