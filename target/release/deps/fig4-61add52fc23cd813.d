/root/repo/target/release/deps/fig4-61add52fc23cd813.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-61add52fc23cd813: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
