/root/repo/target/release/deps/full_repro-4d779f8600120237.d: crates/bench/src/bin/full_repro.rs Cargo.toml

/root/repo/target/release/deps/libfull_repro-4d779f8600120237.rmeta: crates/bench/src/bin/full_repro.rs Cargo.toml

crates/bench/src/bin/full_repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
