/root/repo/target/release/deps/streaming_equivalence-b8a9fa0bd01f9c21.d: tests/streaming_equivalence.rs Cargo.toml

/root/repo/target/release/deps/libstreaming_equivalence-b8a9fa0bd01f9c21.rmeta: tests/streaming_equivalence.rs Cargo.toml

tests/streaming_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
