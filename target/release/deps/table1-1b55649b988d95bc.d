/root/repo/target/release/deps/table1-1b55649b988d95bc.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-1b55649b988d95bc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
