/root/repo/target/release/deps/stats-21d68aa9b6af926c.d: crates/bench/src/bin/stats.rs

/root/repo/target/release/deps/stats-21d68aa9b6af926c: crates/bench/src/bin/stats.rs

crates/bench/src/bin/stats.rs:
