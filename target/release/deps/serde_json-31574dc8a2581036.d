/root/repo/target/release/deps/serde_json-31574dc8a2581036.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-31574dc8a2581036: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
