/root/repo/target/release/deps/ares-8b9bd9ecc4f6aa68.d: src/lib.rs

/root/repo/target/release/deps/libares-8b9bd9ecc4f6aa68.rlib: src/lib.rs

/root/repo/target/release/deps/libares-8b9bd9ecc4f6aa68.rmeta: src/lib.rs

src/lib.rs:
