/root/repo/target/release/deps/fig2-1902445c906f1505.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-1902445c906f1505: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
