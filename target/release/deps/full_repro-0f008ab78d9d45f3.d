/root/repo/target/release/deps/full_repro-0f008ab78d9d45f3.d: crates/bench/src/bin/full_repro.rs

/root/repo/target/release/deps/full_repro-0f008ab78d9d45f3: crates/bench/src/bin/full_repro.rs

crates/bench/src/bin/full_repro.rs:
