/root/repo/target/release/deps/ares_support-7db7fb2eeedcac0c.d: crates/support/src/lib.rs crates/support/src/accessibility.rs crates/support/src/alerts.rs crates/support/src/approval.rs crates/support/src/bus.rs crates/support/src/earthlink.rs crates/support/src/failover.rs crates/support/src/privacy.rs crates/support/src/resources.rs crates/support/src/runtime.rs

/root/repo/target/release/deps/libares_support-7db7fb2eeedcac0c.rlib: crates/support/src/lib.rs crates/support/src/accessibility.rs crates/support/src/alerts.rs crates/support/src/approval.rs crates/support/src/bus.rs crates/support/src/earthlink.rs crates/support/src/failover.rs crates/support/src/privacy.rs crates/support/src/resources.rs crates/support/src/runtime.rs

/root/repo/target/release/deps/libares_support-7db7fb2eeedcac0c.rmeta: crates/support/src/lib.rs crates/support/src/accessibility.rs crates/support/src/alerts.rs crates/support/src/approval.rs crates/support/src/bus.rs crates/support/src/earthlink.rs crates/support/src/failover.rs crates/support/src/privacy.rs crates/support/src/resources.rs crates/support/src/runtime.rs

crates/support/src/lib.rs:
crates/support/src/accessibility.rs:
crates/support/src/alerts.rs:
crates/support/src/approval.rs:
crates/support/src/bus.rs:
crates/support/src/earthlink.rs:
crates/support/src/failover.rs:
crates/support/src/privacy.rs:
crates/support/src/resources.rs:
crates/support/src/runtime.rs:
