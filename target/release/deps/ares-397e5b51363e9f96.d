/root/repo/target/release/deps/ares-397e5b51363e9f96.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libares-397e5b51363e9f96.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
