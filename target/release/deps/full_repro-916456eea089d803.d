/root/repo/target/release/deps/full_repro-916456eea089d803.d: crates/bench/src/bin/full_repro.rs

/root/repo/target/release/deps/full_repro-916456eea089d803: crates/bench/src/bin/full_repro.rs

crates/bench/src/bin/full_repro.rs:
