/root/repo/target/release/deps/probe-34fb86e99883d612.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-34fb86e99883d612: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
