/root/repo/target/release/deps/fig4-a08eca379f1099bf.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-a08eca379f1099bf: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
