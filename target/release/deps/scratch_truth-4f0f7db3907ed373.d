/root/repo/target/release/deps/scratch_truth-4f0f7db3907ed373.d: crates/crew/tests/scratch_truth.rs

/root/repo/target/release/deps/scratch_truth-4f0f7db3907ed373: crates/crew/tests/scratch_truth.rs

crates/crew/tests/scratch_truth.rs:
