/root/repo/target/release/deps/ares_simkit-c2dd954324e014da.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/libares_simkit-c2dd954324e014da.rlib: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/libares_simkit-c2dd954324e014da.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/event.rs:
crates/simkit/src/geometry.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
