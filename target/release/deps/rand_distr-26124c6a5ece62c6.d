/root/repo/target/release/deps/rand_distr-26124c6a5ece62c6.d: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-26124c6a5ece62c6.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-26124c6a5ece62c6.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
