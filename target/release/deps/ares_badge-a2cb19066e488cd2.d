/root/repo/target/release/deps/ares_badge-a2cb19066e488cd2.d: crates/badge/src/lib.rs crates/badge/src/clockdrift.rs crates/badge/src/links.rs crates/badge/src/mic.rs crates/badge/src/power.rs crates/badge/src/recorder.rs crates/badge/src/records.rs crates/badge/src/scanner.rs crates/badge/src/sensors.rs crates/badge/src/storage.rs crates/badge/src/world.rs Cargo.toml

/root/repo/target/release/deps/libares_badge-a2cb19066e488cd2.rmeta: crates/badge/src/lib.rs crates/badge/src/clockdrift.rs crates/badge/src/links.rs crates/badge/src/mic.rs crates/badge/src/power.rs crates/badge/src/recorder.rs crates/badge/src/records.rs crates/badge/src/scanner.rs crates/badge/src/sensors.rs crates/badge/src/storage.rs crates/badge/src/world.rs Cargo.toml

crates/badge/src/lib.rs:
crates/badge/src/clockdrift.rs:
crates/badge/src/links.rs:
crates/badge/src/mic.rs:
crates/badge/src/power.rs:
crates/badge/src/recorder.rs:
crates/badge/src/records.rs:
crates/badge/src/scanner.rs:
crates/badge/src/sensors.rs:
crates/badge/src/storage.rs:
crates/badge/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
