/root/repo/target/release/deps/ares_bench-cc2a2ae3acca6b4a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libares_bench-cc2a2ae3acca6b4a.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libares_bench-cc2a2ae3acca6b4a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
