/root/repo/target/release/deps/fig4-3495193d0b3f2680.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/release/deps/libfig4-3495193d0b3f2680.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
