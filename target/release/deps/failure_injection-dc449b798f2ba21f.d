/root/repo/target/release/deps/failure_injection-dc449b798f2ba21f.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-dc449b798f2ba21f: tests/failure_injection.rs

tests/failure_injection.rs:
