/root/repo/target/release/deps/fig5-27a897333777d8aa.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-27a897333777d8aa: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
