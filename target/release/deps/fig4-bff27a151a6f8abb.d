/root/repo/target/release/deps/fig4-bff27a151a6f8abb.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-bff27a151a6f8abb: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
