/root/repo/target/release/deps/rand_distr-e307c9c0b7fb0556.d: vendor/rand_distr/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_distr-e307c9c0b7fb0556.rmeta: vendor/rand_distr/src/lib.rs Cargo.toml

vendor/rand_distr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
