/root/repo/target/release/deps/fig3-b67b53fa73c7578a.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-b67b53fa73c7578a: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
