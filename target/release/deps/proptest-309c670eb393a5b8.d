/root/repo/target/release/deps/proptest-309c670eb393a5b8.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-309c670eb393a5b8.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-309c670eb393a5b8.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
