/root/repo/target/release/deps/streaming_equivalence-3afe060bbc4b229d.d: tests/streaming_equivalence.rs

/root/repo/target/release/deps/streaming_equivalence-3afe060bbc4b229d: tests/streaming_equivalence.rs

tests/streaming_equivalence.rs:
