/root/repo/target/release/deps/ares-8899d9e8122722dc.d: src/lib.rs

/root/repo/target/release/deps/libares-8899d9e8122722dc.rlib: src/lib.rs

/root/repo/target/release/deps/libares-8899d9e8122722dc.rmeta: src/lib.rs

src/lib.rs:
