/root/repo/target/release/deps/fig3-ce2adcc9c4738ed0.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/release/deps/libfig3-ce2adcc9c4738ed0.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
