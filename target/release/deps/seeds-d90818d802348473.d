/root/repo/target/release/deps/seeds-d90818d802348473.d: crates/bench/src/bin/seeds.rs

/root/repo/target/release/deps/seeds-d90818d802348473: crates/bench/src/bin/seeds.rs

crates/bench/src/bin/seeds.rs:
