/root/repo/target/release/deps/ares_bench-92990ecf076bdc34.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libares_bench-92990ecf076bdc34.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libares_bench-92990ecf076bdc34.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
