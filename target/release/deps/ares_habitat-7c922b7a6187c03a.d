/root/repo/target/release/deps/ares_habitat-7c922b7a6187c03a.d: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs

/root/repo/target/release/deps/libares_habitat-7c922b7a6187c03a.rlib: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs

/root/repo/target/release/deps/libares_habitat-7c922b7a6187c03a.rmeta: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs

crates/habitat/src/lib.rs:
crates/habitat/src/beacons.rs:
crates/habitat/src/environment.rs:
crates/habitat/src/floorplan.rs:
crates/habitat/src/rf.rs:
crates/habitat/src/rooms.rs:
