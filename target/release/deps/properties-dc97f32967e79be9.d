/root/repo/target/release/deps/properties-dc97f32967e79be9.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-dc97f32967e79be9.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
