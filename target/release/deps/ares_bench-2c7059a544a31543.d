/root/repo/target/release/deps/ares_bench-2c7059a544a31543.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/ares_bench-2c7059a544a31543: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
