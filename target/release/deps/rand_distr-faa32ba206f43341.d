/root/repo/target/release/deps/rand_distr-faa32ba206f43341.d: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/rand_distr-faa32ba206f43341: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
