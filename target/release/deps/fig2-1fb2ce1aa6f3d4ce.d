/root/repo/target/release/deps/fig2-1fb2ce1aa6f3d4ce.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-1fb2ce1aa6f3d4ce: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
