/root/repo/target/release/deps/ares_icares-67fb9cf4bf6aa3b8.d: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

/root/repo/target/release/deps/ares_icares-67fb9cf4bf6aa3b8: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

crates/icares/src/lib.rs:
crates/icares/src/calibration.rs:
crates/icares/src/export.rs:
crates/icares/src/figures.rs:
crates/icares/src/scenario.rs:
