/root/repo/target/release/deps/fig2-1e63e2619a95db42.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-1e63e2619a95db42: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
