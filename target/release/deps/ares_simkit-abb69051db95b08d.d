/root/repo/target/release/deps/ares_simkit-abb69051db95b08d.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/ares_simkit-abb69051db95b08d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/event.rs:
crates/simkit/src/geometry.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
