/root/repo/target/release/deps/scratch_meet-2bbe4b7d18bdb66d.d: crates/bench/src/bin/scratch_meet.rs

/root/repo/target/release/deps/scratch_meet-2bbe4b7d18bdb66d: crates/bench/src/bin/scratch_meet.rs

crates/bench/src/bin/scratch_meet.rs:
