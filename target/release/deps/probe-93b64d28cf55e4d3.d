/root/repo/target/release/deps/probe-93b64d28cf55e4d3.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-93b64d28cf55e4d3: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
