/root/repo/target/release/deps/seeds-52716022426cfd18.d: crates/bench/src/bin/seeds.rs

/root/repo/target/release/deps/seeds-52716022426cfd18: crates/bench/src/bin/seeds.rs

crates/bench/src/bin/seeds.rs:
