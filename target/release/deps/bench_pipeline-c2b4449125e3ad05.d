/root/repo/target/release/deps/bench_pipeline-c2b4449125e3ad05.d: crates/bench/src/bin/bench_pipeline.rs

/root/repo/target/release/deps/bench_pipeline-c2b4449125e3ad05: crates/bench/src/bin/bench_pipeline.rs

crates/bench/src/bin/bench_pipeline.rs:
