/root/repo/target/release/deps/chaos-d5f39585289fdd7d.d: crates/bench/src/bin/chaos.rs Cargo.toml

/root/repo/target/release/deps/libchaos-d5f39585289fdd7d.rmeta: crates/bench/src/bin/chaos.rs Cargo.toml

crates/bench/src/bin/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
