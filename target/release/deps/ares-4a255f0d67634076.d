/root/repo/target/release/deps/ares-4a255f0d67634076.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libares-4a255f0d67634076.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
