/root/repo/target/release/deps/probe-5c7c1b9d0e29e230.d: crates/bench/src/bin/probe.rs Cargo.toml

/root/repo/target/release/deps/libprobe-5c7c1b9d0e29e230.rmeta: crates/bench/src/bin/probe.rs Cargo.toml

crates/bench/src/bin/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
