/root/repo/target/release/deps/stats-dc4493257db2bb92.d: crates/bench/src/bin/stats.rs Cargo.toml

/root/repo/target/release/deps/libstats-dc4493257db2bb92.rmeta: crates/bench/src/bin/stats.rs Cargo.toml

crates/bench/src/bin/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
