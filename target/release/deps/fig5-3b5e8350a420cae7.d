/root/repo/target/release/deps/fig5-3b5e8350a420cae7.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/release/deps/libfig5-3b5e8350a420cae7.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
