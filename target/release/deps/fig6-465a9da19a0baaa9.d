/root/repo/target/release/deps/fig6-465a9da19a0baaa9.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-465a9da19a0baaa9: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
