/root/repo/target/release/deps/proptest-a550493a952016e5.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-a550493a952016e5.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
