/root/repo/target/release/deps/ares_habitat-31a457b546c84f53.d: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs crates/habitat/src/visibility.rs

/root/repo/target/release/deps/libares_habitat-31a457b546c84f53.rlib: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs crates/habitat/src/visibility.rs

/root/repo/target/release/deps/libares_habitat-31a457b546c84f53.rmeta: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs crates/habitat/src/visibility.rs

crates/habitat/src/lib.rs:
crates/habitat/src/beacons.rs:
crates/habitat/src/environment.rs:
crates/habitat/src/floorplan.rs:
crates/habitat/src/rf.rs:
crates/habitat/src/rooms.rs:
crates/habitat/src/visibility.rs:
