/root/repo/target/release/deps/props-6ad3aaad7a6ff898.d: crates/badge/tests/props.rs

/root/repo/target/release/deps/props-6ad3aaad7a6ff898: crates/badge/tests/props.rs

crates/badge/tests/props.rs:
