/root/repo/target/release/deps/fig2-8560af67d1f890f9.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/release/deps/libfig2-8560af67d1f890f9.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
