/root/repo/target/release/deps/fig6-b03d28424f14630d.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-b03d28424f14630d: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
