/root/repo/target/release/deps/full_repro-90c2fd47090ebfb5.d: crates/bench/src/bin/full_repro.rs

/root/repo/target/release/deps/full_repro-90c2fd47090ebfb5: crates/bench/src/bin/full_repro.rs

crates/bench/src/bin/full_repro.rs:
