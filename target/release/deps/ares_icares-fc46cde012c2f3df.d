/root/repo/target/release/deps/ares_icares-fc46cde012c2f3df.d: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

/root/repo/target/release/deps/libares_icares-fc46cde012c2f3df.rlib: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

/root/repo/target/release/deps/libares_icares-fc46cde012c2f3df.rmeta: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

crates/icares/src/lib.rs:
crates/icares/src/calibration.rs:
crates/icares/src/export.rs:
crates/icares/src/figures.rs:
crates/icares/src/scenario.rs:
