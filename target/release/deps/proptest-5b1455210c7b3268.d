/root/repo/target/release/deps/proptest-5b1455210c7b3268.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-5b1455210c7b3268: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
