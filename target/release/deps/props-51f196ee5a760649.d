/root/repo/target/release/deps/props-51f196ee5a760649.d: crates/simkit/tests/props.rs

/root/repo/target/release/deps/props-51f196ee5a760649: crates/simkit/tests/props.rs

crates/simkit/tests/props.rs:
