/root/repo/target/release/deps/serde_json-41a2d9df62ef3141.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-41a2d9df62ef3141.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-41a2d9df62ef3141.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
