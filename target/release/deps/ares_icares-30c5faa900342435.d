/root/repo/target/release/deps/ares_icares-30c5faa900342435.d: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs Cargo.toml

/root/repo/target/release/deps/libares_icares-30c5faa900342435.rmeta: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs Cargo.toml

crates/icares/src/lib.rs:
crates/icares/src/calibration.rs:
crates/icares/src/export.rs:
crates/icares/src/figures.rs:
crates/icares/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
