/root/repo/target/release/deps/seeds-8a18df5c6910ca6c.d: crates/bench/src/bin/seeds.rs

/root/repo/target/release/deps/seeds-8a18df5c6910ca6c: crates/bench/src/bin/seeds.rs

crates/bench/src/bin/seeds.rs:
