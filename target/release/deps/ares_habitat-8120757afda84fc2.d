/root/repo/target/release/deps/ares_habitat-8120757afda84fc2.d: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs Cargo.toml

/root/repo/target/release/deps/libares_habitat-8120757afda84fc2.rmeta: crates/habitat/src/lib.rs crates/habitat/src/beacons.rs crates/habitat/src/environment.rs crates/habitat/src/floorplan.rs crates/habitat/src/rf.rs crates/habitat/src/rooms.rs Cargo.toml

crates/habitat/src/lib.rs:
crates/habitat/src/beacons.rs:
crates/habitat/src/environment.rs:
crates/habitat/src/floorplan.rs:
crates/habitat/src/rf.rs:
crates/habitat/src/rooms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
