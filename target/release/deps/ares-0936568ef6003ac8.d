/root/repo/target/release/deps/ares-0936568ef6003ac8.d: src/lib.rs

/root/repo/target/release/deps/ares-0936568ef6003ac8: src/lib.rs

src/lib.rs:
