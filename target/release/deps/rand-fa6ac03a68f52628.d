/root/repo/target/release/deps/rand-fa6ac03a68f52628.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/release/deps/rand-fa6ac03a68f52628: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
