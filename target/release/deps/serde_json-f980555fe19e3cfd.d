/root/repo/target/release/deps/serde_json-f980555fe19e3cfd.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-f980555fe19e3cfd.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
