/root/repo/target/release/deps/ares_icares-1bd2139cb7fcc270.d: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

/root/repo/target/release/deps/libares_icares-1bd2139cb7fcc270.rlib: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

/root/repo/target/release/deps/libares_icares-1bd2139cb7fcc270.rmeta: crates/icares/src/lib.rs crates/icares/src/calibration.rs crates/icares/src/export.rs crates/icares/src/figures.rs crates/icares/src/scenario.rs

crates/icares/src/lib.rs:
crates/icares/src/calibration.rs:
crates/icares/src/export.rs:
crates/icares/src/figures.rs:
crates/icares/src/scenario.rs:
