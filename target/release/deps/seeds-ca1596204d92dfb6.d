/root/repo/target/release/deps/seeds-ca1596204d92dfb6.d: crates/bench/src/bin/seeds.rs

/root/repo/target/release/deps/seeds-ca1596204d92dfb6: crates/bench/src/bin/seeds.rs

crates/bench/src/bin/seeds.rs:
