/root/repo/target/release/deps/fig3-9b0fc16b3d70d876.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-9b0fc16b3d70d876: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
