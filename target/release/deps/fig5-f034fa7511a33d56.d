/root/repo/target/release/deps/fig5-f034fa7511a33d56.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-f034fa7511a33d56: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
