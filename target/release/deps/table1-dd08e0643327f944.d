/root/repo/target/release/deps/table1-dd08e0643327f944.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-dd08e0643327f944: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
