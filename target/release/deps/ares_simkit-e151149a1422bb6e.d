/root/repo/target/release/deps/ares_simkit-e151149a1422bb6e.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/par.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/libares_simkit-e151149a1422bb6e.rlib: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/par.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/libares_simkit-e151149a1422bb6e.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/event.rs crates/simkit/src/geometry.rs crates/simkit/src/par.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/event.rs:
crates/simkit/src/geometry.rs:
crates/simkit/src/par.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
