/root/repo/target/release/deps/mission_level-5e44d5d3b83ed6d9.d: tests/mission_level.rs

/root/repo/target/release/deps/mission_level-5e44d5d3b83ed6d9: tests/mission_level.rs

tests/mission_level.rs:
