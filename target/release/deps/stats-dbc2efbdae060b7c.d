/root/repo/target/release/deps/stats-dbc2efbdae060b7c.d: crates/bench/src/bin/stats.rs

/root/repo/target/release/deps/stats-dbc2efbdae060b7c: crates/bench/src/bin/stats.rs

crates/bench/src/bin/stats.rs:
