/root/repo/target/release/deps/bytes-4649f2249172ded4.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-4649f2249172ded4.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
