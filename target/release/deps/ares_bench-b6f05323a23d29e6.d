/root/repo/target/release/deps/ares_bench-b6f05323a23d29e6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libares_bench-b6f05323a23d29e6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
