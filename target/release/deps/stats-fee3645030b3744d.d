/root/repo/target/release/deps/stats-fee3645030b3744d.d: crates/bench/src/bin/stats.rs

/root/repo/target/release/deps/stats-fee3645030b3744d: crates/bench/src/bin/stats.rs

crates/bench/src/bin/stats.rs:
