/root/repo/target/release/deps/probe-3c1bcd0ed22ef81f.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-3c1bcd0ed22ef81f: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
