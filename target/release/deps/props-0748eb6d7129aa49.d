/root/repo/target/release/deps/props-0748eb6d7129aa49.d: crates/crew/tests/props.rs

/root/repo/target/release/deps/props-0748eb6d7129aa49: crates/crew/tests/props.rs

crates/crew/tests/props.rs:
