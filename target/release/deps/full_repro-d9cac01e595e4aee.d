/root/repo/target/release/deps/full_repro-d9cac01e595e4aee.d: crates/bench/src/bin/full_repro.rs

/root/repo/target/release/deps/full_repro-d9cac01e595e4aee: crates/bench/src/bin/full_repro.rs

crates/bench/src/bin/full_repro.rs:
