/root/repo/target/release/deps/probe-f2a6c612ff9518bf.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-f2a6c612ff9518bf: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
