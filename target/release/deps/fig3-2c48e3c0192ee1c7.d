/root/repo/target/release/deps/fig3-2c48e3c0192ee1c7.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-2c48e3c0192ee1c7: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
