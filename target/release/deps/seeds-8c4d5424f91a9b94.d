/root/repo/target/release/deps/seeds-8c4d5424f91a9b94.d: crates/bench/src/bin/seeds.rs Cargo.toml

/root/repo/target/release/deps/libseeds-8c4d5424f91a9b94.rmeta: crates/bench/src/bin/seeds.rs Cargo.toml

crates/bench/src/bin/seeds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
