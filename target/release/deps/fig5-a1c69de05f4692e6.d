/root/repo/target/release/deps/fig5-a1c69de05f4692e6.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-a1c69de05f4692e6: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
