/root/repo/target/release/deps/table1-419be65550f91d72.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-419be65550f91d72: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
