/root/repo/target/release/deps/scratch_meet-c697ff9664643f78.d: crates/bench/src/bin/scratch_meet.rs

/root/repo/target/release/deps/scratch_meet-c697ff9664643f78: crates/bench/src/bin/scratch_meet.rs

crates/bench/src/bin/scratch_meet.rs:
