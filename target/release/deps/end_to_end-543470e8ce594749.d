/root/repo/target/release/deps/end_to_end-543470e8ce594749.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-543470e8ce594749: tests/end_to_end.rs

tests/end_to_end.rs:
