/root/repo/target/release/deps/parallel_determinism-20e9ae36be1d023d.d: tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-20e9ae36be1d023d: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
