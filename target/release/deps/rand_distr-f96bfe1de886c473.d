/root/repo/target/release/deps/rand_distr-f96bfe1de886c473.d: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-f96bfe1de886c473.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-f96bfe1de886c473.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
