/root/repo/target/release/deps/fig2-7daf6f9e8eff2019.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-7daf6f9e8eff2019: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
