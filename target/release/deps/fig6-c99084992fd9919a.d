/root/repo/target/release/deps/fig6-c99084992fd9919a.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-c99084992fd9919a: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
