/root/repo/target/release/deps/scratch_occ-556e3e98004cf3e1.d: crates/bench/src/bin/scratch_occ.rs

/root/repo/target/release/deps/scratch_occ-556e3e98004cf3e1: crates/bench/src/bin/scratch_occ.rs

crates/bench/src/bin/scratch_occ.rs:
