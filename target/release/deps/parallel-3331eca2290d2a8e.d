/root/repo/target/release/deps/parallel-3331eca2290d2a8e.d: crates/bench/benches/parallel.rs

/root/repo/target/release/deps/parallel-3331eca2290d2a8e: crates/bench/benches/parallel.rs

crates/bench/benches/parallel.rs:
