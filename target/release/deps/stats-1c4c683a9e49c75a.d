/root/repo/target/release/deps/stats-1c4c683a9e49c75a.d: crates/bench/src/bin/stats.rs

/root/repo/target/release/deps/stats-1c4c683a9e49c75a: crates/bench/src/bin/stats.rs

crates/bench/src/bin/stats.rs:
