/root/repo/target/release/deps/scratch_probe-81b734a275a3aa15.d: tests/scratch_probe.rs

/root/repo/target/release/deps/scratch_probe-81b734a275a3aa15: tests/scratch_probe.rs

tests/scratch_probe.rs:
