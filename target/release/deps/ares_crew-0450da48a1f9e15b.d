/root/repo/target/release/deps/ares_crew-0450da48a1f9e15b.d: crates/crew/src/lib.rs crates/crew/src/behavior.rs crates/crew/src/conversation.rs crates/crew/src/incidents.rs crates/crew/src/roster.rs crates/crew/src/schedule.rs crates/crew/src/surveys.rs crates/crew/src/truth.rs

/root/repo/target/release/deps/ares_crew-0450da48a1f9e15b: crates/crew/src/lib.rs crates/crew/src/behavior.rs crates/crew/src/conversation.rs crates/crew/src/incidents.rs crates/crew/src/roster.rs crates/crew/src/schedule.rs crates/crew/src/surveys.rs crates/crew/src/truth.rs

crates/crew/src/lib.rs:
crates/crew/src/behavior.rs:
crates/crew/src/conversation.rs:
crates/crew/src/incidents.rs:
crates/crew/src/roster.rs:
crates/crew/src/schedule.rs:
crates/crew/src/surveys.rs:
crates/crew/src/truth.rs:
