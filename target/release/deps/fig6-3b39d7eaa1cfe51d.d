/root/repo/target/release/deps/fig6-3b39d7eaa1cfe51d.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/release/deps/libfig6-3b39d7eaa1cfe51d.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
