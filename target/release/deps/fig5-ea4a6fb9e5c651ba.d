/root/repo/target/release/deps/fig5-ea4a6fb9e5c651ba.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-ea4a6fb9e5c651ba: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
