/root/repo/target/release/deps/failure_injection-1480a51e49515ce8.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/release/deps/libfailure_injection-1480a51e49515ce8.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
