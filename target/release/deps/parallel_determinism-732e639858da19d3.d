/root/repo/target/release/deps/parallel_determinism-732e639858da19d3.d: tests/parallel_determinism.rs Cargo.toml

/root/repo/target/release/deps/libparallel_determinism-732e639858da19d3.rmeta: tests/parallel_determinism.rs Cargo.toml

tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
