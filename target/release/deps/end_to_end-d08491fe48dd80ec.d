/root/repo/target/release/deps/end_to_end-d08491fe48dd80ec.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-d08491fe48dd80ec: tests/end_to_end.rs

tests/end_to_end.rs:
