/root/repo/target/release/deps/mission_level-d390927d3e5dc1f8.d: tests/mission_level.rs Cargo.toml

/root/repo/target/release/deps/libmission_level-d390927d3e5dc1f8.rmeta: tests/mission_level.rs Cargo.toml

tests/mission_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
