/root/repo/target/release/deps/bench_pipeline-c8bcb8524855d2aa.d: crates/bench/src/bin/bench_pipeline.rs

/root/repo/target/release/deps/bench_pipeline-c8bcb8524855d2aa: crates/bench/src/bin/bench_pipeline.rs

crates/bench/src/bin/bench_pipeline.rs:
