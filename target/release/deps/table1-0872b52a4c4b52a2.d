/root/repo/target/release/deps/table1-0872b52a4c4b52a2.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-0872b52a4c4b52a2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
