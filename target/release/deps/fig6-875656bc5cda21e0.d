/root/repo/target/release/deps/fig6-875656bc5cda21e0.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-875656bc5cda21e0: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
