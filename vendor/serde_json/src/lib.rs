//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` stub's [`serde::Value`] tree as JSON text.
//! Output conventions match upstream where the repo's artifacts care:
//! two-space indentation for the pretty form, `null` for unit/None, strings
//! escaped per RFC 8259, non-finite floats rendered as `null`.

#![allow(clippy::all)]

use serde::{Serialize, Value};

/// Serialization error (the stub's value model cannot actually fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails with the stub's value model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as pretty JSON (two-space indent).
///
/// # Errors
///
/// Never fails with the stub's value model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => push_escaped(s, out),
        Value::Seq(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(x, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                push_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(x, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let s = "a\"b\\c\n";
        assert_eq!(to_string(&s).unwrap(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Seq(vec![Value::Bool(true)])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string_pretty(&Raw(v)).unwrap();
        assert_eq!(text, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn floats_and_null() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let none: Option<u8> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
    }
}
