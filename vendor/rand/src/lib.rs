//! Offline stand-in for the `rand` crate.
//!
//! The ares build environment has no network access, so the workspace vendors
//! a minimal, deterministic implementation of exactly the `rand` 0.8 API
//! surface it uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`, `sample_iter`),
//! [`SeedableRng`], [`rngs::StdRng`] and [`distributions::Standard`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++, seeded from the
//! 32-byte seed exactly as provided. Streams are fully deterministic across
//! runs and platforms; they do **not** match upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine because every consumer in this workspace derives
//! its expectations from the same seeded streams.

#![allow(clippy::all)]

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, Standard};

/// The core of every generator: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples a value from a distribution.
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }

    /// An iterator of samples from `dist`, consuming the generator.
    fn sample_iter<T, D>(self, dist: D) -> distributions::DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter {
            dist,
            rng: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges a value can be uniformly drawn from.
///
/// Implemented generically over [`SampleUniform`] so `Range<T>: SampleRange<T>`
/// is the single candidate impl and type inference resolves `T` from the
/// range literal, exactly as with upstream rand.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over half-open and closed ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw in `[lo, hi)`; panics when empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw in `[lo, hi]`; panics when empty.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(lo, hi, rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                let v = uniform_below(rng, span as u64) as $u;
                (lo as $u).wrapping_add(v) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return (rng.next_u64() as $u) as $t;
                }
                let v = uniform_below(rng, span as u64) as $u;
                (lo as $u).wrapping_add(v) as $t
            }
        }
    )*};
}

int_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let u: f64 = Standard.sample(rng);
                lo + (hi - lo) * (u as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let u: f64 = Standard.sample(rng);
                lo + (hi - lo) * (u as $t)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Unbiased draw in `[0, bound)` (`bound == 0` means the full `u64` domain)
/// via Lemire's widening-multiply rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Rejected: redraw to stay unbiased.
    }
}
