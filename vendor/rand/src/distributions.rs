//! The distribution trait and the `Standard` uniform distribution.

use crate::RngCore;

/// Types that can produce values of `T` from random bits.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" uniform distribution of a type: full domain for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Iterator over samples, returned by [`crate::Rng::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    pub(crate) dist: D,
    pub(crate) rng: R,
    pub(crate) _marker: core::marker::PhantomData<T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.dist.sample(&mut self.rng))
    }
}
