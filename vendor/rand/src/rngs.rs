//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++.
///
/// Deterministic, `Clone`, `Send` — everything the simulator's seed-split
/// streams need. Not the upstream ChaCha12 `StdRng`; all in-repo streams are
/// self-consistent against this implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}
