//! Offline stand-in for `serde`.
//!
//! The upstream serde data model (Serializer/Deserializer visitors) is far
//! larger than this workspace needs, so the vendored version collapses it to
//! one reflective value type: [`Serialize`] renders `self` into a [`Value`]
//! tree and `serde_json` pretty-prints that tree. [`Deserialize`] rebuilds a
//! value from the same tree. The derive macros live in the sibling
//! `serde_derive` stub and target exactly this trait pair.
//!
//! Conventions mirror upstream where it matters to the JSON artifacts:
//! newtype structs serialize transparently, unit enum variants serialize as
//! their name, and data-carrying variants as a one-entry map.

#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialized value (the stub's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// An ordered map (struct fields keep declaration order).
    Map(Vec<(String, Value)>),
}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self`.
    fn to_value(&self) -> Value;
}

/// Error produced when rebuilding a value from a [`Value`] tree fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError(format!("expected {expected}, got {got:?}")))
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(x) => Ok(*x as $t),
                    Value::I64(x) if *x >= 0 => Ok(*x as $t),
                    other => type_err("unsigned integer", other),
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(x) => Ok(*x as $t),
                    Value::U64(x) => Ok(*x as $t),
                    other => type_err("integer", other),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(f64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(x) => Ok(*x as $t),
                    Value::U64(x) => Ok(*x as $t),
                    other => type_err("number", other),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => type_err("single-char string", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(xs) if xs.len() == N => {
                let items: Result<Vec<T>, DeError> = xs.iter().map(T::from_value).collect();
                items?
                    .try_into()
                    .map_err(|e| DeError(format!("array length mismatch: {e:?}")))
            }
            other => type_err("fixed-size sequence", other),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(xs) => {
                        let mut it = xs.iter();
                        Ok(($(
                            {
                                let _ = $n; // positional marker
                                $t::from_value(it.next().ok_or_else(|| {
                                    DeError("tuple too short".into())
                                })?)?
                            },
                        )+))
                    }
                    other => type_err("tuple sequence", other),
                }
            }
        }
    )*};
}

ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort by rendered key for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::F64(x) => x.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1.5f64, -2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let pair = (3u32, -7i64);
        assert_eq!(<(u32, i64)>::from_value(&pair.to_value()).unwrap(), pair);
        let opt: Option<u8> = None;
        assert_eq!(opt.to_value(), Value::Null);
    }
}
