//! Offline stand-in for `serde_derive`.
//!
//! Emits impls of the vendored `serde` stub's simplified traits
//! (`Serialize::to_value` / `Deserialize::from_value`). The input item is
//! parsed directly from the token stream — no `syn`/`quote` available in the
//! offline build environment — covering the shapes this workspace uses:
//! named-field structs, tuple structs, unit structs, and enums with unit,
//! tuple, or struct variants, plus plain type generics.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Input {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next(); // '#'
                    self.next(); // [...]
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    self.next();
                    if let Some(TokenTree::Group(g)) = self.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            self.next(); // pub(crate) etc.
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive stub: expected identifier, got {other:?}"),
        }
    }

    /// Consumes a balanced `<...>` generics block, returning type param names.
    fn skip_generics(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
            _ => return params,
        }
        self.next(); // '<'
        let mut depth = 1usize;
        let mut at_param_start = true;
        let mut last_was_lifetime = false;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => {
                        at_param_start = true;
                        last_was_lifetime = false;
                    }
                    '\'' if depth == 1 => last_was_lifetime = true,
                    _ => {}
                },
                Some(TokenTree::Ident(id)) => {
                    if depth == 1 && at_param_start {
                        let s = id.to_string();
                        if last_was_lifetime {
                            last_was_lifetime = false;
                        } else if s == "const" {
                            // const param: the next ident is its name but it
                            // must not receive a Serialize bound; skip it.
                        } else {
                            params.push(s);
                        }
                    }
                    at_param_start = false;
                }
                Some(_) => {}
                None => panic!("serde_derive stub: unterminated generics"),
            }
        }
        params
    }

    /// Skips a type expression until a top-level `,` (consumed) or the end.
    fn skip_type(&mut self) {
        let mut angle = 0usize;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle += 1;
                    self.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle = angle.saturating_sub(1);
                    self.next();
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                _ => {
                    self.next();
                }
            }
        }
    }
}

fn parse_input(ts: TokenStream) -> Input {
    let mut c = Cursor::new(ts);
    c.skip_attrs_and_vis();
    let keyword = c.expect_ident();
    let name = c.expect_ident();
    let generics = c.skip_generics();
    // Skip an optional where-clause: scan forward to the body.
    let kind = match keyword.as_str() {
        "struct" => loop {
            match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    break Kind::NamedStruct(parse_named_fields(g.stream()));
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    break Kind::TupleStruct(count_tuple_fields(g.stream()));
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Kind::UnitStruct,
                Some(_) => continue,
                None => break Kind::UnitStruct,
            }
        },
        "enum" => loop {
            match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    break Kind::Enum(parse_variants(g.stream()));
                }
                Some(_) => continue,
                None => panic!("serde_derive stub: enum without body"),
            }
        },
        other => panic!("serde_derive stub: unsupported item kind `{other}`"),
    };
    Input {
        name,
        generics,
        kind,
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        match c.peek() {
            Some(TokenTree::Ident(_)) => {
                fields.push(c.expect_ident());
                // ':'
                c.next();
                c.skip_type();
            }
            _ => break,
        }
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut n = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0usize;
    while let Some(t) = c.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                saw_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle = angle.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => n += 1,
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        n + 1
    } else {
        0
    }
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        let name = match c.peek() {
            Some(TokenTree::Ident(_)) => c.expect_ident(),
            _ => break,
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    c.next();
                    break;
                }
                _ => {
                    c.next();
                }
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn impl_header(trait_name: &str, input: &Input) -> String {
    if input.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", input.name)
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let plain = input.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{plain}>",
            bounded.join(", "),
            input.name
        )
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Value::Map(vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let code = format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header("Serialize", &parsed)
    );
    code.parse()
        .expect("serde_derive stub: generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: {{ let null = ::serde::Value::Null; \
                         let fv = entries.iter().find(|(k, _)| k == \"{f}\").map(|(_, v)| v).unwrap_or(&null); \
                         ::serde::Deserialize::from_value(fv)? }}"
                    )
                })
                .collect();
            format!(
                "match v {{ ::serde::Value::Map(entries) => Ok({name} {{ {} }}), \
                 other => Err(::serde::DeError(format!(\"expected map for {name}, got {{other:?}}\"))) }}",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(xs.get({i}).unwrap_or(&null))?"))
                .collect();
            format!(
                "match v {{ ::serde::Value::Seq(xs) => {{ let null = ::serde::Value::Null; Ok({name}({})) }}, \
                 other => Err(::serde::DeError(format!(\"expected seq for {name}, got {{other:?}}\"))) }}",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("{{ let _ = v; Ok({name}) }}"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!(
                                    "::serde::Deserialize::from_value(xs.get({i}).unwrap_or(&null))?"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match payload {{ ::serde::Value::Seq(xs) => {{ let null = ::serde::Value::Null; Ok({name}::{vn}({})) }}, other => Err(::serde::DeError(format!(\"expected seq payload for {vn}, got {{other:?}}\"))) }},",
                                items.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: {{ let null = ::serde::Value::Null; \
                                     let fv = entries.iter().find(|(k, _)| k == \"{f}\").map(|(_, v)| v).unwrap_or(&null); \
                                     ::serde::Deserialize::from_value(fv)? }}"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match payload {{ ::serde::Value::Map(entries) => Ok({name}::{vn} {{ {} }}), other => Err(::serde::DeError(format!(\"expected map payload for {vn}, got {{other:?}}\"))) }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ {} _ => Err(::serde::DeError(format!(\"unknown variant {{s}} of {name}\"))) }}, \
                 ::serde::Value::Map(m) if m.len() == 1 => {{ let (tag, payload) = &m[0]; match tag.as_str() {{ {} _ => Err(::serde::DeError(format!(\"unknown variant {{tag}} of {name}\"))) }} }}, \
                 other => Err(::serde::DeError(format!(\"expected enum value for {name}, got {{other:?}}\"))) }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    let code = format!(
        "{} {{ fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }} }}",
        impl_header("Deserialize", &parsed)
    );
    code.parse()
        .expect("serde_derive stub: generated Deserialize impl must parse")
}
