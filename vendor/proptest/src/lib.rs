//! Offline stand-in for `proptest`.
//!
//! Keeps the upstream surface this workspace uses — `proptest!`,
//! `prop_assert*`, range/tuple/vec/option/bool/string strategies and
//! `prop_map` — but generates inputs with a plain seeded RNG and reports
//! failures through `assert!`, without shrinking. Each test function derives
//! its stream from a hash of its own name, so runs are deterministic and
//! independent of test execution order.

#![allow(clippy::all)]

use rand::rngs::StdRng;

#[doc(hidden)]
pub use rand as __rand;

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a, used to give every property its own deterministic seed.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+)),* $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

/// String strategy from a pattern literal.
///
/// Supports the character-class-with-repetition shape the tests use
/// (`"[a-z]{1,12}"`): one bracketed class of ranges/single chars followed by
/// an optional `{min,max}` count (default exactly 1).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        use rand::Rng;
        let (class, min, max) = parse_simple_pattern(self);
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| class[rng.gen_range(0..class.len())])
            .collect()
    }
}

fn parse_simple_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let bytes: Vec<char> = pat.chars().collect();
    assert!(
        bytes.first() == Some(&'['),
        "proptest stub supports only `[class]{{min,max}}` patterns, got {pat:?}"
    );
    let close = bytes
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| panic!("unterminated class in pattern {pat:?}"));
    let mut class = Vec::new();
    let mut i = 1;
    while i < close {
        if i + 2 < close && bytes[i + 1] == '-' {
            let (lo, hi) = (bytes[i], bytes[i + 2]);
            for c in lo..=hi {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(bytes[i]);
            i += 1;
        }
    }
    assert!(!class.is_empty(), "empty class in pattern {pat:?}");
    let rest: String = bytes[close + 1..].iter().collect();
    if rest.is_empty() {
        return (class, 1, 1);
    }
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pat:?}"));
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = counts.trim().parse().unwrap();
            (n, n)
        }
    };
    (class, min, max)
}

/// Strategy modules mirroring the upstream `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// A `Vec` of values from `element`, with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            let SizeRange { min, max } = size.into();
            VecStrategy { element, min, max }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        /// Generates either boolean with equal probability.
        pub const ANY: super::super::BoolAny = super::super::BoolAny;
    }

    /// Option strategies.
    pub mod option {
        use super::super::{OptionStrategy, Strategy};

        /// `None` or `Some(value from s)`, with equal probability.
        pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
            OptionStrategy { inner: s }
        }
    }
}

/// Length bounds for [`prop::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.end > r.start, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>`.
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        use rand::Rng;
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `bool`.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        use rand::Rng;
        rng.gen::<bool>()
    }
}

/// Strategy for `Option<S::Value>`.
#[derive(Debug, Clone, Copy)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        use rand::Rng;
        if rng.gen::<bool>() {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn pattern_strategy_respects_class_and_length() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let strat = prop::collection::vec(0u8..4, 3..=5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_in_range(x in 10u32..20, flip in prop::bool::ANY) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(flip || !flip);
        }

        #[test]
        fn prop_map_applies(y in (0i64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!((0..20).contains(&y));
        }
    }
}
