//! Offline stand-in for `rand_distr`: the three distributions the ares
//! workspace samples (Normal, Exp, Poisson), over the vendored `rand` core.

#![allow(clippy::all)]

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// The normal (Gaussian) distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Rejects non-finite parameters or negative standard deviation.
    pub fn new(mean: f64, sd: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !sd.is_finite() || sd < 0.0 {
            return Err(ParamError("normal requires finite mean and sd >= 0"));
        }
        Ok(Normal { mean, sd })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: exactly two uniform draws per sample, which keeps the
        // per-packet draw count of the RF fast path predictable.
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * (1.0 - u1).max(f64::MIN_POSITIVE).ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.mean + self.sd * r * theta.cos()
    }
}

/// The exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive rates.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError("exp requires rate > 0"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).max(f64::MIN_POSITIVE).ln() / self.lambda
    }
}

/// The Poisson distribution with the given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive means.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError("poisson requires mean > 0"));
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0f64;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k as f64;
                }
                k += 1;
            }
        }
        // Large mean: normal approximation with continuity correction,
        // clamped at zero. Adequate for the behaviour simulator's event
        // counts, and keeps the draw count at two.
        let n = Normal::new(self.lambda, self.lambda.sqrt()).expect("valid params");
        n.sample(rng).round().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.08, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(8);
        let d = Exp::new(0.5).unwrap();
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(9);
        for lambda in [0.5, 4.0, 50.0] {
            let d = Poisson::new(lambda).unwrap();
            let n = 20_000;
            let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < 0.1 * lambda.max(1.0),
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
    }
}
