//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives behind parking_lot's
//! non-poisoning API (`lock()`/`read()`/`write()` return guards directly).
//! Poisoned std locks are recovered into their inner guard, matching
//! parking_lot's behaviour of never poisoning.

#![allow(clippy::all)]

use std::sync;

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutex whose guard never reports poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Exclusive mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
