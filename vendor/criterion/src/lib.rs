//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the `ares-bench` benches use — groups,
//! sample sizes, throughput annotation, `Bencher::iter` — as a plain
//! wall-clock timing loop printing one summary line per benchmark. There is
//! no statistical analysis, HTML report, or baseline comparison.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Upstream-compat no-op (CLI filtering is not implemented).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: self.default_sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(name, sample_size, None, f);
        self
    }

    /// Upstream-compat no-op.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing sample size and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `routine` (after one warmup run).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{name:<50} median {median:>12?}  mean {mean:>12?}{rate}");
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg.configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_collects_samples() {
        benches();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 5);
    }
}
