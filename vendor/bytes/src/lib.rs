//! Offline stand-in for `bytes`.
//!
//! `BytesMut` is a growable byte buffer, `Bytes` an immutable cursor over a
//! shared (`Arc`) byte block. The `Buf`/`BufMut` traits carry exactly the
//! accessors the on-card codec uses. No zero-copy splitting beyond `slice`.

#![allow(clippy::all)]

use std::sync::Arc;

/// Read-side accessor trait.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the read cursor.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `i16`.
    fn get_i16_le(&mut self) -> i16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        i16::from_le_bytes(raw)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        i64::from_le_bytes(raw)
    }
}

/// Write-side accessor trait.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `i16`.
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
            start: 0,
            end_offset: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable view over shared bytes, with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    /// Distance from the block's end to this view's end.
    end_offset: usize,
}

impl Bytes {
    /// Unread length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end() - self.start
    }

    /// Whether nothing remains.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn end(&self) -> usize {
        self.data.len() - self.end_offset
    }

    /// Copies the unread bytes into a fresh `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// A sub-view; accepts the range forms the workspace uses.
    #[must_use]
    pub fn slice(&self, range: impl SliceRange) -> Bytes {
        let (lo, hi) = range.resolve(self.len());
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end_offset: self.data.len() - (self.start + hi),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
            start: 0,
            end_offset: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end()]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

/// Range argument for [`Bytes::slice`].
pub trait SliceRange {
    /// Resolves to `(start, end)` within a view of length `len`.
    fn resolve(self, len: usize) -> (usize, usize);
}

impl SliceRange for std::ops::Range<usize> {
    fn resolve(self, _len: usize) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl SliceRange for std::ops::RangeTo<usize> {
    fn resolve(self, _len: usize) -> (usize, usize) {
        (0, self.end)
    }
}

impl SliceRange for std::ops::RangeFrom<usize> {
    fn resolve(self, len: usize) -> (usize, usize) {
        (self.start, len)
    }
}

impl SliceRange for std::ops::RangeFull {
    fn resolve(self, len: usize) -> (usize, usize) {
        (0, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_primitives_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xB5);
        buf.put_i64_le(-123_456_789);
        buf.put_i16_le(-3200);
        buf.put_bytes(7, 3);
        assert_eq!(buf.len(), 14);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 14);
        assert_eq!(b.get_u8(), 0xB5);
        assert_eq!(b.get_i64_le(), -123_456_789);
        assert_eq!(b.get_i16_le(), -3200);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.remaining(), 2);
        assert!(b.has_remaining());
    }

    #[test]
    fn slice_views_share_storage() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"hello world");
        let b = buf.freeze();
        let hello = b.slice(..5);
        let world = b.slice(6..11);
        assert_eq!(hello.as_ref(), b"hello");
        assert_eq!(world.as_ref(), b"world");
        let mut cur = b.slice(..);
        cur.advance(6);
        assert_eq!(cur.as_ref(), b"world");
    }
}
