//! Offline stand-in for `crossbeam`.
//!
//! Provides the pieces this workspace uses: `channel::unbounded` MPMC
//! channels with disconnect detection (built on `Mutex<VecDeque>` +
//! `Condvar`), and `scope` re-exported from `std::thread`. Semantics match
//! upstream for the operations exposed; performance characteristics do not
//! (and do not need to — channels sit on control paths here, not data paths).

#![allow(clippy::all)]

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    #[derive(Debug)]
    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        space: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages.
    /// `try_send` on a full channel returns [`TrySendError::Full`]; `send`
    /// blocks until a receiver makes room.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (rendezvous channels are not modelled).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "zero-capacity channels are not supported");
        channel(Some(cap))
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full (never produced by unbounded channels).
        Full(T),
        /// All receivers have been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe EOF.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Non-blocking send.
        ///
        /// # Errors
        ///
        /// Returns [`TrySendError::Disconnected`] when no receiver remains,
        /// [`TrySendError::Full`] when a bounded channel is at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut q = self.shared.queue.lock().expect("channel mutex");
            if let Some(cap) = self.shared.capacity {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Blocking send (never blocks for unbounded channels; blocks until
        /// room frees up for bounded ones).
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] when no receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.capacity.is_none() {
                return self.try_send(value).map_err(|e| match e {
                    TrySendError::Full(v) | TrySendError::Disconnected(v) => SendError(v),
                });
            }
            let cap = self.shared.capacity.expect("bounded");
            let mut q = self.shared.queue.lock().expect("channel mutex");
            loop {
                if self.shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                if q.len() < cap {
                    q.push_back(value);
                    drop(q);
                    self.shared.ready.notify_one();
                    return Ok(());
                }
                q = self.shared.space.wait(q).expect("channel condvar");
            }
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake blocked bounded senders so they error.
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally no sender remains.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().expect("channel mutex");
            match q.pop_front() {
                Some(v) => {
                    drop(q);
                    self.shared.space.notify_one();
                    Ok(v)
                }
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and closed.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel mutex");
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).expect("channel condvar");
            }
        }

        /// Number of queued messages.
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel mutex").len()
        }

        /// Whether the queue is empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Scoped threads (std's implementation matches the crossbeam API shape).
pub use std::thread::scope;

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError, TrySendError};

    #[test]
    fn bounded_rejects_when_full_and_frees_on_recv() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_blocking_send_waits_for_room() {
        let (tx, rx) = bounded(1);
        tx.send(1u8).unwrap();
        let h = std::thread::spawn(move || tx.send(2u8));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.try_recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed_on_both_ends() {
        let (tx, rx) = unbounded();
        tx.try_send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.try_send(2u8), Err(TrySendError::Disconnected(2)));
    }

    #[test]
    fn blocking_recv_sees_cross_thread_sends() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        h.join().unwrap();
        assert_eq!(got.len(), 100);
    }
}
