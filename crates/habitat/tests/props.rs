//! Property tests for the habitat substrate.

use ares_habitat::beacons::BeaconDeployment;
use ares_habitat::environment::Environment;
use ares_habitat::fieldcache::{room_wall_floor, RfFieldCache};
use ares_habitat::floorplan::FloorPlan;
use ares_habitat::rf::{Channel, ChannelParams};
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::Point2;
use ares_simkit::rng::SeedTree;
use ares_simkit::time::SimTime;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The canonical cache (plan + 27 beacons + charging-station extra), built
/// once for all cases.
fn canonical_cache() -> &'static (FloorPlan, RfFieldCache) {
    static CACHE: OnceLock<(FloorPlan, RfFieldCache)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let plan = FloorPlan::lunares();
        let deployment = BeaconDeployment::icares(&plan);
        let cache = RfFieldCache::build(&plan, &deployment, &[Point2::new(30.0, -5.2)]);
        (plan, cache)
    })
}

/// A random probe point spanning the grid and a margin beyond it (so the
/// off-grid oracle fallback is exercised too).
fn probe_point(plan: &FloorPlan, fx: f64, fy: f64) -> Point2 {
    let (lo, hi) = plan.bounds();
    Point2::new(
        lo.x - 1.0 + fx * (hi.x - lo.x + 2.0),
        lo.y - 1.0 + fy * (hi.y - lo.y + 2.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_interior_point_belongs_to_exactly_one_room(
        fx in 0.02f64..0.98, fy in 0.02f64..0.98, room_idx in 0usize..10,
    ) {
        let plan = FloorPlan::lunares();
        let room = RoomId::ALL[room_idx];
        let (min, max) = plan.room_polygon(room).bounds();
        // Strictly interior point of the chosen room.
        let p = Point2::new(
            min.x + 0.05 + fx * (max.x - min.x - 0.1),
            min.y + 0.05 + fy * (max.y - min.y - 0.1),
        );
        prop_assert_eq!(plan.room_at(p), Some(room));
    }

    #[test]
    fn routes_are_symmetric_and_door_connected(a in 0usize..10, b in 0usize..10) {
        let plan = FloorPlan::lunares();
        let (x, y) = (RoomId::ALL[a], RoomId::ALL[b]);
        let fwd = plan.route(x, y).expect("habitat is connected");
        let back = plan.route(y, x).expect("habitat is connected");
        prop_assert_eq!(fwd.len(), back.len(), "asymmetric route lengths");
        prop_assert_eq!(*fwd.first().unwrap(), x);
        prop_assert_eq!(*fwd.last().unwrap(), y);
        for pair in fwd.windows(2) {
            prop_assert!(
                plan.door_between(pair[0], pair[1]).is_some(),
                "route hop {}→{} has no door", pair[0], pair[1]
            );
        }
    }

    #[test]
    fn ranging_inverts_path_loss_everywhere(d in 0.3f64..30.0, walls in 0usize..3) {
        let p = ChannelParams::ble();
        let rssi = p.mean_rssi(d, walls);
        if walls == 0 {
            let back = p.distance_for_rssi(rssi);
            prop_assert!((back - d).abs() < 1e-6, "{back} vs {d}");
        } else {
            // Walls only ever reduce RSSI.
            prop_assert!(rssi < p.mean_rssi(d, 0));
        }
    }

    #[test]
    fn rssi_is_monotone_in_distance(d1 in 0.3f64..30.0, d2 in 0.3f64..30.0) {
        let p = ChannelParams::sub_ghz();
        if d1 < d2 {
            prop_assert!(p.mean_rssi(d1, 0) > p.mean_rssi(d2, 0));
        }
    }

    #[test]
    fn reception_probability_decays_with_walls(seed in 0u64..500) {
        let plan = FloorPlan::lunares();
        let ch = Channel::new(ChannelParams::ble());
        let mut rng = SeedTree::new(seed).stream("prop-rf");
        let tx = plan.room_center(RoomId::Office);
        let near = tx + ares_simkit::geometry::Vec2::new(1.0, 0.5);
        let far = plan.room_center(RoomId::Bedroom);
        let mut near_ok = 0;
        let mut far_ok = 0;
        for _ in 0..60 {
            if ch.transmit(&plan, tx, near, &mut rng).rssi().is_some() {
                near_ok += 1;
            }
            if ch.transmit(&plan, tx, far, &mut rng).rssi().is_some() {
                far_ok += 1;
            }
        }
        prop_assert!(near_ok > 40, "same-room link unreliable: {near_ok}/60");
        prop_assert_eq!(far_ok, 0, "cross-habitat link must be shielded");
    }

    #[test]
    fn thinned_deployments_are_subsets(per_room in 0usize..4) {
        let plan = FloorPlan::lunares();
        let full = BeaconDeployment::icares(&plan);
        let thin = full.thinned(per_room);
        prop_assert!(thin.len() <= full.len());
        for b in thin.beacons() {
            let original = full.get(b.id).expect("thin beacon exists in full");
            prop_assert_eq!(original.position, b.position);
        }
        for room in RoomId::ALL {
            prop_assert!(thin.in_room(room).count() <= per_room);
        }
    }

    #[test]
    fn field_cache_walls_match_the_oracle_everywhere(
        fx in 0.0f64..1.0, fy in 0.0f64..1.0, source_frac in 0.0f64..1.0,
    ) {
        let (plan, cache) = canonical_cache();
        let p = probe_point(plan, fx, fy);
        let source = ((source_frac * cache.source_count() as f64) as usize)
            .min(cache.source_count() - 1);
        let exact = plan.walls_crossed(cache.source_position(source), p);
        prop_assert_eq!(
            cache.walls_from(plan, source, p), exact,
            "source {} at probe ({}, {})", source, p.x, p.y
        );
    }

    #[test]
    fn field_cache_mean_rssi_is_bit_identical(
        fx in 0.0f64..1.0, fy in 0.0f64..1.0, source_frac in 0.0f64..1.0,
    ) {
        let (plan, cache) = canonical_cache();
        let p = probe_point(plan, fx, fy);
        let source = ((source_frac * cache.source_count() as f64) as usize)
            .min(cache.source_count() - 1);
        let src = cache.source_position(source);
        let params = ChannelParams::ble();
        let through_cache = params.mean_rssi(src.distance(p), cache.walls_from(plan, source, p));
        let exact = params.mean_rssi(src.distance(p), plan.walls_crossed(src, p));
        // Bit-for-bit, not approximately: the recorder's draws hang off this.
        prop_assert_eq!(through_cache.to_bits(), exact.to_bits());
    }

    #[test]
    fn field_cache_rooms_match_the_oracle_everywhere(fx in 0.0f64..1.0, fy in 0.0f64..1.0) {
        let (plan, cache) = canonical_cache();
        let p = probe_point(plan, fx, fy);
        prop_assert_eq!(cache.room_of(plan, p), plan.room_at(p));
    }

    #[test]
    fn room_wall_floor_is_a_sound_lower_bound(
        a in 0usize..10, b in 0usize..10, fx in 0.1f64..0.9, fy in 0.1f64..0.9,
    ) {
        let (plan, _) = canonical_cache();
        let (ra, rb) = (RoomId::ALL[a], RoomId::ALL[b]);
        let floor = room_wall_floor(ra, rb);
        prop_assert_eq!(floor, room_wall_floor(rb, ra), "floor must be symmetric");
        // Any segment between interior points of the two rooms crosses at
        // least `floor` walls.
        let (min_a, max_a) = plan.room_polygon(ra).bounds();
        let (min_b, max_b) = plan.room_polygon(rb).bounds();
        let pa = Point2::new(
            min_a.x + 0.05 + fx * (max_a.x - min_a.x - 0.1),
            min_a.y + 0.05 + fy * (max_a.y - min_a.y - 0.1),
        );
        let pb = Point2::new(
            min_b.x + 0.05 + fy * (max_b.x - min_b.x - 0.1),
            min_b.y + 0.05 + fx * (max_b.y - min_b.y - 0.1),
        );
        prop_assert!(
            plan.walls_crossed(pa, pb) >= floor,
            "{}→{}: {} walls < floor {}", ra, rb, plan.walls_crossed(pa, pb), floor
        );
    }

    #[test]
    fn mean_rssi_batch_is_bit_identical_for_every_tail_length(
        dists in prop::collection::vec(0.0f64..60.0, 1..(3 * ares_simkit::lanes::LANES)),
        wall_counts in prop::collection::vec(0usize..6, 3 * ares_simkit::lanes::LANES),
        ble in prop::bool::ANY,
    ) {
        // Lengths 1..3×LANES cover full lanes plus every possible tail.
        let params = if ble { ChannelParams::ble() } else { ChannelParams::sub_ghz() };
        let walls: Vec<f64> = wall_counts[..dists.len()].iter().map(|&w| w as f64).collect();
        let mut batch = vec![0.0; dists.len()];
        params.mean_rssi_batch(&dists, &walls, &mut batch);
        for (i, (&d, &w)) in dists.iter().zip(&wall_counts[..dists.len()]).enumerate() {
            // Bit-for-bit, not approximately: scan plans hang off this.
            prop_assert_eq!(batch[i].to_bits(), params.mean_rssi(d, w).to_bits());
        }
    }

    #[test]
    fn interned_cache_is_shared_and_bit_identical_to_a_fresh_build(
        fx in 0.0f64..1.0, fy in 0.0f64..1.0, source_frac in 0.0f64..1.0,
    ) {
        let plan = FloorPlan::lunares();
        let deployment = BeaconDeployment::icares(&plan);
        let station = Point2::new(30.0, -5.2);
        let a = RfFieldCache::build_interned(&plan, &deployment, &[station]);
        let b = RfFieldCache::build_interned(&plan, &deployment, &[station]);
        // Same geometry → the very same grid, not a copy.
        prop_assert!(std::sync::Arc::ptr_eq(&a, &b));
        // A different extra-source layout must not collide.
        let c = RfFieldCache::build_interned(&plan, &deployment, &[Point2::new(31.0, -5.2)]);
        prop_assert!(!std::sync::Arc::ptr_eq(&a, &c));
        // Hit-path answers are bit-identical to a cold, non-interned build.
        let (fresh_plan, fresh) = canonical_cache();
        let p = probe_point(fresh_plan, fx, fy);
        let source = ((source_frac * fresh.source_count() as f64) as usize)
            .min(fresh.source_count() - 1);
        prop_assert_eq!(
            a.walls_from(&plan, source, p),
            fresh.walls_from(fresh_plan, source, p)
        );
        prop_assert_eq!(a.room_of(&plan, p), fresh.room_of(fresh_plan, p));
        for room in RoomId::ALL {
            prop_assert_eq!(a.candidates(room), fresh.candidates(room));
        }
    }

    #[test]
    fn environment_fields_stay_physical(day in 1u32..15, h in 0u32..24, m in 0u32..60, room_idx in 0usize..10) {
        let env = Environment::icares();
        let t = SimTime::from_day_hms(day, h, m, 0);
        let room = RoomId::ALL[room_idx];
        let temp = env.temperature_c(room, t);
        prop_assert!((5.0..=30.0).contains(&temp), "temp {temp}");
        let lux = env.light_lux(room, t);
        prop_assert!((0.0..=1000.0).contains(&lux), "lux {lux}");
        let hpa = env.pressure_hpa(t);
        prop_assert!((995.0..=1010.0).contains(&hpa), "pressure {hpa}");
        let phase = env.day_phase(t);
        prop_assert!((0.0..1.0).contains(&phase));
    }
}
