//! Typed habitat specification — the geometry half of a scenario spec.
//!
//! A [`HabitatSpec`] describes the whole Lunares-class plan family as data:
//! eight peripheral modules in a west-to-east row over a full-width main
//! hall, a hangar attached north of the airlock, one hall door per module,
//! per-room beacon mounts and the charging-station position. The canonical
//! ICAres-1 plan is [`HabitatSpec::lunares`]; [`FloorPlan::from_spec`]
//! rebuilds it byte-identically (`lunares()` is now just that spec).
//!
//! Every plan of the family preserves the two structural properties the
//! engine's fast paths rely on:
//!
//! 1. modules form a contiguous row of uniform depth with full-height side
//!    walls (doors only in the south walls, plus the airlock→hangar door in
//!    the airlock's north wall), so the `2·|i − j|` wall-crossing lower
//!    bound ([`FloorPlan::wall_floor`]) stays sound on any module order; and
//! 2. all rooms are axis-aligned rectangles, which `RfFieldCache` requires
//!    for its oracle-exact purity certification.
//!
//! [`FloorPlan::from_spec`]: crate::floorplan::FloorPlan::from_spec
//! [`FloorPlan::wall_floor`]: crate::floorplan::FloorPlan::wall_floor

use crate::floorplan::{DOOR_W, MAIN_D, MODULE_D, MODULE_W, PERIPHERAL_ORDER};
use crate::rooms::RoomId;
use serde::{Deserialize, Serialize};

/// The geometry of one habitat as data: module row, hall, hangar, doors,
/// beacon mounts and station. All lengths in metres; fractions in `0..=1`
/// of the owning edge or room extent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HabitatSpec {
    /// West-to-east order of the eight peripheral modules.
    pub module_order: [RoomId; 8],
    /// Width of each module, indexed like `module_order`.
    pub module_widths: [f64; 8],
    /// Uniform depth of the module row (the `y ∈ [0, depth]` band).
    pub module_depth: f64,
    /// Depth of the main hall south of the row (`y ∈ [-hall_depth, 0]`).
    pub hall_depth: f64,
    /// Width of each module's hall door, indexed like `module_order`.
    pub door_widths: [f64; 8],
    /// Door center as a fraction of the module width, indexed like
    /// `module_order`.
    pub door_fractions: [f64; 8],
    /// Hangar rectangle `(x, y, w, h)`; `y` must equal `module_depth` so the
    /// hangar sits flush on the row.
    pub hangar: (f64, f64, f64, f64),
    /// Width of the airlock→hangar door.
    pub hangar_door_width: f64,
    /// Hangar door center as a fraction of the airlock width.
    pub hangar_door_fraction: f64,
    /// Three beacon mounts per module as `(fx, fy)` fractions of the room
    /// bounds, indexed like `module_order`.
    pub peripheral_mounts: [[(f64, f64); 3]; 8],
    /// Three beacon mounts in the main hall as `(fx, fy)` fractions.
    pub hall_mounts: [(f64, f64); 3],
    /// Badge charging-station position (must lie inside the main hall).
    pub station: (f64, f64),
}

impl HabitatSpec {
    /// The canonical ICAres-1 habitat: 4 m modules in [`PERIPHERAL_ORDER`],
    /// a 6 m-deep hall, the hangar north of the airlock and the paper's
    /// 27-beacon deployment pattern.
    #[must_use]
    pub fn lunares() -> Self {
        HabitatSpec {
            module_order: PERIPHERAL_ORDER,
            module_widths: [MODULE_W; 8],
            module_depth: MODULE_D,
            hall_depth: MAIN_D,
            door_widths: [DOOR_W; 8],
            door_fractions: [0.5; 8],
            hangar: (-2.0, MODULE_D, 8.0, 8.0),
            hangar_door_width: DOOR_W,
            hangar_door_fraction: 0.5,
            peripheral_mounts: [[(0.15, 0.85), (0.85, 0.85), (0.50, 0.15)]; 8],
            hall_mounts: [(0.15, 0.5), (0.5, 0.5), (0.85, 0.5)],
            station: (30.0, -5.2),
        }
    }

    /// Total width of the module row (and of the hall beneath it).
    #[must_use]
    pub fn total_width(&self) -> f64 {
        self.module_widths.iter().sum()
    }

    /// West edge of the module at `index` in `module_order` (cumulative sum
    /// of the widths before it).
    #[must_use]
    pub fn module_x(&self, index: usize) -> f64 {
        self.module_widths[..index].iter().sum()
    }

    /// Position of `room` in `module_order`, if it is a peripheral module.
    #[must_use]
    pub fn module_index(&self, room: RoomId) -> Option<usize> {
        self.module_order.iter().position(|&r| r == room)
    }
}

impl Default for HabitatSpec {
    fn default() -> Self {
        HabitatSpec::lunares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lunares_spec_matches_canonical_constants() {
        let s = HabitatSpec::lunares();
        assert_eq!(s.total_width(), 32.0);
        assert_eq!(s.module_x(0), 0.0);
        assert_eq!(s.module_x(7), 28.0);
        assert_eq!(s.module_index(RoomId::Airlock), Some(0));
        assert_eq!(s.module_index(RoomId::Kitchen), Some(7));
        assert_eq!(s.module_index(RoomId::Main), None);
        assert_eq!(s.module_index(RoomId::Hangar), None);
    }

    #[test]
    fn spec_round_trips_through_serde() {
        let s = HabitatSpec::lunares();
        let back = HabitatSpec::from_value(&s.to_value()).expect("deserializes");
        assert_eq!(back, s);
    }
}
