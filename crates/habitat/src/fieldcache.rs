//! Precomputed RF field cache over a quantized floor-plan grid.
//!
//! The RF hot path during day recording is `FloorPlan::walls_crossed` — a
//! linear scan over every wall segment per transmitted packet — plus
//! `FloorPlan::room_at` — a polygon containment test per position sample.
//! Both are pure functions of geometry that never changes after `World`
//! construction, so this module precomputes them on a uniform grid:
//!
//! * per **source** (each beacon plus extra fixed transmitters such as the
//!   charging station), the wall-crossing count from the source to every grid
//!   cell, and
//! * per cell, the room the cell lies in.
//!
//! The cache is *exact, not approximate*: a cell is only tabulated when the
//! precomputation can **prove** the answer is constant across the whole cell;
//! otherwise the cell carries a `MIXED` sentinel and queries fall back to the
//! exact geometric oracle. Consumers therefore get bit-identical results with
//! the cache on or off — property-tested in `tests/props.rs`.
//!
//! # Purity proof sketch (wall counts)
//!
//! For a fixed source `s` and wall `w`, the indicator "segment `s → p`
//! crosses `w`" changes value only when `p` crosses the *shadow boundary* of
//! `w`: the wall segment itself, or one of the two rays cast from the wall's
//! endpoints in the direction away from `s`. A wall is *uncertain* in a cell
//! for `s` if its segment touches the cell (conservative bounding-box strip;
//! exact for the axis-aligned walls of the habitat) or one of its
//! shadow-boundary rays passes near it (rays are marched at quarter-cell
//! steps, each sample marking every cell within an eighth of a cell — a
//! superset, since any ray point lies within an eighth of a cell of some
//! sample). A wall that is *not* uncertain in a cell has a constant indicator
//! across the whole cell.
//!
//! The build resolves each `(source, cell)` pair to one of three states:
//!
//! * **pure** — no wall is uncertain: the total count is constant and equals
//!   the count sampled at the cell's corners (the build additionally requires
//!   all four corner samples to agree before trusting the cell);
//! * **partial** — some walls are uncertain, but few: the certain walls
//!   contribute a constant `base` count (evaluated at two opposite corners,
//!   which must agree), and the short list of uncertain wall ids is stored so
//!   a query can test exactly those walls against the exact `source → p`
//!   segment. `base + Σ uncertain-wall tests` is term-for-term the oracle's
//!   filter-count, so the result is bit-identical to `walls_crossed`;
//! * **mixed** — the uncertain list is too long (or a consistency check
//!   failed): the query falls back to the full oracle.
//!
//! # Purity proof sketch (rooms)
//!
//! `FloorPlan::room_at` tests rooms in a fixed priority order with closed
//! (boundary-inclusive, ≈1e-9 tolerance) containment. A cell is tabulated as
//! room `r` only when every higher-priority room is separated from the cell
//! by more than [`ROOM_MARGIN_M`] (so containment is false everywhere in the
//! cell) and the cell is wholly inside `r`'s closed rectangle (non-rectangular
//! rooms are never tabulated). The grid is offset from the plan bounds by
//! [`EDGE_OFFSET_M`] so cell edges never coincide with the integer / half-odd
//! wall coordinates of the canonical plan, keeping the mixed strips thin.

use crate::beacons::BeaconDeployment;
use crate::floorplan::{FloorPlan, PERIPHERAL_ORDER};
use crate::rooms::{RoomId, RoomTable};
use ares_simkit::geometry::{Grid, Point2, Segment};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Side of a cache grid cell, in meters.
pub const CELL_M: f64 = 0.25;

/// Offset of the grid origin below the plan bounds, in meters.
///
/// Chosen so cell edges sit at least 0.01 m away from the integer and
/// half-meter wall coordinates of the canonical plan, which would otherwise
/// put every wall exactly on a cell boundary and double the impure strip
/// width.
pub const EDGE_OFFSET_M: f64 = 0.26;

/// Minimum separation between a cell and a room before the room is treated
/// as definitely-not-containing any cell point. Must exceed the ≈1e-9
/// boundary tolerance of `Polygon::contains`.
const ROOM_MARGIN_M: f64 = 1e-6;

/// Sentinel wall count: the cell could not be proven constant; resolve via
/// the partial table or the exact oracle.
const MIXED: u16 = u16::MAX;

/// Longest uncertain-wall shortlist a partial cell may carry; cells with more
/// uncertain walls fall back to the full oracle (rare: corners and doorway
/// clusters).
const SHORTLIST_CAP: usize = 24;

/// Room code for cells proven outside every room.
const ROOM_OUTSIDE: u8 = RoomId::ALL.len() as u8;

/// Room code for cells whose room could not be proven constant.
const ROOM_MIXED: u8 = u8::MAX;

/// Precomputed per-source wall-crossing counts and per-cell room lookups.
///
/// Built once per `World` from the floor plan and beacon deployment; see the
/// module docs for the exactness contract.
#[derive(Debug, Clone)]
pub struct RfFieldCache {
    grid: Grid,
    sources: Vec<Point2>,
    /// Per-source wall-count field (pure counts + partial-evaluation tables).
    fields: Vec<SourceField>,
    /// Per-cell room code: `RoomId::ALL` index, [`ROOM_OUTSIDE`], or
    /// [`ROOM_MIXED`].
    cell_rooms: Vec<u8>,
    /// Per-room scanner candidates: indices into the deployment's beacon
    /// slice, in deployment order (same contents and order as the scanner's
    /// own-room-or-adjacent filter).
    candidates: RoomTable<Vec<u8>>,
}

/// One source's wall-count field over the grid.
///
/// `counts[cell]` is the proven-constant count, or [`MIXED`]. For mixed
/// cells, `partial[cell]` is a 1-based index into `entries` (0 = unresolved:
/// the query runs the full oracle). A partial entry certifies the count of
/// every *certain* wall (`base`) and lists the uncertain wall ids in
/// `shortlist[start..start + len]`.
#[derive(Debug, Clone)]
struct SourceField {
    counts: Vec<u16>,
    partial: Vec<u32>,
    entries: Vec<PartialEntry>,
    shortlist: Vec<u16>,
}

#[derive(Debug, Clone, Copy)]
struct PartialEntry {
    base: u16,
    start: u32,
    len: u16,
}

impl RfFieldCache {
    /// Builds the cache for a plan and beacon deployment.
    ///
    /// Sources are the deployment's beacons in order, followed by
    /// `extra_sources` (e.g. the charging station) — so beacon `i` is source
    /// `i` and extra `j` is source `deployment.len() + j`.
    #[must_use]
    pub fn build(
        plan: &FloorPlan,
        deployment: &BeaconDeployment,
        extra_sources: &[Point2],
    ) -> Self {
        let (lo, hi) = plan.bounds();
        let origin = Point2::new(lo.x - EDGE_OFFSET_M, lo.y - EDGE_OFFSET_M);
        let max = Point2::new(hi.x + EDGE_OFFSET_M, hi.y + EDGE_OFFSET_M);
        let grid = Grid::covering(origin, max, CELL_M);

        let sources: Vec<Point2> = deployment
            .beacons()
            .iter()
            .map(|b| b.position)
            .chain(extra_sources.iter().copied())
            .collect();

        let boxes = wall_boxes(plan);
        let wall_cells = mark_wall_cells(&grid, origin, &boxes);
        let fields = sources
            .iter()
            .map(|&s| classify_source(plan, &boxes, &grid, origin, &wall_cells, s))
            .collect();

        let cell_rooms = classify_rooms(plan, &grid, origin);

        let candidates = RoomTable::from_fn(|room| {
            deployment
                .beacons()
                .iter()
                .enumerate()
                .filter(|(_, b)| b.room == room || plan.door_between(b.room, room).is_some())
                .map(|(i, _)| u8::try_from(i).expect("≤ 255 beacons"))
                .collect()
        });

        RfFieldCache {
            grid,
            sources,
            fields,
            cell_rooms,
            candidates,
        }
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of sources (beacons + extras).
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Position of source `i`.
    #[must_use]
    pub fn source_position(&self, source: usize) -> Point2 {
        self.sources[source]
    }

    /// The tabulated wall count from source `source` to the cell containing
    /// `p`, or `None` when the cell is not fully pure or `p` is off-grid.
    #[must_use]
    pub fn cached_walls(&self, source: usize, p: Point2) -> Option<usize> {
        let (ix, iy) = self.grid.cell_of(p)?;
        let count = self.fields[source].counts[iy * self.grid.nx() + ix];
        (count != MIXED).then_some(count as usize)
    }

    /// Wall-crossing count from source `source` to `p`, bit-identical to
    /// `plan.walls_crossed(source_position, p)`: the tabulated value for pure
    /// cells, `base` + exact tests of the uncertain shortlist for partial
    /// cells, the full oracle otherwise.
    #[must_use]
    pub fn walls_from(&self, plan: &FloorPlan, source: usize, p: Point2) -> usize {
        let src = self.sources[source];
        let Some((ix, iy)) = self.grid.cell_of(p) else {
            return plan.walls_crossed(src, p);
        };
        let cell = iy * self.grid.nx() + ix;
        let field = &self.fields[source];
        let count = field.counts[cell];
        if count != MIXED {
            return count as usize;
        }
        let slot = field.partial[cell];
        if slot == 0 {
            return plan.walls_crossed(src, p);
        }
        let entry = field.entries[slot as usize - 1];
        let ray = Segment::new(src, p);
        let walls = plan.walls();
        let start = entry.start as usize;
        entry.base as usize
            + field.shortlist[start..start + entry.len as usize]
                .iter()
                .filter(|&&w| walls[w as usize].intersects(&ray))
                .count()
    }

    /// The room containing `p`, bit-identical to `plan.room_at(p)`.
    #[must_use]
    pub fn room_of(&self, plan: &FloorPlan, p: Point2) -> Option<RoomId> {
        match self.grid.cell_of(p) {
            Some((ix, iy)) => match self.cell_rooms[iy * self.grid.nx() + ix] {
                ROOM_MIXED => plan.room_at(p),
                ROOM_OUTSIDE => None,
                code => Some(RoomId::ALL[code as usize]),
            },
            None => plan.room_at(p),
        }
    }

    /// Beacon indices a scan from `room` must consider (own room or adjacent
    /// through a door), in deployment order.
    #[must_use]
    pub fn candidates(&self, room: RoomId) -> &[u8] {
        &self.candidates[room]
    }

    /// Fraction of `(source, cell)` entries proven constant — a build-quality
    /// statistic surfaced in benches and docs.
    #[must_use]
    pub fn pure_fraction(&self) -> f64 {
        let total = self.fields.len() * self.grid.len();
        if total == 0 {
            return 0.0;
        }
        let pure: usize = self
            .fields
            .iter()
            .map(|f| f.counts.iter().filter(|&&c| c != MIXED).count())
            .sum();
        pure as f64 / total as f64
    }

    /// Fraction of `(source, cell)` entries the cache can answer without the
    /// full oracle: pure cells plus partially-evaluated cells.
    #[must_use]
    pub fn resolved_fraction(&self) -> f64 {
        let total = self.fields.len() * self.grid.len();
        if total == 0 {
            return 0.0;
        }
        let resolved: usize = self
            .fields
            .iter()
            .map(|f| {
                f.counts
                    .iter()
                    .zip(&f.partial)
                    .filter(|&(&c, &p)| c != MIXED || p != 0)
                    .count()
            })
            .sum();
        resolved as f64 / total as f64
    }
}

/// A closed-form **lower bound** on `walls_crossed` between any point of room
/// `a` and any point of room `b` **on the canonical Lunares plan**.
///
/// Kept for the canonical-geometry tests; runtime cull sites use the
/// plan-aware [`FloorPlan::wall_floor`], which computes the same bound from
/// the plan's actual module order (identical to this function on the Lunares
/// plan, and correct on every generated spec).
///
/// Two distinct peripheral modules `i` and `j` (west-to-east positions in
/// [`PERIPHERAL_ORDER`]) sit in closed rectangles spanning `y ∈ [0, 4]`; any
/// segment between them is x-monotone and crosses each of the `|i − j|`
/// module-boundary planes at `y ∈ [0, 4]`, where both collinear wall copies
/// lie with no door cuts — `2·|i − j|` guaranteed crossings. Pairs involving
/// the main hall or hangar get the trivial bound 0 (their shared boundaries
/// have doors).
#[must_use]
pub fn room_wall_floor(a: RoomId, b: RoomId) -> usize {
    if a == b {
        return 0;
    }
    let pos = |r: RoomId| PERIPHERAL_ORDER.iter().position(|&p| p == r);
    match (pos(a), pos(b)) {
        (Some(i), Some(j)) => 2 * i.abs_diff(j),
        _ => 0,
    }
}

/// Axis-aligned bounding boxes of the plan's walls, for cheap ray pruning.
fn wall_boxes(plan: &FloorPlan) -> Vec<(Segment, Point2, Point2)> {
    plan.walls()
        .iter()
        .map(|&w| {
            let lo = Point2::new(w.a.x.min(w.b.x), w.a.y.min(w.b.y));
            let hi = Point2::new(w.a.x.max(w.b.x), w.a.y.max(w.b.y));
            (w, lo, hi)
        })
        .collect()
}

/// For every cell, the ids of the walls whose segment can touch it.
///
/// Uses each wall's bounding box expanded by a hair; for the axis-aligned
/// walls of the habitat the box *is* the wall, so the strip is exact up to
/// the expansion. Non-axis-aligned walls would get a conservative superset.
/// Walls are visited in id order, so each per-cell list comes out sorted and
/// duplicate-free.
fn mark_wall_cells(
    grid: &Grid,
    origin: Point2,
    boxes: &[(Segment, Point2, Point2)],
) -> Vec<Vec<u16>> {
    let (nx, ny, cell) = (grid.nx(), grid.ny(), grid.cell_size());
    let mut cells: Vec<Vec<u16>> = vec![Vec::new(); nx * ny];
    for (wid, &(_, lo, hi)) in boxes.iter().enumerate() {
        let wid = u16::try_from(wid).expect("≤ 65 535 walls");
        let ix0 = cell_floor((lo.x - 1e-9 - origin.x) / cell, nx);
        let ix1 = cell_floor((hi.x + 1e-9 - origin.x) / cell, nx);
        let iy0 = cell_floor((lo.y - 1e-9 - origin.y) / cell, ny);
        let iy1 = cell_floor((hi.y + 1e-9 - origin.y) / cell, ny);
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                cells[iy * nx + ix].push(wid);
            }
        }
    }
    cells
}

/// Floors a fractional cell coordinate and clamps it into `0..n`.
fn cell_floor(f: f64, n: usize) -> usize {
    let i = f.floor();
    if i < 0.0 {
        0
    } else {
        (i as usize).min(n - 1)
    }
}

/// One source's field: pure counts where purity could be proven, partial
/// entries (certified base + uncertain-wall shortlist) where only a few walls
/// are uncertain, [`MIXED`] with no partial entry elsewhere.
fn classify_source(
    plan: &FloorPlan,
    boxes: &[(Segment, Point2, Point2)],
    grid: &Grid,
    origin: Point2,
    wall_cells: &[Vec<u16>],
    source: Point2,
) -> SourceField {
    let (nx, ny, cell_m) = (grid.nx(), grid.ny(), grid.cell_size());
    let corners = corner_counts(boxes, grid, origin, source);
    let shadow = mark_shadow_walls(grid, origin, plan.walls(), source);
    let mut counts = vec![MIXED; nx * ny];
    let mut partial = vec![0u32; nx * ny];
    let mut entries = Vec::new();
    let mut shortlist = Vec::new();
    let Some(shadow) = shadow else {
        // Degenerate source (on a wall endpoint): every cell stays oracle.
        return SourceField {
            counts,
            partial,
            entries,
            shortlist,
        };
    };
    let mut uncertain: Vec<u16> = Vec::new();
    for iy in 0..ny {
        for ix in 0..nx {
            let cell = iy * nx + ix;
            merge_sorted(&wall_cells[cell], &shadow[cell], &mut uncertain);
            let c00 = corners[iy * (nx + 1) + ix];
            if uncertain.is_empty() {
                let c10 = corners[iy * (nx + 1) + ix + 1];
                let c01 = corners[(iy + 1) * (nx + 1) + ix];
                let c11 = corners[(iy + 1) * (nx + 1) + ix + 1];
                if c00 == c10 && c00 == c01 && c00 == c11 {
                    counts[cell] = c00;
                }
                continue;
            }
            if uncertain.len() > SHORTLIST_CAP {
                continue;
            }
            // Base count over the *certain* walls, certified at two opposite
            // corners: every certain wall's indicator is constant across the
            // cell, so both corners must (and do) agree.
            let corner00 =
                Point2::new(origin.x + ix as f64 * cell_m, origin.y + iy as f64 * cell_m);
            let corner11 = Point2::new(corner00.x + cell_m, corner00.y + cell_m);
            let base00 = count_excluding(boxes, &uncertain, source, corner00);
            let base11 = count_excluding(boxes, &uncertain, source, corner11);
            if base00 != base11 {
                continue;
            }
            let start = u32::try_from(shortlist.len()).expect("shortlist fits u32");
            let len = u16::try_from(uncertain.len()).expect("≤ SHORTLIST_CAP");
            shortlist.extend_from_slice(&uncertain);
            entries.push(PartialEntry {
                base: base00,
                start,
                len,
            });
            partial[cell] = u32::try_from(entries.len()).expect("entries fit u32");
        }
    }
    SourceField {
        counts,
        partial,
        entries,
        shortlist,
    }
}

/// Merges two sorted duplicate-free id lists into `out` (cleared first).
fn merge_sorted(a: &[u16], b: &[u16], out: &mut Vec<u16>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        out.push(next);
    }
}

/// Exact crossing count of `source → p` over every wall whose id is *not* in
/// the sorted `excluded` list, with the same bbox prune as `corner_counts`.
fn count_excluding(
    boxes: &[(Segment, Point2, Point2)],
    excluded: &[u16],
    source: Point2,
    p: Point2,
) -> u16 {
    let ray = Segment::new(source, p);
    let (rx0, rx1) = (source.x.min(p.x) - 1e-9, source.x.max(p.x) + 1e-9);
    let (ry0, ry1) = (source.y.min(p.y) - 1e-9, source.y.max(p.y) + 1e-9);
    let mut skip = excluded.iter().copied().peekable();
    let mut n = 0u16;
    for (wid, (w, lo, hi)) in boxes.iter().enumerate() {
        let wid = wid as u16;
        if skip.peek() == Some(&wid) {
            skip.next();
            continue;
        }
        if hi.x < rx0 || lo.x > rx1 || hi.y < ry0 || lo.y > ry1 {
            continue;
        }
        if w.intersects(&ray) {
            n += 1;
        }
    }
    n
}

/// Exact wall-crossing counts sampled at every grid corner.
fn corner_counts(
    boxes: &[(Segment, Point2, Point2)],
    grid: &Grid,
    origin: Point2,
    source: Point2,
) -> Vec<u16> {
    let (nx, ny, cell) = (grid.nx(), grid.ny(), grid.cell_size());
    let mut counts = vec![0u16; (nx + 1) * (ny + 1)];
    for iy in 0..=ny {
        for ix in 0..=nx {
            let corner = Point2::new(origin.x + ix as f64 * cell, origin.y + iy as f64 * cell);
            let ray = Segment::new(source, corner);
            let (rx0, rx1) = (source.x.min(corner.x) - 1e-9, source.x.max(corner.x) + 1e-9);
            let (ry0, ry1) = (source.y.min(corner.y) - 1e-9, source.y.max(corner.y) + 1e-9);
            let mut n = 0u16;
            for (w, lo, hi) in boxes {
                if hi.x < rx0 || lo.x > rx1 || hi.y < ry0 || lo.y > ry1 {
                    continue;
                }
                if w.intersects(&ray) {
                    n += 1;
                }
            }
            counts[iy * (nx + 1) + ix] = n;
        }
    }
    counts
}

/// For every cell, the ids of the walls whose shadow-boundary rays pass near
/// it: for each wall endpoint `e`, the ray from `e` in the direction away
/// from `source`, marched at quarter-cell steps. Each sample marks every cell
/// whose closed rectangle lies within an eighth of a cell of it — a proven
/// superset of the cells the ray passes through, since any ray point is
/// within an eighth of a cell of some sample. Walls are visited in id order
/// and pushes are last-element-deduplicated, so each per-cell list comes out
/// sorted and duplicate-free. Returns `None` when the source coincides with a
/// wall endpoint (every direction is a shadow boundary — never happens for
/// real mounts; the caller leaves every cell on the oracle).
fn mark_shadow_walls(
    grid: &Grid,
    origin: Point2,
    walls: &[Segment],
    source: Point2,
) -> Option<Vec<Vec<u16>>> {
    let (nx, ny, cell) = (grid.nx(), grid.ny(), grid.cell_size());
    let gmax = Point2::new(origin.x + nx as f64 * cell, origin.y + ny as f64 * cell);
    let mut shadow: Vec<Vec<u16>> = vec![Vec::new(); nx * ny];
    let mark_near = |wid: u16, p: Point2, shadow: &mut Vec<Vec<u16>>| {
        // Cells within an eighth of a cell of `p` in each axis (≤ 2 × 2).
        let fx = (p.x - origin.x) / cell;
        let fy = (p.y - origin.y) / cell;
        let (x0, x1) = ((fx - 0.125).floor() as i64, (fx + 0.125).floor() as i64);
        let (y0, y1) = ((fy - 0.125).floor() as i64, (fy + 0.125).floor() as i64);
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                if (0..nx as i64).contains(&ix) && (0..ny as i64).contains(&iy) {
                    let list = &mut shadow[iy as usize * nx + ix as usize];
                    if list.last() != Some(&wid) {
                        list.push(wid);
                    }
                }
            }
        }
    };
    for (wid, w) in walls.iter().enumerate() {
        let wid = u16::try_from(wid).expect("≤ 65 535 walls");
        for &e in &[w.a, w.b] {
            let d = e - source;
            let norm = d.norm();
            if norm < 1e-9 {
                return None;
            }
            let u = d / norm;
            let tx = if u.x > 0.0 {
                (gmax.x - e.x) / u.x
            } else if u.x < 0.0 {
                (origin.x - e.x) / u.x
            } else {
                f64::INFINITY
            };
            let ty = if u.y > 0.0 {
                (gmax.y - e.y) / u.y
            } else if u.y < 0.0 {
                (origin.y - e.y) / u.y
            } else {
                f64::INFINITY
            };
            let t_exit = tx.min(ty).max(0.0);
            let step = cell * 0.25;
            let steps = (t_exit / step).ceil() as usize;
            for k in 0..=steps {
                let t = (k as f64 * step).min(t_exit);
                mark_near(wid, e + u * t, &mut shadow);
            }
        }
    }
    Some(shadow)
}

/// Per-cell room codes replicating `FloorPlan::room_at`'s priority order.
fn classify_rooms(plan: &FloorPlan, grid: &Grid, origin: Point2) -> Vec<u8> {
    let (nx, ny, cell) = (grid.nx(), grid.ny(), grid.cell_size());
    let priority: Vec<RoomId> = PERIPHERAL_ORDER
        .iter()
        .copied()
        .chain([RoomId::Main, RoomId::Hangar])
        .collect();
    // Precompute per-room bounds and rectangularity once.
    let shapes: Vec<(RoomId, Point2, Point2, bool)> = priority
        .iter()
        .map(|&room| {
            let poly = plan.room_polygon(room);
            let (lo, hi) = poly.bounds();
            let is_rect = poly.vertices().len() == 4
                && (poly.area() - (hi.x - lo.x) * (hi.y - lo.y)).abs() < 1e-9;
            (room, lo, hi, is_rect)
        })
        .collect();
    let mut codes = vec![ROOM_OUTSIDE; nx * ny];
    for iy in 0..ny {
        for ix in 0..nx {
            let x0 = origin.x + ix as f64 * cell;
            let y0 = origin.y + iy as f64 * cell;
            let (x1, y1) = (x0 + cell, y0 + cell);
            for &(room, lo, hi, is_rect) in &shapes {
                let clear = x1 < lo.x - ROOM_MARGIN_M
                    || x0 > hi.x + ROOM_MARGIN_M
                    || y1 < lo.y - ROOM_MARGIN_M
                    || y0 > hi.y + ROOM_MARGIN_M;
                if clear {
                    continue;
                }
                let inside = is_rect && x0 >= lo.x && x1 <= hi.x && y0 >= lo.y && y1 <= hi.y;
                codes[iy * nx + ix] = if inside {
                    u8::try_from(room.index()).expect("≤ 255 rooms")
                } else {
                    ROOM_MIXED
                };
                break;
            }
        }
    }
    codes
}

/// Process-wide intern table for [`RfFieldCache::build_interned`]: geometry
/// fingerprint → weakly-held cache. Entries drop with their last `Arc`, so
/// interning never pins memory past the worlds that use it.
static INTERNED: OnceLock<Mutex<HashMap<u64, Weak<RfFieldCache>>>> = OnceLock::new();

impl RfFieldCache {
    /// Interning wrapper around [`RfFieldCache::build`]: returns the shared
    /// cache for this geometry, building it only the first time the geometry
    /// is seen. Keyed by [`geometry_fingerprint`], so every fleet shard and
    /// scenario replica of the same habitat resolves to one grid instead of
    /// rebuilding ~100 ms of tables per tenant. The build runs under the
    /// table lock, so concurrent tenants of the same geometry never
    /// duplicate the work.
    #[must_use]
    pub fn build_interned(
        plan: &FloorPlan,
        deployment: &BeaconDeployment,
        extra_sources: &[Point2],
    ) -> Arc<Self> {
        let key = geometry_fingerprint(plan, deployment, extra_sources);
        let mut map = INTERNED
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("intern table poisoned");
        if let Some(cached) = map.get(&key).and_then(Weak::upgrade) {
            return cached;
        }
        let built = Arc::new(Self::build(plan, deployment, extra_sources));
        map.retain(|_, w| w.strong_count() > 0);
        map.insert(key, Arc::downgrade(&built));
        built
    }
}

/// 64-bit FNV-1a fingerprint of everything an [`RfFieldCache`] is a pure
/// function of: room polygons (in priority order), wall segments, doors,
/// the deployment's beacons and the extra sources. Coordinates are hashed by
/// bit pattern — the cache is exact, so any bit of geometric difference must
/// key a different cache.
#[must_use]
pub fn geometry_fingerprint(
    plan: &FloorPlan,
    deployment: &BeaconDeployment,
    extra_sources: &[Point2],
) -> u64 {
    let mut h = Fnv::new();
    for room in RoomId::ALL {
        let poly = plan.room_polygon(room);
        h.mix(poly.vertices().len() as u64);
        for &v in poly.vertices() {
            h.point(v);
        }
    }
    h.mix(plan.walls().len() as u64);
    for w in plan.walls() {
        h.point(w.a);
        h.point(w.b);
    }
    h.mix(plan.doors().len() as u64);
    for d in plan.doors() {
        h.mix(d.a.index() as u64);
        h.mix(d.b.index() as u64);
        h.point(d.center);
        h.point(d.gap.a);
        h.point(d.gap.b);
    }
    h.mix(deployment.len() as u64);
    for b in deployment.beacons() {
        h.mix(u64::from(b.id.0));
        h.mix(b.room.index() as u64);
        h.point(b.position);
    }
    h.mix(extra_sources.len() as u64);
    for &p in extra_sources {
        h.point(p);
    }
    h.0
}

/// Minimal FNV-1a accumulator for [`geometry_fingerprint`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn point(&mut self, p: Point2) {
        self.mix(p.x.to_bits());
        self.mix(p.y.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rf::ChannelParams;

    fn cache() -> (FloorPlan, BeaconDeployment, RfFieldCache) {
        let plan = FloorPlan::lunares();
        let dep = BeaconDeployment::icares(&plan);
        let station = Point2::new(30.0, -5.2);
        let cache = RfFieldCache::build(&plan, &dep, &[station]);
        (plan, dep, cache)
    }

    /// Deterministic lattice of probe points spanning the plan bounds with a
    /// step that is irrational w.r.t. both the grid and the wall coordinates.
    fn probes(plan: &FloorPlan) -> Vec<Point2> {
        let (lo, hi) = plan.bounds();
        let mut pts = Vec::new();
        let mut y = lo.y - 0.3;
        while y < hi.y + 0.3 {
            let mut x = lo.x - 0.3;
            while x < hi.x + 0.3 {
                pts.push(Point2::new(x, y));
                x += 0.73;
            }
            y += 0.61;
        }
        pts
    }

    #[test]
    fn cache_matches_exact_walls_everywhere() {
        let (plan, _, cache) = cache();
        for p in probes(&plan) {
            for s in 0..cache.source_count() {
                assert_eq!(
                    cache.walls_from(&plan, s, p),
                    plan.walls_crossed(cache.source_position(s), p),
                    "source {s} at {p}"
                );
            }
        }
    }

    #[test]
    fn cache_matches_exact_rooms_everywhere() {
        let (plan, _, cache) = cache();
        for p in probes(&plan) {
            assert_eq!(cache.room_of(&plan, p), plan.room_at(p), "room at {p}");
        }
    }

    #[test]
    fn mean_rssi_is_bit_identical_through_cache() {
        let (plan, _, cache) = cache();
        let params = ChannelParams::ble();
        for p in probes(&plan) {
            for s in 0..cache.source_count() {
                let src = cache.source_position(s);
                let exact = params.mean_rssi(src.distance(p), plan.walls_crossed(src, p));
                let cached = params.mean_rssi(src.distance(p), cache.walls_from(&plan, s, p));
                assert!(
                    exact == cached,
                    "mean rssi drift at {p} source {s}: {exact} vs {cached}"
                );
            }
        }
    }

    #[test]
    fn most_cells_are_pure() {
        let (_, _, cache) = cache();
        let frac = cache.pure_fraction();
        assert!(frac > 0.5, "pure fraction too low: {frac}");
    }

    #[test]
    fn nearly_all_cells_resolve_without_the_full_oracle() {
        let (_, _, cache) = cache();
        let resolved = cache.resolved_fraction();
        assert!(resolved >= cache.pure_fraction());
        assert!(resolved > 0.95, "resolved fraction too low: {resolved}");
    }

    #[test]
    fn candidates_match_scanner_filter() {
        let (plan, dep, cache) = cache();
        for room in RoomId::ALL {
            let expect: Vec<u8> = dep
                .beacons()
                .iter()
                .enumerate()
                .filter(|(_, b)| b.room == room || plan.door_between(b.room, room).is_some())
                .map(|(i, _)| i as u8)
                .collect();
            assert_eq!(cache.candidates(room), expect.as_slice(), "{room}");
        }
        // Peripheral rooms see their 3 own + 3 main-hall beacons.
        assert_eq!(cache.candidates(RoomId::Kitchen).len(), 6);
        // Main sees everything (doors to all peripherals).
        assert_eq!(cache.candidates(RoomId::Main).len(), 27);
    }

    #[test]
    fn room_wall_floor_bounds_are_sound_and_tight() {
        let plan = FloorPlan::lunares();
        assert_eq!(room_wall_floor(RoomId::Office, RoomId::Office), 0);
        assert_eq!(room_wall_floor(RoomId::Airlock, RoomId::Workshop), 2);
        assert_eq!(room_wall_floor(RoomId::Airlock, RoomId::Kitchen), 14);
        assert_eq!(room_wall_floor(RoomId::Main, RoomId::Kitchen), 0);
        assert_eq!(room_wall_floor(RoomId::Hangar, RoomId::Airlock), 0);
        // Soundness: the bound never exceeds the exact count for interior
        // probe pairs.
        let pts = |r: RoomId| {
            let c = plan.room_center(r);
            [
                c,
                Point2::new(c.x - 1.2, c.y + 0.9),
                Point2::new(c.x + 1.1, c.y - 1.3),
            ]
        };
        for &a in &PERIPHERAL_ORDER {
            for &b in &PERIPHERAL_ORDER {
                let floor = room_wall_floor(a, b);
                for pa in pts(a) {
                    for pb in pts(b) {
                        assert!(
                            plan.walls_crossed(pa, pb) >= floor,
                            "{a}→{b}: floor {floor} exceeds exact"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn off_grid_points_fall_back_to_oracle() {
        let (plan, _, cache) = cache();
        let far = Point2::new(500.0, 500.0);
        assert_eq!(cache.cached_walls(0, far), None);
        assert_eq!(
            cache.walls_from(&plan, 0, far),
            plan.walls_crossed(cache.source_position(0), far)
        );
        assert_eq!(cache.room_of(&plan, far), None);
    }
}
