//! The habitat floor plan: room polygons, doors, walls and the adjacency
//! graph.
//!
//! The peripheral modules sit in a row ("semicircle" unrolled — only topology
//! and metal-wall shielding matter to the analyses) on the north side of the
//! central main hall, each connected to the hall by a single door. The hangar
//! attaches to the airlock. This reproduces the two properties the paper's
//! localization relies on:
//!
//! 1. every inter-room movement transits the main hall, and
//! 2. the metal walls of any room perfectly shield beacon signals from other
//!    rooms, except for occasional leakage through open doors.
//!
//! Plans are built from a typed [`HabitatSpec`] ([`FloorPlan::from_spec`]);
//! the canonical ICAres-1 plan is the spec [`HabitatSpec::lunares`], which
//! [`FloorPlan::lunares`] rebuilds byte-identically.

use crate::rooms::{RoomId, RoomTable};
use crate::spec::HabitatSpec;
use ares_simkit::geometry::{Point2, Polygon, Segment};
use serde::{Deserialize, Serialize};

/// Width of every peripheral module (m).
pub const MODULE_W: f64 = 4.0;
/// Depth of every peripheral module (m).
pub const MODULE_D: f64 = 4.0;
/// Depth of the main hall (m).
pub const MAIN_D: f64 = 6.0;
/// Width of a doorway (m).
pub const DOOR_W: f64 = 1.0;

/// A doorway between two rooms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Door {
    /// One side of the door.
    pub a: RoomId,
    /// The other side.
    pub b: RoomId,
    /// Center of the doorway opening.
    pub center: Point2,
    /// The doorway as a segment (the gap in the wall).
    pub gap: Segment,
}

impl Door {
    /// Whether this door connects `x` and `y` (in either order).
    #[must_use]
    pub fn connects(&self, x: RoomId, y: RoomId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

/// The full floor plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorPlan {
    rooms: RoomTable<Polygon>,
    doors: Vec<Door>,
    walls: Vec<Segment>,
    /// Per-room `(neighbor, door index)` lists in door order — the
    /// precomputed adjacency map behind `neighbors`/`door_between`/`route`.
    adjacency: RoomTable<Vec<(RoomId, u16)>>,
    /// Peripheral modules sorted west to east by their polygon's min-x —
    /// the geometric order behind [`FloorPlan::wall_floor`].
    module_order: Vec<RoomId>,
    /// Dense `RoomId × RoomId` wall-crossing lower bounds (row-major by
    /// `RoomId::index`).
    wall_floor: Vec<u8>,
}

// The wire format carries only geometry (rooms, doors, walls) — exactly the
// fields the struct had before the derived caches existed. The adjacency
// map, module order and wall-floor table are deterministic functions of the
// geometry and are rebuilt on deserialization.
impl serde::Serialize for FloorPlan {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("rooms".to_string(), self.rooms.to_value()),
            ("doors".to_string(), self.doors.to_value()),
            ("walls".to_string(), self.walls.to_value()),
        ])
    }
}

impl serde::Deserialize for FloorPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let serde::Value::Map(fields) = v else {
            return Err(serde::DeError(format!("expected FloorPlan map, got {v:?}")));
        };
        let field = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| serde::DeError(format!("FloorPlan missing field {name}")))
        };
        let rooms = RoomTable::<Polygon>::from_value(field("rooms")?)?;
        let doors = Vec::<Door>::from_value(field("doors")?)?;
        let walls = Vec::<Segment>::from_value(field("walls")?)?;
        let mut plan = FloorPlan::assemble(rooms, doors);
        plan.walls = walls;
        Ok(plan)
    }
}

/// Order of the eight peripheral modules from west to east **in the
/// canonical Lunares plan**.
///
/// The kitchen sits at the far end from the office and workshop — the very
/// arrangement the paper's Fig. 2 analysis concludes was suboptimal.
///
/// This constant is also the fixed priority order of
/// [`FloorPlan::room_at`]'s boundary tie-break, for *every* plan of the
/// family — generated plans permute the geometric order but keep this
/// resolution order, so localization of shared-boundary points never depends
/// on the permutation.
pub const PERIPHERAL_ORDER: [RoomId; 8] = [
    RoomId::Airlock,
    RoomId::Workshop,
    RoomId::Office,
    RoomId::Storage,
    RoomId::Biolab,
    RoomId::Bedroom,
    RoomId::Restroom,
    RoomId::Kitchen,
];

impl FloorPlan {
    /// Builds the canonical ICAres-1 floor plan — exactly
    /// `FloorPlan::from_spec(&HabitatSpec::lunares())`.
    #[must_use]
    pub fn lunares() -> Self {
        Self::from_spec(&HabitatSpec::lunares())
    }

    /// Builds a floor plan from a habitat spec: the module row over the main
    /// hall, one hall door per module, and the hangar behind the airlock.
    ///
    /// For [`HabitatSpec::lunares`] this reproduces the historical
    /// hand-built plan bit-for-bit (pinned by a test): module x-origins are
    /// exact cumulative sums, door centers exact fractions of module widths.
    ///
    /// # Panics
    ///
    /// Panics if the spec's module order omits the airlock.
    #[must_use]
    pub fn from_spec(spec: &HabitatSpec) -> Self {
        let total_w = spec.total_width();
        let mut rooms: RoomTable<Polygon> =
            RoomTable::from_fn(|_| Polygon::rect(0.0, 0.0, 1.0, 1.0));
        // Main hall along the south.
        rooms[RoomId::Main] = Polygon::rect(0.0, -spec.hall_depth, total_w, spec.hall_depth);
        // Peripheral modules in a row on the north side, with their hall
        // doors in the south walls.
        let mut doors = Vec::new();
        let mut x = 0.0;
        for (i, &room) in spec.module_order.iter().enumerate() {
            let w = spec.module_widths[i];
            rooms[room] = Polygon::rect(x, 0.0, w, spec.module_depth);
            let cx = x + spec.door_fractions[i] * w;
            let half = spec.door_widths[i] / 2.0;
            doors.push(Door {
                a: room,
                b: RoomId::Main,
                center: Point2::new(cx, 0.0),
                gap: Segment::new(Point2::new(cx - half, 0.0), Point2::new(cx + half, 0.0)),
            });
            x += w;
        }
        // Hangar flush on the row, reached through the airlock's north wall.
        let (hx, hy, hw, hh) = spec.hangar;
        rooms[RoomId::Hangar] = Polygon::rect(hx, hy, hw, hh);
        let ai = spec
            .module_index(RoomId::Airlock)
            .expect("airlock in module order");
        let cx = spec.module_x(ai) + spec.hangar_door_fraction * spec.module_widths[ai];
        let half = spec.hangar_door_width / 2.0;
        doors.push(Door {
            a: RoomId::Airlock,
            b: RoomId::Hangar,
            center: Point2::new(cx, spec.module_depth),
            gap: Segment::new(
                Point2::new(cx - half, spec.module_depth),
                Point2::new(cx + half, spec.module_depth),
            ),
        });
        Self::assemble(rooms, doors)
    }

    /// Builds walls and the derived caches over finished rooms and doors.
    fn assemble(rooms: RoomTable<Polygon>, doors: Vec<Door>) -> Self {
        let mut adjacency: RoomTable<Vec<(RoomId, u16)>> = RoomTable::new();
        for (i, d) in doors.iter().enumerate() {
            let i = u16::try_from(i).expect("≤ 65 535 doors");
            adjacency[d.a].push((d.b, i));
            adjacency[d.b].push((d.a, i));
        }
        let mut order: Vec<RoomId> = RoomId::ALL
            .iter()
            .copied()
            .filter(|&r| r != RoomId::Main && r != RoomId::Hangar)
            .collect();
        order.sort_by(|&a, &b| {
            let (xa, xb) = (rooms[a].bounds().0.x, rooms[b].bounds().0.x);
            xa.partial_cmp(&xb)
                .expect("finite room bounds")
                .then(a.index().cmp(&b.index()))
        });
        let n = RoomId::ALL.len();
        let mut wall_floor = vec![0u8; n * n];
        for (i, &a) in order.iter().enumerate() {
            for (j, &b) in order.iter().enumerate() {
                wall_floor[a.index() * n + b.index()] =
                    u8::try_from(2 * i.abs_diff(j)).expect("≤ 127 modules");
            }
        }
        let mut plan = FloorPlan {
            rooms,
            doors,
            walls: Vec::new(),
            adjacency,
            module_order: order,
            wall_floor,
        };
        plan.walls = plan.build_walls();
        plan
    }

    /// The polygon of a room.
    #[must_use]
    pub fn room_polygon(&self, room: RoomId) -> &Polygon {
        &self.rooms[room]
    }

    /// All doors.
    #[must_use]
    pub fn doors(&self) -> &[Door] {
        &self.doors
    }

    /// All wall segments (room boundaries with doorway gaps removed).
    #[must_use]
    pub fn walls(&self) -> &[Segment] {
        &self.walls
    }

    /// The peripheral modules of this plan, west to east (by polygon min-x).
    #[must_use]
    pub fn module_order(&self) -> &[RoomId] {
        &self.module_order
    }

    /// The room containing point `p`.
    ///
    /// Room rectangles are closed, so points on a shared boundary (the wall
    /// plane between two abutting modules, a module's south edge on the
    /// hall, the hangar's south edge on the row) lie in more than one room.
    /// The tie-break is **deterministic and plan-independent**: the first
    /// containing room in the fixed priority [`PERIPHERAL_ORDER`], then
    /// [`RoomId::Main`], then [`RoomId::Hangar`]. `RfFieldCache` classifies
    /// grid cells with the same priority, so cached and exact room lookups
    /// agree on every boundary point of every generated plan.
    #[must_use]
    pub fn room_at(&self, p: Point2) -> Option<RoomId> {
        // Peripheral rooms first so boundary points resolve deterministically.
        for &room in &PERIPHERAL_ORDER {
            if self.rooms[room].contains(p) {
                return Some(room);
            }
        }
        if self.rooms[RoomId::Main].contains(p) {
            return Some(RoomId::Main);
        }
        if self.rooms[RoomId::Hangar].contains(p) {
            return Some(RoomId::Hangar);
        }
        None
    }

    /// Rooms adjacent to `room` through a door, in door order (the same
    /// order the historical door-list scan produced).
    #[must_use]
    pub fn neighbors(&self, room: RoomId) -> Vec<RoomId> {
        self.adjacency[room].iter().map(|&(r, _)| r).collect()
    }

    /// The door between two rooms, if directly connected. Ties (several
    /// doors between the same pair) resolve to the lowest door index, like
    /// the historical linear scan.
    #[must_use]
    pub fn door_between(&self, a: RoomId, b: RoomId) -> Option<&Door> {
        self.adjacency[a]
            .iter()
            .find(|&&(r, _)| r == b)
            .map(|&(_, i)| &self.doors[i as usize])
    }

    /// Shortest door-to-door route between rooms as a list of rooms
    /// (inclusive of both endpoints), by breadth-first search over the
    /// precomputed adjacency map.
    ///
    /// Returns `None` only if the rooms are disconnected (never happens in
    /// a validated plan).
    #[must_use]
    pub fn route(&self, from: RoomId, to: RoomId) -> Option<Vec<RoomId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: RoomTable<Option<RoomId>> = RoomTable::new();
        let mut queue = std::collections::VecDeque::from([from]);
        let mut visited: RoomTable<bool> = RoomTable::new();
        visited[from] = true;
        while let Some(cur) = queue.pop_front() {
            for &(next, _) in &self.adjacency[cur] {
                if !visited[next] {
                    visited[next] = true;
                    prev[next] = Some(cur);
                    if next == to {
                        let mut path = vec![to];
                        let mut node = to;
                        while let Some(p) = prev[node] {
                            path.push(p);
                            node = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Counts wall segments crossed by the straight line `a → b`.
    ///
    /// Doorway gaps are not walls, so a line passing through an open door
    /// crosses fewer walls — this is what lets occasional beacon packets leak
    /// between rooms in the RF model.
    #[must_use]
    pub fn walls_crossed(&self, a: Point2, b: Point2) -> usize {
        let ray = Segment::new(a, b);
        self.walls.iter().filter(|w| w.intersects(&ray)).count()
    }

    /// A closed-form **lower bound** on [`Self::walls_crossed`] between any
    /// point of room `a` and any point of room `b`, from the precomputed
    /// per-plan table — used to cull hopeless RF/audio links before touching
    /// geometry.
    ///
    /// Two distinct peripheral modules at west-to-east positions `i` and `j`
    /// of **this plan's** [`Self::module_order`] sit in closed rectangles
    /// spanning the uniform row band `y ∈ [0, depth]`; any segment between
    /// them is x-monotone and crosses each of the `|i − j|` module-boundary
    /// planes, where both collinear wall copies lie with no door cuts (spec
    /// plans put doors only in south walls, plus the airlock's north wall) —
    /// `2·|i − j|` guaranteed crossings. Pairs involving the main hall or
    /// hangar get the trivial bound 0 (their shared boundaries have doors).
    ///
    /// On the canonical plan this agrees with the free function
    /// [`room_wall_floor`](crate::fieldcache::room_wall_floor); on permuted
    /// generated plans only this method is sound, because the bound follows
    /// the plan's geometric order, not the canonical one.
    #[must_use]
    pub fn wall_floor(&self, a: RoomId, b: RoomId) -> usize {
        self.wall_floor[a.index() * RoomId::ALL.len() + b.index()] as usize
    }

    /// A representative interior point of a room (its centroid).
    #[must_use]
    pub fn room_center(&self, room: RoomId) -> Point2 {
        self.rooms[room].centroid()
    }

    /// Overall bounding box of the plan.
    #[must_use]
    pub fn bounds(&self) -> (Point2, Point2) {
        let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for (_, poly) in self.rooms.iter() {
            let (lo, hi) = poly.bounds();
            min.x = min.x.min(lo.x);
            min.y = min.y.min(lo.y);
            max.x = max.x.max(hi.x);
            max.y = max.y.max(hi.y);
        }
        (min, max)
    }

    /// Splits each room's boundary into wall segments, cutting out doorway
    /// gaps. Shared walls are emitted once per room (so a beacon-to-badge ray
    /// between adjacent rooms crosses the shared boundary twice); the RF model
    /// compensates with a per-crossing attenuation calibrated to that
    /// convention.
    fn build_walls(&self) -> Vec<Segment> {
        let mut walls = Vec::new();
        for (room, poly) in self.rooms.iter() {
            for edge in poly.edges() {
                let mut cuts: Vec<(f64, f64)> = Vec::new();
                for d in &self.doors {
                    if d.a != room && d.b != room {
                        continue;
                    }
                    // Project the door gap onto this edge if collinear-ish.
                    if edge.distance_to_point(d.gap.a) < 1e-6
                        && edge.distance_to_point(d.gap.b) < 1e-6
                    {
                        let dir = edge.b - edge.a;
                        let len = dir.norm();
                        let t0 = (d.gap.a - edge.a).dot(dir) / (len * len);
                        let t1 = (d.gap.b - edge.a).dot(dir) / (len * len);
                        cuts.push((t0.min(t1).clamp(0.0, 1.0), t0.max(t1).clamp(0.0, 1.0)));
                    }
                }
                cuts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite cut"));
                let mut t = 0.0;
                for (c0, c1) in cuts {
                    if c0 > t + 1e-9 {
                        walls.push(Segment::new(
                            edge.a + (edge.b - edge.a) * t,
                            edge.a + (edge.b - edge.a) * c0,
                        ));
                    }
                    t = t.max(c1);
                }
                if t < 1.0 - 1e-9 {
                    walls.push(Segment::new(edge.a + (edge.b - edge.a) * t, edge.b));
                }
            }
        }
        walls
    }
}

impl Default for FloorPlan {
    fn default() -> Self {
        FloorPlan::lunares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The historical hand-built Lunares construction, kept verbatim as the
    /// byte-identity oracle for `from_spec(&HabitatSpec::lunares())`.
    fn lunares_oracle() -> (RoomTable<Polygon>, Vec<Door>) {
        let total_w = MODULE_W * PERIPHERAL_ORDER.len() as f64;
        let mut rooms: RoomTable<Polygon> =
            RoomTable::from_fn(|_| Polygon::rect(0.0, 0.0, 1.0, 1.0));
        rooms[RoomId::Main] = Polygon::rect(0.0, -MAIN_D, total_w, MAIN_D);
        for (i, &room) in PERIPHERAL_ORDER.iter().enumerate() {
            let x = i as f64 * MODULE_W;
            rooms[room] = Polygon::rect(x, 0.0, MODULE_W, MODULE_D);
        }
        rooms[RoomId::Hangar] = Polygon::rect(-2.0, MODULE_D, 8.0, 8.0);
        let mut doors = Vec::new();
        for (i, &room) in PERIPHERAL_ORDER.iter().enumerate() {
            let cx = i as f64 * MODULE_W + MODULE_W / 2.0;
            doors.push(Door {
                a: room,
                b: RoomId::Main,
                center: Point2::new(cx, 0.0),
                gap: Segment::new(
                    Point2::new(cx - DOOR_W / 2.0, 0.0),
                    Point2::new(cx + DOOR_W / 2.0, 0.0),
                ),
            });
        }
        let hx = MODULE_W / 2.0;
        doors.push(Door {
            a: RoomId::Airlock,
            b: RoomId::Hangar,
            center: Point2::new(hx, MODULE_D),
            gap: Segment::new(
                Point2::new(hx - DOOR_W / 2.0, MODULE_D),
                Point2::new(hx + DOOR_W / 2.0, MODULE_D),
            ),
        });
        (rooms, doors)
    }

    fn bits(p: Point2) -> (u64, u64) {
        (p.x.to_bits(), p.y.to_bits())
    }

    #[test]
    fn lunares_from_spec_is_byte_identical_to_the_hand_built_plan() {
        let plan = FloorPlan::from_spec(&HabitatSpec::lunares());
        let (rooms, doors) = lunares_oracle();
        for (room, poly) in rooms.iter() {
            let got = plan.room_polygon(room);
            assert_eq!(
                got.vertices().len(),
                poly.vertices().len(),
                "{room} vertex count"
            );
            for (g, o) in got.vertices().iter().zip(poly.vertices()) {
                assert_eq!(bits(*g), bits(*o), "{room} vertex bits");
            }
        }
        assert_eq!(plan.doors().len(), doors.len());
        for (g, o) in plan.doors().iter().zip(&doors) {
            assert_eq!((g.a, g.b), (o.a, o.b));
            assert_eq!(bits(g.center), bits(o.center), "door center bits");
            assert_eq!(bits(g.gap.a), bits(o.gap.a), "door gap bits");
            assert_eq!(bits(g.gap.b), bits(o.gap.b), "door gap bits");
        }
        // And `lunares()` itself is now just the spec path.
        assert_eq!(plan, FloorPlan::lunares());
    }

    #[test]
    fn every_room_has_positive_area_and_disjoint_interiors() {
        let plan = FloorPlan::lunares();
        for r in RoomId::ALL {
            assert!(plan.room_polygon(r).area() > 1.0, "{r} too small");
        }
        // Interiors of distinct peripheral rooms don't overlap.
        for &a in &PERIPHERAL_ORDER {
            for &b in &PERIPHERAL_ORDER {
                if a != b {
                    let ca = plan.room_center(a);
                    assert!(!plan.room_polygon(b).contains(ca));
                }
            }
        }
    }

    #[test]
    fn room_at_resolves_centers() {
        let plan = FloorPlan::lunares();
        for r in RoomId::ALL {
            assert_eq!(plan.room_at(plan.room_center(r)), Some(r), "center of {r}");
        }
        assert_eq!(plan.room_at(Point2::new(-100.0, 0.0)), None);
    }

    #[test]
    fn room_at_boundary_tie_break_follows_the_documented_priority() {
        let plan = FloorPlan::lunares();
        // Shared plane between two abutting modules: the earlier room in
        // PERIPHERAL_ORDER wins (airlock before workshop at x = 4).
        assert_eq!(
            plan.room_at(Point2::new(4.0, 2.0)),
            Some(RoomId::Airlock),
            "module/module boundary"
        );
        // Biolab|Bedroom boundary at x = 20: biolab precedes bedroom.
        assert_eq!(plan.room_at(Point2::new(20.0, 2.0)), Some(RoomId::Biolab));
        // Module south edge on the hall: the module wins over Main.
        assert_eq!(plan.room_at(Point2::new(10.0, 0.0)), Some(RoomId::Office));
        // Airlock north edge under the hangar: airlock wins over hangar.
        assert_eq!(plan.room_at(Point2::new(1.0, 4.0)), Some(RoomId::Airlock));
        // Hangar-only band (west overhang): hangar resolves where no module
        // contains the point.
        assert_eq!(plan.room_at(Point2::new(-1.0, 5.0)), Some(RoomId::Hangar));
        // The tie-break is the canonical order even on permuted plans:
        // swap kitchen west of the airlock and probe their shared plane.
        let mut spec = HabitatSpec::lunares();
        spec.module_order.swap(0, 7); // kitchen first, airlock last
        let permuted = FloorPlan::from_spec(&spec);
        let boundary = permuted.room_polygon(RoomId::Kitchen).bounds().1.x;
        assert_eq!(
            permuted.room_at(Point2::new(boundary, 2.0)),
            Some(RoomId::Workshop),
            "workshop precedes kitchen in PERIPHERAL_ORDER"
        );
    }

    #[test]
    fn adjacency_cache_matches_a_door_list_scan() {
        // Satellite pin: the precomputed map answers exactly like the
        // historical per-call scans, including ordering.
        let plan = FloorPlan::lunares();
        for room in RoomId::ALL {
            let scanned: Vec<RoomId> = plan
                .doors()
                .iter()
                .filter_map(|d| {
                    if d.a == room {
                        Some(d.b)
                    } else if d.b == room {
                        Some(d.a)
                    } else {
                        None
                    }
                })
                .collect();
            assert_eq!(plan.neighbors(room), scanned, "{room} neighbor order");
            for other in RoomId::ALL {
                let scanned = plan.doors().iter().find(|d| d.connects(room, other));
                assert_eq!(
                    plan.door_between(room, other).map(|d| d.center),
                    scanned.map(|d| d.center),
                    "{room}→{other}"
                );
            }
        }
    }

    #[test]
    fn wall_floor_table_follows_the_geometric_module_order() {
        let plan = FloorPlan::lunares();
        assert_eq!(
            plan.module_order(),
            &PERIPHERAL_ORDER[..],
            "canonical plan: geometric order is the canonical order"
        );
        assert_eq!(plan.wall_floor(RoomId::Airlock, RoomId::Workshop), 2);
        assert_eq!(plan.wall_floor(RoomId::Airlock, RoomId::Kitchen), 14);
        assert_eq!(plan.wall_floor(RoomId::Main, RoomId::Kitchen), 0);
        assert_eq!(plan.wall_floor(RoomId::Hangar, RoomId::Airlock), 0);
        assert_eq!(plan.wall_floor(RoomId::Office, RoomId::Office), 0);
        // A permuted plan re-derives the bound from its own geometry.
        let mut spec = HabitatSpec::lunares();
        spec.module_order = [
            RoomId::Kitchen,
            RoomId::Restroom,
            RoomId::Bedroom,
            RoomId::Biolab,
            RoomId::Storage,
            RoomId::Office,
            RoomId::Workshop,
            RoomId::Airlock,
        ];
        spec.hangar = (26.0, MODULE_D, 8.0, 8.0);
        let plan = FloorPlan::from_spec(&spec);
        assert_eq!(plan.wall_floor(RoomId::Kitchen, RoomId::Airlock), 14);
        assert_eq!(plan.wall_floor(RoomId::Kitchen, RoomId::Restroom), 2);
        // The bound stays sound: sampled segments never cross fewer walls.
        for (a, b) in [
            (RoomId::Kitchen, RoomId::Airlock),
            (RoomId::Bedroom, RoomId::Office),
            (RoomId::Restroom, RoomId::Workshop),
        ] {
            let floor = plan.wall_floor(a, b);
            let crossed = plan.walls_crossed(plan.room_center(a), plan.room_center(b));
            assert!(crossed >= floor, "{a}→{b}: {crossed} < {floor}");
        }
    }

    #[test]
    fn serde_round_trip_rebuilds_the_caches() {
        let mut spec = HabitatSpec::lunares();
        spec.module_order.swap(1, 6);
        let plan = FloorPlan::from_spec(&spec);
        let json = serde_json::to_string(&plan).expect("serializes");
        // Wire format carries only geometry.
        assert!(json.contains("\"rooms\""));
        assert!(json.contains("\"doors\""));
        assert!(json.contains("\"walls\""));
        assert!(!json.contains("adjacency"));
        assert!(!json.contains("wall_floor"));
        let back = FloorPlan::from_value(&plan.to_value()).expect("deserializes");
        assert_eq!(back, plan, "caches rebuilt deterministically");
    }

    #[test]
    fn main_is_adjacent_to_all_peripherals() {
        let plan = FloorPlan::lunares();
        let n = plan.neighbors(RoomId::Main);
        for &r in &PERIPHERAL_ORDER {
            assert!(n.contains(&r), "main not adjacent to {r}");
        }
        assert!(!n.contains(&RoomId::Hangar));
    }

    #[test]
    fn hangar_only_via_airlock() {
        let plan = FloorPlan::lunares();
        assert_eq!(plan.neighbors(RoomId::Hangar), vec![RoomId::Airlock]);
        let route = plan.route(RoomId::Kitchen, RoomId::Hangar).unwrap();
        assert_eq!(
            route,
            vec![
                RoomId::Kitchen,
                RoomId::Main,
                RoomId::Airlock,
                RoomId::Hangar
            ]
        );
    }

    #[test]
    fn peripheral_to_peripheral_routes_via_main() {
        let plan = FloorPlan::lunares();
        let route = plan.route(RoomId::Office, RoomId::Kitchen).unwrap();
        assert_eq!(route, vec![RoomId::Office, RoomId::Main, RoomId::Kitchen]);
    }

    #[test]
    fn walls_block_but_doors_leak() {
        let plan = FloorPlan::lunares();
        let office = plan.room_center(RoomId::Office);
        let kitchen = plan.room_center(RoomId::Kitchen);
        // Far rooms: the direct ray crosses several wall segments.
        assert!(plan.walls_crossed(office, kitchen) >= 2);
        // Same room: no walls.
        let p = office + (ares_simkit::geometry::Vec2::new(1.0, 0.5));
        assert_eq!(plan.walls_crossed(office, p), 0);
        // Through an open door into main: the segment through the doorway
        // center crosses fewer walls than one through the solid wall.
        let door = plan.door_between(RoomId::Office, RoomId::Main).unwrap();
        let just_inside = Point2::new(door.center.x, 0.5);
        let just_outside = Point2::new(door.center.x, -0.5);
        assert_eq!(plan.walls_crossed(just_inside, just_outside), 0);
        let through_wall_in = Point2::new(door.center.x + 1.5, 0.5);
        let through_wall_out = Point2::new(door.center.x + 1.5, -0.5);
        assert!(plan.walls_crossed(through_wall_in, through_wall_out) >= 1);
    }

    #[test]
    fn route_to_self_is_trivial() {
        let plan = FloorPlan::lunares();
        assert_eq!(
            plan.route(RoomId::Biolab, RoomId::Biolab).unwrap(),
            vec![RoomId::Biolab]
        );
    }

    #[test]
    fn bounds_cover_all_rooms() {
        let plan = FloorPlan::lunares();
        let (min, max) = plan.bounds();
        assert!(min.x <= -2.0 && max.x >= 32.0);
        assert!(min.y <= -6.0 && max.y >= 12.0);
    }
}
