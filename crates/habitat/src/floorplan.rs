//! The habitat floor plan: room polygons, doors, walls and the adjacency
//! graph.
//!
//! The peripheral modules sit in a row ("semicircle" unrolled — only topology
//! and metal-wall shielding matter to the analyses) on the north side of the
//! central main hall, each connected to the hall by a single door. The hangar
//! attaches to the airlock. This reproduces the two properties the paper's
//! localization relies on:
//!
//! 1. every inter-room movement transits the main hall, and
//! 2. the metal walls of any room perfectly shield beacon signals from other
//!    rooms, except for occasional leakage through open doors.

use crate::rooms::{RoomId, RoomTable};
use ares_simkit::geometry::{Point2, Polygon, Segment};
use serde::{Deserialize, Serialize};

/// Width of every peripheral module (m).
pub const MODULE_W: f64 = 4.0;
/// Depth of every peripheral module (m).
pub const MODULE_D: f64 = 4.0;
/// Depth of the main hall (m).
pub const MAIN_D: f64 = 6.0;
/// Width of a doorway (m).
pub const DOOR_W: f64 = 1.0;

/// A doorway between two rooms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Door {
    /// One side of the door.
    pub a: RoomId,
    /// The other side.
    pub b: RoomId,
    /// Center of the doorway opening.
    pub center: Point2,
    /// The doorway as a segment (the gap in the wall).
    pub gap: Segment,
}

impl Door {
    /// Whether this door connects `x` and `y` (in either order).
    #[must_use]
    pub fn connects(&self, x: RoomId, y: RoomId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

/// The full floor plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloorPlan {
    rooms: RoomTable<Polygon>,
    doors: Vec<Door>,
    walls: Vec<Segment>,
}

/// Order of the eight peripheral modules from west to east.
///
/// The kitchen sits at the far end from the office and workshop — the very
/// arrangement the paper's Fig. 2 analysis concludes was suboptimal.
pub const PERIPHERAL_ORDER: [RoomId; 8] = [
    RoomId::Airlock,
    RoomId::Workshop,
    RoomId::Office,
    RoomId::Storage,
    RoomId::Biolab,
    RoomId::Bedroom,
    RoomId::Restroom,
    RoomId::Kitchen,
];

impl FloorPlan {
    /// Builds the canonical ICAres-1 floor plan.
    #[must_use]
    pub fn lunares() -> Self {
        let total_w = MODULE_W * PERIPHERAL_ORDER.len() as f64;
        let mut rooms: RoomTable<Polygon> =
            RoomTable::from_fn(|_| Polygon::rect(0.0, 0.0, 1.0, 1.0));
        // Main hall along the south.
        rooms[RoomId::Main] = Polygon::rect(0.0, -MAIN_D, total_w, MAIN_D);
        // Peripheral modules in a row on the north side.
        for (i, &room) in PERIPHERAL_ORDER.iter().enumerate() {
            let x = i as f64 * MODULE_W;
            rooms[room] = Polygon::rect(x, 0.0, MODULE_W, MODULE_D);
        }
        // Hangar north of the airlock.
        rooms[RoomId::Hangar] = Polygon::rect(-2.0, MODULE_D, 8.0, 8.0);

        let mut doors = Vec::new();
        for (i, &room) in PERIPHERAL_ORDER.iter().enumerate() {
            let cx = i as f64 * MODULE_W + MODULE_W / 2.0;
            let center = Point2::new(cx, 0.0);
            doors.push(Door {
                a: room,
                b: RoomId::Main,
                center,
                gap: Segment::new(
                    Point2::new(cx - DOOR_W / 2.0, 0.0),
                    Point2::new(cx + DOOR_W / 2.0, 0.0),
                ),
            });
        }
        // Airlock → hangar door in the airlock's north wall.
        let hx = MODULE_W / 2.0;
        doors.push(Door {
            a: RoomId::Airlock,
            b: RoomId::Hangar,
            center: Point2::new(hx, MODULE_D),
            gap: Segment::new(
                Point2::new(hx - DOOR_W / 2.0, MODULE_D),
                Point2::new(hx + DOOR_W / 2.0, MODULE_D),
            ),
        });

        let mut plan = FloorPlan {
            rooms,
            doors,
            walls: Vec::new(),
        };
        plan.walls = plan.build_walls();
        plan
    }

    /// The polygon of a room.
    #[must_use]
    pub fn room_polygon(&self, room: RoomId) -> &Polygon {
        &self.rooms[room]
    }

    /// All doors.
    #[must_use]
    pub fn doors(&self) -> &[Door] {
        &self.doors
    }

    /// All wall segments (room boundaries with doorway gaps removed).
    #[must_use]
    pub fn walls(&self) -> &[Segment] {
        &self.walls
    }

    /// The room containing point `p`, preferring peripheral rooms over the
    /// hangar and main hall when a point sits exactly on a shared boundary.
    #[must_use]
    pub fn room_at(&self, p: Point2) -> Option<RoomId> {
        // Peripheral rooms first so boundary points resolve deterministically.
        for &room in &PERIPHERAL_ORDER {
            if self.rooms[room].contains(p) {
                return Some(room);
            }
        }
        if self.rooms[RoomId::Main].contains(p) {
            return Some(RoomId::Main);
        }
        if self.rooms[RoomId::Hangar].contains(p) {
            return Some(RoomId::Hangar);
        }
        None
    }

    /// Rooms adjacent to `room` through a door.
    #[must_use]
    pub fn neighbors(&self, room: RoomId) -> Vec<RoomId> {
        let mut out = Vec::new();
        for d in &self.doors {
            if d.a == room {
                out.push(d.b);
            } else if d.b == room {
                out.push(d.a);
            }
        }
        out
    }

    /// The door between two rooms, if directly connected.
    #[must_use]
    pub fn door_between(&self, a: RoomId, b: RoomId) -> Option<&Door> {
        self.doors.iter().find(|d| d.connects(a, b))
    }

    /// Shortest door-to-door route between rooms as a list of rooms
    /// (inclusive of both endpoints), by breadth-first search.
    ///
    /// Returns `None` only if the rooms are disconnected (never happens in the
    /// canonical plan).
    #[must_use]
    pub fn route(&self, from: RoomId, to: RoomId) -> Option<Vec<RoomId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: RoomTable<Option<RoomId>> = RoomTable::new();
        let mut queue = std::collections::VecDeque::from([from]);
        let mut visited: RoomTable<bool> = RoomTable::new();
        visited[from] = true;
        while let Some(cur) = queue.pop_front() {
            for next in self.neighbors(cur) {
                if !visited[next] {
                    visited[next] = true;
                    prev[next] = Some(cur);
                    if next == to {
                        let mut path = vec![to];
                        let mut node = to;
                        while let Some(p) = prev[node] {
                            path.push(p);
                            node = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Counts wall segments crossed by the straight line `a → b`.
    ///
    /// Doorway gaps are not walls, so a line passing through an open door
    /// crosses fewer walls — this is what lets occasional beacon packets leak
    /// between rooms in the RF model.
    #[must_use]
    pub fn walls_crossed(&self, a: Point2, b: Point2) -> usize {
        let ray = Segment::new(a, b);
        self.walls.iter().filter(|w| w.intersects(&ray)).count()
    }

    /// A representative interior point of a room (its centroid).
    #[must_use]
    pub fn room_center(&self, room: RoomId) -> Point2 {
        self.rooms[room].centroid()
    }

    /// Overall bounding box of the plan.
    #[must_use]
    pub fn bounds(&self) -> (Point2, Point2) {
        let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for (_, poly) in self.rooms.iter() {
            let (lo, hi) = poly.bounds();
            min.x = min.x.min(lo.x);
            min.y = min.y.min(lo.y);
            max.x = max.x.max(hi.x);
            max.y = max.y.max(hi.y);
        }
        (min, max)
    }

    /// Splits each room's boundary into wall segments, cutting out doorway
    /// gaps. Shared walls are emitted once per room (so a beacon-to-badge ray
    /// between adjacent rooms crosses the shared boundary twice); the RF model
    /// compensates with a per-crossing attenuation calibrated to that
    /// convention.
    fn build_walls(&self) -> Vec<Segment> {
        let mut walls = Vec::new();
        for (room, poly) in self.rooms.iter() {
            for edge in poly.edges() {
                let mut cuts: Vec<(f64, f64)> = Vec::new();
                for d in &self.doors {
                    if d.a != room && d.b != room {
                        continue;
                    }
                    // Project the door gap onto this edge if collinear-ish.
                    if edge.distance_to_point(d.gap.a) < 1e-6
                        && edge.distance_to_point(d.gap.b) < 1e-6
                    {
                        let dir = edge.b - edge.a;
                        let len = dir.norm();
                        let t0 = (d.gap.a - edge.a).dot(dir) / (len * len);
                        let t1 = (d.gap.b - edge.a).dot(dir) / (len * len);
                        cuts.push((t0.min(t1).clamp(0.0, 1.0), t0.max(t1).clamp(0.0, 1.0)));
                    }
                }
                cuts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite cut"));
                let mut t = 0.0;
                for (c0, c1) in cuts {
                    if c0 > t + 1e-9 {
                        walls.push(Segment::new(
                            edge.a + (edge.b - edge.a) * t,
                            edge.a + (edge.b - edge.a) * c0,
                        ));
                    }
                    t = t.max(c1);
                }
                if t < 1.0 - 1e-9 {
                    walls.push(Segment::new(edge.a + (edge.b - edge.a) * t, edge.b));
                }
            }
        }
        walls
    }
}

impl Default for FloorPlan {
    fn default() -> Self {
        FloorPlan::lunares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_room_has_positive_area_and_disjoint_interiors() {
        let plan = FloorPlan::lunares();
        for r in RoomId::ALL {
            assert!(plan.room_polygon(r).area() > 1.0, "{r} too small");
        }
        // Interiors of distinct peripheral rooms don't overlap.
        for &a in &PERIPHERAL_ORDER {
            for &b in &PERIPHERAL_ORDER {
                if a != b {
                    let ca = plan.room_center(a);
                    assert!(!plan.room_polygon(b).contains(ca));
                }
            }
        }
    }

    #[test]
    fn room_at_resolves_centers() {
        let plan = FloorPlan::lunares();
        for r in RoomId::ALL {
            assert_eq!(plan.room_at(plan.room_center(r)), Some(r), "center of {r}");
        }
        assert_eq!(plan.room_at(Point2::new(-100.0, 0.0)), None);
    }

    #[test]
    fn main_is_adjacent_to_all_peripherals() {
        let plan = FloorPlan::lunares();
        let n = plan.neighbors(RoomId::Main);
        for &r in &PERIPHERAL_ORDER {
            assert!(n.contains(&r), "main not adjacent to {r}");
        }
        assert!(!n.contains(&RoomId::Hangar));
    }

    #[test]
    fn hangar_only_via_airlock() {
        let plan = FloorPlan::lunares();
        assert_eq!(plan.neighbors(RoomId::Hangar), vec![RoomId::Airlock]);
        let route = plan.route(RoomId::Kitchen, RoomId::Hangar).unwrap();
        assert_eq!(
            route,
            vec![
                RoomId::Kitchen,
                RoomId::Main,
                RoomId::Airlock,
                RoomId::Hangar
            ]
        );
    }

    #[test]
    fn peripheral_to_peripheral_routes_via_main() {
        let plan = FloorPlan::lunares();
        let route = plan.route(RoomId::Office, RoomId::Kitchen).unwrap();
        assert_eq!(route, vec![RoomId::Office, RoomId::Main, RoomId::Kitchen]);
    }

    #[test]
    fn walls_block_but_doors_leak() {
        let plan = FloorPlan::lunares();
        let office = plan.room_center(RoomId::Office);
        let kitchen = plan.room_center(RoomId::Kitchen);
        // Far rooms: the direct ray crosses several wall segments.
        assert!(plan.walls_crossed(office, kitchen) >= 2);
        // Same room: no walls.
        let p = office + (ares_simkit::geometry::Vec2::new(1.0, 0.5));
        assert_eq!(plan.walls_crossed(office, p), 0);
        // Through an open door into main: the segment through the doorway
        // center crosses fewer walls than one through the solid wall.
        let door = plan.door_between(RoomId::Office, RoomId::Main).unwrap();
        let just_inside = Point2::new(door.center.x, 0.5);
        let just_outside = Point2::new(door.center.x, -0.5);
        assert_eq!(plan.walls_crossed(just_inside, just_outside), 0);
        let through_wall_in = Point2::new(door.center.x + 1.5, 0.5);
        let through_wall_out = Point2::new(door.center.x + 1.5, -0.5);
        assert!(plan.walls_crossed(through_wall_in, through_wall_out) >= 1);
    }

    #[test]
    fn route_to_self_is_trivial() {
        let plan = FloorPlan::lunares();
        assert_eq!(
            plan.route(RoomId::Biolab, RoomId::Biolab).unwrap(),
            vec![RoomId::Biolab]
        );
    }

    #[test]
    fn bounds_cover_all_rooms() {
        let plan = FloorPlan::lunares();
        let (min, max) = plan.bounds();
        assert!(min.x <= -2.0 && max.x >= 32.0);
        assert!(min.y <= -6.0 && max.y >= 12.0);
    }
}
