//! `ares-habitat` — model of the Lunares-class analog Mars habitat.
//!
//! This crate provides the physical substrate of the ICAres-1 reproduction:
//!
//! * [`rooms`] — the canonical room set and dense per-room tables.
//! * [`floorplan`] — room polygons, doors, metal walls, adjacency and routing.
//! * [`beacons`] — the 27-beacon BLE deployment broadcasting at ~3 Hz.
//! * [`rf`] — indoor path-loss channels (BLE, 868 MHz) with per-wall
//!   attenuation and shadowing, plus the infrared face-to-face cone model.
//! * [`environment`] — per-room temperature/light/pressure fields on a
//!   Martian-sol cycle.
//! * [`fieldcache`] — precomputed per-source wall counts and room lookups on
//!   a quantized grid, bit-identical to the exact geometry.
//!
//! # Examples
//!
//! ```
//! use ares_habitat::prelude::*;
//!
//! let plan = FloorPlan::lunares();
//! let beacons = BeaconDeployment::icares(&plan);
//! assert_eq!(beacons.len(), 27);
//! // Every inter-module route passes through the main hall:
//! let route = plan.route(RoomId::Biolab, RoomId::Kitchen).unwrap();
//! assert_eq!(route[1], RoomId::Main);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod beacons;
pub mod environment;
pub mod fieldcache;
pub mod floorplan;
pub mod rf;
pub mod rooms;
pub mod spec;

/// Convenient glob-import of the most used habitat types.
pub mod prelude {
    pub use crate::beacons::{Beacon, BeaconDeployment, BeaconId};
    pub use crate::environment::Environment;
    pub use crate::fieldcache::RfFieldCache;
    pub use crate::floorplan::{Door, FloorPlan};
    pub use crate::rf::{Channel, ChannelParams, InfraredParams, Reception, Rssi};
    pub use crate::rooms::{RoomId, RoomTable};
    pub use crate::spec::HabitatSpec;
}
