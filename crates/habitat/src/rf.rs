//! Radio propagation inside the habitat.
//!
//! The model is a standard indoor log-distance path-loss channel with
//! per-wall attenuation and log-normal shadowing:
//!
//! ```text
//! RSSI = Ptx − PL₀ − 10·n·log₁₀(d/1 m) − walls·Lwall + X(σ)
//! ```
//!
//! The habitat's metal module walls give a very large `Lwall`, which is what
//! made room-level localization in ICAres-1 "perfect": a beacon in another
//! room is essentially never heard through a wall. The one exception the
//! paper mentions — "occasional beacon signals from another room slipped
//! through open doors" — emerges naturally here, because doorway gaps are not
//! walls and a ray threading a doorway suffers no wall loss.
//!
//! Three radio technologies are modeled: the badges' BLE scanner (which hears
//! the 27 beacons), the 868 MHz inter-badge radio, and the infrared
//! face-to-face transceiver (a line-of-sight cone, not an RF link).

use crate::floorplan::FloorPlan;
use ares_simkit::geometry::{Point2, Vec2};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{DeError, Deserialize, Serialize, Value};

/// Received signal strength in dBm.
pub type Rssi = f64;

/// Parameters of one radio technology's channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelParams {
    /// Transmit power (dBm).
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance (dB).
    pub pl0_db: f64,
    /// Path-loss exponent.
    pub exponent: f64,
    /// Attenuation per crossed wall segment (dB).
    pub wall_loss_db: f64,
    /// Log-normal shadowing standard deviation (dB).
    pub shadowing_sigma_db: f64,
    /// Receiver sensitivity: packets below this RSSI are lost (dBm).
    pub sensitivity_dbm: f64,
    /// Base packet-error rate even at strong RSSI (collisions etc.).
    pub base_loss: f64,
}

impl ChannelParams {
    /// The 2.4 GHz BLE channel between beacons and badges.
    ///
    /// Wall loss is calibrated to the floor plan's convention of emitting
    /// shared walls once per room (a cross-room ray crosses ≥ 2 segments), so
    /// a single doorway-free room boundary costs ≥ 50 dB — far below
    /// sensitivity, i.e. metal-wall shielding is effectively perfect.
    #[must_use]
    pub fn ble() -> Self {
        ChannelParams {
            tx_power_dbm: 0.0,
            pl0_db: 45.0,
            exponent: 2.2,
            wall_loss_db: 25.0,
            shadowing_sigma_db: 3.5,
            sensitivity_dbm: -95.0,
            base_loss: 0.05,
        }
    }

    /// The 868 MHz inter-badge radio: better reference loss, slightly lower
    /// exponent, but the metal walls still dominate.
    #[must_use]
    pub fn sub_ghz() -> Self {
        ChannelParams {
            tx_power_dbm: 5.0,
            pl0_db: 37.0,
            exponent: 2.0,
            wall_loss_db: 22.0,
            shadowing_sigma_db: 3.0,
            sensitivity_dbm: -100.0,
            base_loss: 0.03,
        }
    }

    /// Deterministic mean RSSI (no shadowing) at distance `d` meters through
    /// `walls` wall crossings.
    #[must_use]
    pub fn mean_rssi(&self, d: f64, walls: usize) -> Rssi {
        let d = d.max(0.1);
        self.tx_power_dbm
            - self.pl0_db
            - 10.0 * self.exponent * d.log10()
            - walls as f64 * self.wall_loss_db
    }

    /// Lane-batched [`ChannelParams::mean_rssi`]: fills `out[i]` with the
    /// mean RSSI at `dist_m[i]` meters through `wall_counts[i]` crossings.
    ///
    /// Wall counts are pre-widened to `f64` (exactly representable for any
    /// realistic count) so the kernel runs over fixed `[f64; LANES]` chunks;
    /// per element the expression is exactly [`ChannelParams::mean_rssi`]'s,
    /// so each lane is bit-identical to the scalar call.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn mean_rssi_batch(&self, dist_m: &[f64], wall_counts: &[f64], out: &mut [f64]) {
        use ares_simkit::lanes::{as_lanes, as_lanes_mut, LANES};
        assert_eq!(dist_m.len(), wall_counts.len(), "length mismatch");
        assert_eq!(dist_m.len(), out.len(), "length mismatch");
        let (d_chunks, d_tail) = as_lanes(dist_m);
        let (w_chunks, w_tail) = as_lanes(wall_counts);
        let (o_chunks, o_tail) = as_lanes_mut(out);
        for ((d, w), o) in d_chunks.iter().zip(w_chunks).zip(o_chunks) {
            for l in 0..LANES {
                let dist = d[l].max(0.1);
                o[l] = self.tx_power_dbm
                    - self.pl0_db
                    - 10.0 * self.exponent * dist.log10()
                    - w[l] * self.wall_loss_db;
            }
        }
        for ((d, w), o) in d_tail.iter().zip(w_tail).zip(o_tail) {
            let dist = d.max(0.1);
            *o = self.tx_power_dbm
                - self.pl0_db
                - 10.0 * self.exponent * dist.log10()
                - w * self.wall_loss_db;
        }
    }

    /// Inverts the deterministic model: estimated distance for a given RSSI
    /// assuming zero wall crossings. This is the ranging step used by the
    /// trilateration in `ares-sociometrics`.
    #[must_use]
    pub fn distance_for_rssi(&self, rssi: Rssi) -> f64 {
        let exp = (self.tx_power_dbm - self.pl0_db - rssi) / (10.0 * self.exponent);
        10f64.powf(exp)
    }
}

/// A memoized RSSI → distance table on a quantized dBm grid.
///
/// [`ChannelParams::distance_for_rssi`] costs a `powf` per call; the
/// localization hot path ranges every advertisement of every smoothed scan.
/// The table precomputes the inversion on a 1/128 dB grid spanning the
/// receivable range, reducing each ranging to a rounding and a slice load.
/// Quantization error is bounded by half a grid step (≤ 1/256 dB ≈ 0.009 %
/// of distance) — far below the channel's multi-dB shadowing. RSSI outside
/// the grid (never produced by a receiver honoring `sensitivity_dbm`) falls
/// back to the exact inversion.
#[derive(Debug, Clone, PartialEq)]
pub struct RangingTable {
    params: ChannelParams,
    /// Grid origin (dBm) — comfortably below receiver sensitivity.
    min_dbm: f64,
    /// Inverse grid step (steps per dB); a power of two so the grid values
    /// are exact in binary floating point.
    inv_step: f64,
    /// Precomputed `distance_for_rssi` at each grid point.
    distances: Vec<f64>,
}

impl RangingTable {
    /// Grid resolution: 1/128 dB.
    const INV_STEP: f64 = 128.0;

    /// Precomputes the table for a channel.
    #[must_use]
    pub fn new(params: &ChannelParams) -> Self {
        let min_dbm = (params.sensitivity_dbm - 25.0).floor();
        let max_dbm = (params.tx_power_dbm + 15.0).ceil();
        let n = ((max_dbm - min_dbm) * Self::INV_STEP) as usize + 1;
        let distances = (0..n)
            .map(|i| params.distance_for_rssi(min_dbm + i as f64 / Self::INV_STEP))
            .collect();
        RangingTable {
            params: *params,
            min_dbm,
            inv_step: Self::INV_STEP,
            distances,
        }
    }

    /// Estimated distance for an RSSI: table lookup at the nearest grid
    /// point, exact inversion outside the grid.
    #[must_use]
    pub fn distance(&self, rssi: Rssi) -> f64 {
        self.range_slot((rssi - self.min_dbm) * self.inv_step, rssi)
    }

    /// The lookup tail shared by [`RangingTable::distance`] and the
    /// lane-batched [`RangingTable::distances_in_place`].
    fn range_slot(&self, slot: f64, rssi: Rssi) -> f64 {
        // `as usize` saturates negatives to 0; reject those explicitly.
        if slot >= 0.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let i = (slot + 0.5) as usize;
            if let Some(&d) = self.distances.get(i) {
                return d;
            }
        }
        self.params.distance_for_rssi(rssi)
    }

    /// Ranges a whole RSSI column in place: `rssi[i]` becomes
    /// [`RangingTable::distance`]`(rssi[i])`.
    ///
    /// The slot arithmetic runs over fixed `[f64; LANES]` chunks so it
    /// vectorizes; the table load stays a per-lane gather. Per element the
    /// operations are exactly [`RangingTable::distance`]'s, so the result is
    /// bit-identical to ranging one value at a time.
    pub fn distances_in_place(&self, rssi: &mut [f64]) {
        use ares_simkit::lanes::{as_lanes_mut, splat, LANES};
        let (chunks, tail) = as_lanes_mut(rssi);
        for chunk in chunks {
            let mut slot = splat(0.0);
            for l in 0..LANES {
                slot[l] = (chunk[l] - self.min_dbm) * self.inv_step;
            }
            for l in 0..LANES {
                chunk[l] = self.range_slot(slot[l], chunk[l]);
            }
        }
        for r in tail {
            *r = self.distance(*r);
        }
    }
}

/// The wireless channel: floor plan + per-technology parameters.
///
/// The shadowing sampler is prebuilt from the parameters at construction so
/// the per-packet hot path never re-validates the distribution; it is derived
/// state, excluded from serialization and rebuilt on deserialize.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    params: ChannelParams,
    shadowing: Normal,
}

impl Serialize for Channel {
    fn to_value(&self) -> Value {
        // Only `params` is persisted; `shadowing` is derived from it.
        Value::Map(vec![(String::from("params"), self.params.to_value())])
    }
}

impl Deserialize for Channel {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(fields) => {
                let params = fields
                    .iter()
                    .find(|(k, _)| k == "params")
                    .ok_or_else(|| DeError(String::from("Channel: missing field params")))?;
                Ok(Channel::new(ChannelParams::from_value(&params.1)?))
            }
            _ => Err(DeError(String::from("Channel: expected map"))),
        }
    }
}

/// Result of attempting one packet reception.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Reception {
    /// Packet received with the given RSSI.
    Received(Rssi),
    /// Packet lost (below sensitivity, or random loss).
    Lost,
}

impl Reception {
    /// The RSSI if received.
    #[must_use]
    pub fn rssi(self) -> Option<Rssi> {
        match self {
            Reception::Received(r) => Some(r),
            Reception::Lost => None,
        }
    }
}

impl Channel {
    /// Creates a channel with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the shadowing sigma is negative or non-finite.
    #[must_use]
    pub fn new(params: ChannelParams) -> Self {
        let shadowing =
            Normal::new(0.0, params.shadowing_sigma_db).expect("finite non-negative sigma");
        Channel { params, shadowing }
    }

    /// The channel parameters.
    #[must_use]
    pub fn params(&self) -> &ChannelParams {
        &self.params
    }

    /// Samples one packet transmission from `tx` to `rx` through the plan.
    pub fn transmit(
        &self,
        plan: &FloorPlan,
        tx: Point2,
        rx: Point2,
        rng: &mut impl Rng,
    ) -> Reception {
        let walls = plan.walls_crossed(tx, rx);
        let mean = self.params.mean_rssi(tx.distance(rx), walls);
        let rssi = mean + self.shadowing.sample(rng);
        if rssi < self.params.sensitivity_dbm {
            return Reception::Lost;
        }
        if rng.gen::<f64>() < self.params.base_loss {
            return Reception::Lost;
        }
        Reception::Received(rssi)
    }

    /// Samples one packet with a pre-computed wall-crossing count — the fast
    /// path for callers that already know the geometry (e.g. same-room links
    /// in convex rooms always cross zero walls).
    pub fn transmit_known_walls(
        &self,
        distance_m: f64,
        walls: usize,
        rng: &mut impl Rng,
    ) -> Reception {
        self.transmit_precomputed_mean(self.params.mean_rssi(distance_m, walls), rng)
    }

    /// Samples one packet whose deterministic mean RSSI is already known —
    /// the run-length batched recording kernels hoist the mean out of the
    /// tick loop and only pay for the draws here. Draw order and early-outs
    /// are exactly [`Channel::transmit_known_walls`]'s (which delegates to
    /// this method), so a hoisted mean consumes the identical RNG stream.
    pub fn transmit_precomputed_mean(&self, mean: Rssi, rng: &mut impl Rng) -> Reception {
        // Skip the shadowing draw when even the most optimistic realization
        // cannot reach sensitivity (deep behind metal walls).
        if mean + 6.0 * self.params.shadowing_sigma_db < self.params.sensitivity_dbm {
            return Reception::Lost;
        }
        let rssi = mean + self.shadowing.sample(rng);
        if rssi < self.params.sensitivity_dbm || rng.gen::<f64>() < self.params.base_loss {
            return Reception::Lost;
        }
        Reception::Received(rssi)
    }

    /// Probability-free helper: the mean RSSI between two points through the
    /// plan (useful for tests and calibration).
    #[must_use]
    pub fn mean_rssi_between(&self, plan: &FloorPlan, tx: Point2, rx: Point2) -> Rssi {
        self.params
            .mean_rssi(tx.distance(rx), plan.walls_crossed(tx, rx))
    }
}

/// Parameters of the infrared face-to-face transceiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InfraredParams {
    /// Maximum detection range (m).
    pub range_m: f64,
    /// Half-angle of the emission/reception cone (radians).
    pub half_angle_rad: f64,
    /// Probability a geometrically valid exchange is actually detected.
    pub detection_prob: f64,
}

impl Default for InfraredParams {
    fn default() -> Self {
        InfraredParams {
            range_m: 2.0,
            half_angle_rad: 25f64.to_radians(),
            detection_prob: 0.85,
        }
    }
}

impl InfraredParams {
    /// Whether two badges at `(pos, facing)` can exchange IR packets: within
    /// range, inside each other's cone, and with no wall in between.
    ///
    /// "The infrared transceiver, with a well-defined directional
    /// communication cone, enables assessing whether two badges are truly
    /// close and face each other."
    #[must_use]
    pub fn mutually_visible(
        &self,
        plan: &FloorPlan,
        a_pos: Point2,
        a_facing: Vec2,
        b_pos: Point2,
        b_facing: Vec2,
    ) -> bool {
        let d = a_pos.distance(b_pos);
        if d > self.range_m || d < 1e-9 {
            return false;
        }
        self.mutually_visible_known_walls(
            plan.walls_crossed(a_pos, b_pos),
            a_pos,
            a_facing,
            b_pos,
            b_facing,
        )
    }

    /// [`InfraredParams::mutually_visible`] with the wall-crossing count
    /// already known — e.g. zero for two badges in the same convex room.
    #[must_use]
    pub fn mutually_visible_known_walls(
        &self,
        walls: usize,
        a_pos: Point2,
        a_facing: Vec2,
        b_pos: Point2,
        b_facing: Vec2,
    ) -> bool {
        let d = a_pos.distance(b_pos);
        if d > self.range_m || d < 1e-9 {
            return false;
        }
        if walls > 0 {
            return false;
        }
        let ab = (b_pos - a_pos).normalized();
        let cos_half = self.half_angle_rad.cos();
        a_facing.normalized().dot(ab) >= cos_half && b_facing.normalized().dot(-ab) >= cos_half
    }

    /// Samples a detection attempt (geometry test plus detection probability).
    pub fn detect(
        &self,
        plan: &FloorPlan,
        a_pos: Point2,
        a_facing: Vec2,
        b_pos: Point2,
        b_facing: Vec2,
        rng: &mut impl Rng,
    ) -> bool {
        self.mutually_visible(plan, a_pos, a_facing, b_pos, b_facing)
            && rng.gen::<f64>() < self.detection_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rooms::RoomId;
    use ares_simkit::rng::SeedTree;

    fn setup() -> (FloorPlan, Channel) {
        (FloorPlan::lunares(), Channel::new(ChannelParams::ble()))
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let p = ChannelParams::ble();
        assert!(p.mean_rssi(1.0, 0) > p.mean_rssi(3.0, 0));
        assert!(p.mean_rssi(3.0, 0) > p.mean_rssi(6.0, 0));
    }

    #[test]
    fn ranging_inverts_path_loss() {
        let p = ChannelParams::ble();
        for d in [0.5, 1.0, 2.0, 4.0, 7.5] {
            let rssi = p.mean_rssi(d, 0);
            assert!((p.distance_for_rssi(rssi) - d).abs() < 1e-9, "at {d} m");
        }
    }

    #[test]
    fn ranging_table_matches_exact_inversion() {
        let p = ChannelParams::ble();
        let table = RangingTable::new(&p);
        // Inside the grid: table error is bounded by half a grid step of
        // RSSI, i.e. a relative distance error below 1/256 dB of path loss.
        let tol = 10f64.powf(1.0 / (256.0 * 10.0 * p.exponent)) - 1.0;
        let mut dbm = p.sensitivity_dbm - 20.0;
        while dbm < p.tx_power_dbm + 10.0 {
            let exact = p.distance_for_rssi(dbm);
            let got = table.distance(dbm);
            assert!(
                (got - exact).abs() <= exact * tol + 1e-12,
                "at {dbm} dBm: table {got} vs exact {exact}"
            );
            dbm += 0.173; // off-grid sampling
        }
        // Outside the grid: exact fallback, bit-for-bit.
        for dbm in [-200.0, 60.0, 100.0] {
            assert_eq!(table.distance(dbm), p.distance_for_rssi(dbm));
        }
        // On-grid RSSI values are looked up exactly.
        assert_eq!(table.distance(-60.0), p.distance_for_rssi(-60.0));
    }

    #[test]
    fn same_room_always_strong() {
        let p = ChannelParams::ble();
        // Farthest same-room distance in a 4x4 module is the diagonal 5.66 m.
        let worst = p.mean_rssi(5.66, 0);
        assert!(
            worst > p.sensitivity_dbm + 20.0,
            "same-room link must have ≥20 dB margin, got {worst}"
        );
    }

    #[test]
    fn cross_room_through_wall_is_dead() {
        let (plan, ch) = setup();
        let office = plan.room_center(RoomId::Office);
        let storage = plan.room_center(RoomId::Storage);
        let rssi = ch.mean_rssi_between(&plan, office, storage);
        assert!(
            rssi < ch.params().sensitivity_dbm - 10.0,
            "metal walls must shield: {rssi} dBm"
        );
        let _ = plan;
    }

    #[test]
    fn door_leakage_is_possible() {
        let (plan, ch) = setup();
        // Straight through the office doorway into the main hall: no walls.
        let door = plan.door_between(RoomId::Office, RoomId::Main).unwrap();
        let inside = Point2::new(door.center.x, 0.4);
        let outside = Point2::new(door.center.x, -0.4);
        let rssi = ch.mean_rssi_between(&plan, inside, outside);
        assert!(
            rssi > ch.params().sensitivity_dbm,
            "doorway leak blocked: {rssi}"
        );
    }

    #[test]
    fn transmit_statistics_match_model() {
        let (plan, ch) = setup();
        let mut rng = SeedTree::new(1).stream("rf-test");
        let tx = plan.room_center(RoomId::Kitchen);
        let rx = tx + Vec2::new(1.5, 0.8);
        let mut received = 0;
        let mut sum = 0.0;
        let n = 2000;
        for _ in 0..n {
            if let Reception::Received(r) = ch.transmit(&plan, tx, rx, &mut rng) {
                received += 1;
                sum += r;
            }
        }
        let frac = received as f64 / n as f64;
        assert!(
            frac > 0.90,
            "in-room reception should be reliable, got {frac}"
        );
        let mean = sum / received as f64;
        let expect = ch.mean_rssi_between(&plan, tx, rx);
        assert!((mean - expect).abs() < 0.5, "mean {mean} vs model {expect}");
    }

    #[test]
    fn infrared_requires_mutual_facing() {
        let plan = FloorPlan::lunares();
        let ir = InfraredParams::default();
        let a = plan.room_center(RoomId::Kitchen);
        let b = a + Vec2::new(1.0, 0.0);
        let east = Vec2::new(1.0, 0.0);
        let west = Vec2::new(-1.0, 0.0);
        // Face to face: visible.
        assert!(ir.mutually_visible(&plan, a, east, b, west));
        // Back to back: not.
        assert!(!ir.mutually_visible(&plan, a, west, b, east));
        // One looking away: not.
        assert!(!ir.mutually_visible(&plan, a, east, b, east));
    }

    #[test]
    fn infrared_blocked_by_range_and_walls() {
        let plan = FloorPlan::lunares();
        let ir = InfraredParams::default();
        let east = Vec2::new(1.0, 0.0);
        let west = Vec2::new(-1.0, 0.0);
        let a = plan.room_center(RoomId::Kitchen);
        // Too far.
        let far = a + Vec2::new(3.0, 0.0);
        assert!(!ir.mutually_visible(&plan, a, east, far, west));
        // Wall between rooms.
        let office = plan.room_center(RoomId::Office);
        let storage = plan.room_center(RoomId::Storage);
        assert!(!ir.mutually_visible(&plan, office, east, storage, west));
    }
}
