//! Room identities of the Lunares-class habitat.
//!
//! The ICAres-1 habitat consists of separate modules "of distinct kinds and
//! purposes: a bedroom, kitchen, office, biological and analytical
//! laboratories, an equipment storage, gym, and bathroom, which are all
//! arranged in a semicircle with a place to rest in the middle", plus an
//! airlock leading to an isolated hangar with emulated Martian regolith.
//!
//! The paper's Fig. 2 aggregates these into eight peripheral rooms (airlock,
//! bedroom, biolab, kitchen, office, restroom, storage, workshop) and excludes
//! the central main room that is adjacent to all others; we use the same
//! canonical room set.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A room of the habitat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RoomId {
    /// The central hub ("a place to rest in the middle"), adjacent to every
    /// other room; excluded from the Fig. 2 passage matrix.
    Main,
    /// Airlock leading to the hangar; EVA transit point.
    Airlock,
    /// Shared bedroom module.
    Bedroom,
    /// Biological laboratory.
    Biolab,
    /// Kitchen / mess module — the paper found it the "cosiest" room.
    Kitchen,
    /// Office / paperwork module.
    Office,
    /// Bathroom / restroom (badges were not worn here).
    Restroom,
    /// Equipment storage.
    Storage,
    /// Workshop with 3-D printers and analytical bench.
    Workshop,
    /// The isolated hangar with emulated Martian surface, reachable only via
    /// the airlock; badges are taken off for EVAs.
    Hangar,
}

impl RoomId {
    /// All rooms, including [`RoomId::Main`] and [`RoomId::Hangar`].
    pub const ALL: [RoomId; 10] = [
        RoomId::Main,
        RoomId::Airlock,
        RoomId::Bedroom,
        RoomId::Biolab,
        RoomId::Kitchen,
        RoomId::Office,
        RoomId::Restroom,
        RoomId::Storage,
        RoomId::Workshop,
        RoomId::Hangar,
    ];

    /// The eight peripheral rooms reported in the paper's Fig. 2 (alphabetical
    /// order, matching the figure's axes).
    pub const FIG2: [RoomId; 8] = [
        RoomId::Airlock,
        RoomId::Bedroom,
        RoomId::Biolab,
        RoomId::Kitchen,
        RoomId::Office,
        RoomId::Restroom,
        RoomId::Storage,
        RoomId::Workshop,
    ];

    /// Short lowercase label as used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RoomId::Main => "main",
            RoomId::Airlock => "airlock",
            RoomId::Bedroom => "bedroom",
            RoomId::Biolab => "biolab",
            RoomId::Kitchen => "kitchen",
            RoomId::Office => "office",
            RoomId::Restroom => "restroom",
            RoomId::Storage => "storage",
            RoomId::Workshop => "workshop",
            RoomId::Hangar => "hangar",
        }
    }

    /// Dense index into [`RoomId::ALL`], for array-backed per-room tables.
    #[must_use]
    pub fn index(self) -> usize {
        RoomId::ALL
            .iter()
            .position(|&r| r == self)
            .expect("room present in ALL")
    }

    /// Whether this room appears in the Fig. 2 passage matrix.
    #[must_use]
    pub fn in_fig2(self) -> bool {
        RoomId::FIG2.contains(&self)
    }

    /// Whether badges are systematically *not* worn here (restroom privacy
    /// rule; hangar because badges are prohibited during EVAs).
    #[must_use]
    pub fn is_no_wear_zone(self) -> bool {
        matches!(self, RoomId::Restroom | RoomId::Hangar)
    }
}

impl fmt::Display for RoomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A dense per-room table of values, indexed by [`RoomId`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoomTable<T> {
    values: Vec<T>,
}

impl<T: Default + Clone> Default for RoomTable<T> {
    fn default() -> Self {
        RoomTable {
            values: vec![T::default(); RoomId::ALL.len()],
        }
    }
}

impl<T: Default + Clone> RoomTable<T> {
    /// Creates a table with default values for every room.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<T> RoomTable<T> {
    /// Builds a table by evaluating `f` for every room.
    pub fn from_fn(mut f: impl FnMut(RoomId) -> T) -> Self {
        RoomTable {
            values: RoomId::ALL.iter().map(|&r| f(r)).collect(),
        }
    }

    /// Shared access to a room's value.
    #[must_use]
    pub fn get(&self, room: RoomId) -> &T {
        &self.values[room.index()]
    }

    /// Mutable access to a room's value.
    pub fn get_mut(&mut self, room: RoomId) -> &mut T {
        &mut self.values[room.index()]
    }

    /// Iterates `(room, value)` pairs in [`RoomId::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (RoomId, &T)> {
        RoomId::ALL.iter().copied().zip(self.values.iter())
    }
}

impl<T> std::ops::Index<RoomId> for RoomTable<T> {
    type Output = T;
    fn index(&self, room: RoomId) -> &T {
        self.get(room)
    }
}

impl<T> std::ops::IndexMut<RoomId> for RoomTable<T> {
    fn index_mut(&mut self, room: RoomId) -> &mut T {
        self.get_mut(room)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for r in RoomId::ALL {
            assert!(seen.insert(r.index()));
            assert!(r.index() < RoomId::ALL.len());
        }
    }

    #[test]
    fn fig2_set_matches_paper_axes() {
        let labels: Vec<&str> = RoomId::FIG2.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            vec![
                "airlock", "bedroom", "biolab", "kitchen", "office", "restroom", "storage",
                "workshop"
            ]
        );
        assert!(!RoomId::Main.in_fig2());
        assert!(!RoomId::Hangar.in_fig2());
    }

    #[test]
    fn no_wear_zones() {
        assert!(RoomId::Restroom.is_no_wear_zone());
        assert!(RoomId::Hangar.is_no_wear_zone());
        assert!(!RoomId::Kitchen.is_no_wear_zone());
    }

    #[test]
    fn room_table_round_trip() {
        let mut t: RoomTable<u32> = RoomTable::new();
        t[RoomId::Kitchen] = 7;
        assert_eq!(t[RoomId::Kitchen], 7);
        assert_eq!(t[RoomId::Office], 0);
        let built = RoomTable::from_fn(|r| r.index() as u32);
        for (room, v) in built.iter() {
            assert_eq!(*v, room.index() as u32);
        }
    }
}
