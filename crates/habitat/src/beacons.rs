//! The 27 BLE beacons deployed in the habitat.
//!
//! "Apart from the badges, we were also allowed to deploy in the habitat 27
//! BLE beacons, each of which broadcast a message announcing its presence
//! approximately three times per second." Placement was carefully selected so
//! that, combined with the metal-wall shielding, room-level localization was
//! perfect and in-room triangulation accurate.

use crate::floorplan::FloorPlan;
use crate::rooms::RoomId;
use ares_simkit::geometry::Point2;
use ares_simkit::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Identifier of a deployed beacon (0-based, stable across the mission).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BeaconId(pub u8);

impl std::fmt::Display for BeaconId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{:02}", self.0)
    }
}

/// A deployed BLE beacon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Beacon {
    /// Stable identifier broadcast in every advertisement.
    pub id: BeaconId,
    /// Mounting position (badge-height plane).
    pub position: Point2,
    /// Room the beacon is mounted in.
    pub room: RoomId,
}

/// The beacon deployment: positions, rooms, and the advertising cadence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeaconDeployment {
    beacons: Vec<Beacon>,
    advertise_period: SimDuration,
}

impl BeaconDeployment {
    /// The paper's advertising rate: "approximately three times per second".
    pub const ADVERTISE_PERIOD: SimDuration = SimDuration::from_micros(333_333);

    /// The canonical ICAres-1 deployment: 3 beacons in each of the eight
    /// peripheral modules (corner-ish spread for triangulation) plus 3 along
    /// the main hall — 27 in total. Exactly the deployment of
    /// [`HabitatSpec::lunares`](crate::spec::HabitatSpec::lunares).
    #[must_use]
    pub fn icares(plan: &FloorPlan) -> Self {
        Self::from_spec(&crate::spec::HabitatSpec::lunares(), plan)
    }

    /// Builds a deployment from a habitat spec over its floor plan: the
    /// spec's three fractional mounts per peripheral module (west to east)
    /// followed by three mounts along the main hall, ids assigned in that
    /// order. For the Lunares spec this reproduces the historical hand-built
    /// 27-beacon deployment bit-for-bit.
    #[must_use]
    pub fn from_spec(spec: &crate::spec::HabitatSpec, plan: &FloorPlan) -> Self {
        let mut beacons = Vec::with_capacity(spec.module_order.len() * 3 + 3);
        let mut next = 0u8;
        let mut push = |p: Point2, room: RoomId, beacons: &mut Vec<Beacon>| {
            beacons.push(Beacon {
                id: BeaconId(next),
                position: p,
                room,
            });
            next += 1;
        };
        for (i, &room) in spec.module_order.iter().enumerate() {
            let (min, max) = plan.room_polygon(room).bounds();
            let (w, h) = (max.x - min.x, max.y - min.y);
            for &(fx, fy) in &spec.peripheral_mounts[i] {
                push(
                    Point2::new(min.x + fx * w, min.y + fy * h),
                    room,
                    &mut beacons,
                );
            }
        }
        let (min, max) = plan.room_polygon(RoomId::Main).bounds();
        let (w, h) = (max.x - min.x, max.y - min.y);
        for &(fx, fy) in &spec.hall_mounts {
            push(
                Point2::new(min.x + fx * w, min.y + fy * h),
                RoomId::Main,
                &mut beacons,
            );
        }
        BeaconDeployment {
            beacons,
            advertise_period: Self::ADVERTISE_PERIOD,
        }
    }

    /// All beacons.
    #[must_use]
    pub fn beacons(&self) -> &[Beacon] {
        &self.beacons
    }

    /// Number of deployed beacons.
    #[must_use]
    pub fn len(&self) -> usize {
        self.beacons.len()
    }

    /// Whether no beacons are deployed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.beacons.is_empty()
    }

    /// The advertising period.
    #[must_use]
    pub fn advertise_period(&self) -> SimDuration {
        self.advertise_period
    }

    /// Looks up a beacon by id.
    #[must_use]
    pub fn get(&self, id: BeaconId) -> Option<&Beacon> {
        self.beacons.iter().find(|b| b.id == id)
    }

    /// Beacons mounted in a given room.
    pub fn in_room(&self, room: RoomId) -> impl Iterator<Item = &Beacon> {
        self.beacons.iter().filter(move |b| b.room == room)
    }

    /// Builds the dense O(1) lookup index over this deployment.
    #[must_use]
    pub fn index(&self) -> BeaconIndex {
        BeaconIndex::new(self)
    }

    /// A reduced deployment keeping only the first `per_room` beacons of each
    /// room — used by the beacon-density ablation experiment.
    #[must_use]
    pub fn thinned(&self, per_room: usize) -> BeaconDeployment {
        let mut kept = Vec::new();
        for room in RoomId::ALL {
            kept.extend(self.in_room(room).take(per_room).copied());
        }
        kept.sort_by_key(|b| b.id);
        BeaconDeployment {
            beacons: kept,
            advertise_period: self.advertise_period,
        }
    }
}

/// A dense by-id beacon lookup, built once per deployment.
///
/// [`BeaconDeployment::get`] scans the placement list linearly — fine for a
/// handful of calls, but the localization hot path resolves a beacon for
/// every advertisement of every scan (millions per mission day). The index
/// turns that into a single slice access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BeaconIndex {
    by_id: Vec<Option<Beacon>>,
}

impl BeaconIndex {
    /// Builds the index over a deployment.
    #[must_use]
    pub fn new(deployment: &BeaconDeployment) -> Self {
        let top = deployment
            .beacons()
            .iter()
            .map(|b| b.id.0 as usize + 1)
            .max()
            .unwrap_or(0);
        let mut by_id = vec![None; top];
        for &b in deployment.beacons() {
            by_id[b.id.0 as usize] = Some(b);
        }
        BeaconIndex { by_id }
    }

    /// Looks up a beacon by id in O(1).
    #[must_use]
    pub fn get(&self, id: BeaconId) -> Option<&Beacon> {
        self.by_id.get(id.0 as usize)?.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::PERIPHERAL_ORDER;

    #[test]
    fn index_agrees_with_linear_lookup() {
        let plan = FloorPlan::lunares();
        let dep = BeaconDeployment::icares(&plan);
        let index = dep.index();
        for raw in 0u8..40 {
            let id = BeaconId(raw);
            assert_eq!(index.get(id), dep.get(id), "beacon {id}");
        }
        // Thinned deployments leave id gaps; the index must mirror them.
        let thin = dep.thinned(1);
        let index = thin.index();
        for raw in 0u8..40 {
            let id = BeaconId(raw);
            assert_eq!(index.get(id), thin.get(id), "thinned beacon {id}");
        }
    }

    #[test]
    fn from_spec_reproduces_the_hand_built_deployment() {
        let plan = FloorPlan::lunares();
        let dep = BeaconDeployment::icares(&plan);
        // The historical construction, kept as the byte-identity oracle.
        let mut expected = Vec::new();
        for &room in &PERIPHERAL_ORDER {
            let (min, max) = plan.room_polygon(room).bounds();
            let (w, h) = (max.x - min.x, max.y - min.y);
            expected.push(Point2::new(min.x + 0.15 * w, min.y + 0.85 * h));
            expected.push(Point2::new(min.x + 0.85 * w, min.y + 0.85 * h));
            expected.push(Point2::new(min.x + 0.50 * w, min.y + 0.15 * h));
        }
        let (min, max) = plan.room_polygon(RoomId::Main).bounds();
        let (w, h) = (max.x - min.x, max.y - min.y);
        for fx in [0.15, 0.5, 0.85] {
            expected.push(Point2::new(min.x + fx * w, min.y + 0.5 * h));
        }
        assert_eq!(dep.len(), expected.len());
        for (b, e) in dep.beacons().iter().zip(&expected) {
            assert_eq!(b.position.x.to_bits(), e.x.to_bits(), "beacon {}", b.id);
            assert_eq!(b.position.y.to_bits(), e.y.to_bits(), "beacon {}", b.id);
        }
    }

    #[test]
    fn icares_has_27_beacons() {
        let plan = FloorPlan::lunares();
        let dep = BeaconDeployment::icares(&plan);
        assert_eq!(dep.len(), 27);
    }

    #[test]
    fn beacons_sit_inside_their_rooms() {
        let plan = FloorPlan::lunares();
        let dep = BeaconDeployment::icares(&plan);
        for b in dep.beacons() {
            assert_eq!(plan.room_at(b.position), Some(b.room), "beacon {}", b.id);
        }
    }

    #[test]
    fn three_per_peripheral_room() {
        let plan = FloorPlan::lunares();
        let dep = BeaconDeployment::icares(&plan);
        for &room in &PERIPHERAL_ORDER {
            assert_eq!(dep.in_room(room).count(), 3, "{room}");
        }
        assert_eq!(dep.in_room(RoomId::Main).count(), 3);
        assert_eq!(dep.in_room(RoomId::Hangar).count(), 0);
    }

    #[test]
    fn in_room_beacons_are_non_collinear() {
        // Triangulation needs a 2-D spread.
        let plan = FloorPlan::lunares();
        let dep = BeaconDeployment::icares(&plan);
        for &room in &PERIPHERAL_ORDER {
            let pos: Vec<Point2> = dep.in_room(room).map(|b| b.position).collect();
            let cross = (pos[1] - pos[0]).cross(pos[2] - pos[0]);
            assert!(cross.abs() > 0.5, "{room} beacons nearly collinear");
        }
    }

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let plan = FloorPlan::lunares();
        let dep = BeaconDeployment::icares(&plan);
        let mut seen = std::collections::HashSet::new();
        for b in dep.beacons() {
            assert!(seen.insert(b.id));
            assert_eq!(dep.get(b.id).unwrap().position, b.position);
        }
        assert!(dep.get(BeaconId(200)).is_none());
    }

    #[test]
    fn thinning_reduces_density() {
        let plan = FloorPlan::lunares();
        let dep = BeaconDeployment::icares(&plan);
        let thin = dep.thinned(1);
        assert_eq!(thin.len(), 9); // 8 peripheral + 1 main
        for room in RoomId::ALL {
            assert!(thin.in_room(room).count() <= 1);
        }
    }
}
