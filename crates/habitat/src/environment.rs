//! Ambient environment fields: temperature, light and pressure per room.
//!
//! The habitat has "no light other than the artificial lighting that
//! corresponded to Martian time of day", and the kitchen was "favored by the
//! crew as the cosiest room with the highest temperatures". Badge
//! thermometer/barometer/light-sensor samples are drawn from these fields
//! plus sensor noise.

use crate::rooms::{RoomId, RoomTable};
use ares_simkit::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Length of a Martian sol: 24 h 39 m 35 s.
pub const SOL: SimDuration = SimDuration::from_micros(88_775_000_000);

/// The environment model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    day_length: SimDuration,
    base_temp_c: RoomTable<f64>,
    pressure_hpa: f64,
}

impl Environment {
    /// The canonical ICAres-1 environment: Martian day cycle, kitchen warmest,
    /// hangar coldest, sea-level-ish habitat pressure.
    #[must_use]
    pub fn icares() -> Self {
        let mut base_temp_c = RoomTable::from_fn(|_| 21.0);
        base_temp_c[RoomId::Kitchen] = 24.5; // cosiest room, highest temperature
        base_temp_c[RoomId::Main] = 22.0;
        base_temp_c[RoomId::Bedroom] = 20.0;
        base_temp_c[RoomId::Storage] = 18.5;
        base_temp_c[RoomId::Airlock] = 17.0;
        base_temp_c[RoomId::Hangar] = 12.0;
        base_temp_c[RoomId::Biolab] = 21.5;
        base_temp_c[RoomId::Workshop] = 21.0;
        base_temp_c[RoomId::Office] = 21.0;
        base_temp_c[RoomId::Restroom] = 22.5;
        Environment {
            day_length: SOL,
            base_temp_c,
            pressure_hpa: 1003.0,
        }
    }

    /// The configured artificial day length (a Martian sol by default —
    /// the mission "lived on particularly adjusted Martian time").
    #[must_use]
    pub fn day_length(&self) -> SimDuration {
        self.day_length
    }

    /// Overrides the day length (e.g. to study clock-shift perception).
    #[must_use]
    pub fn with_day_length(mut self, day_length: SimDuration) -> Self {
        assert!(!day_length.is_zero(), "day length must be positive");
        self.day_length = day_length;
        self
    }

    /// Fraction of the artificial day elapsed at `t`, in `[0, 1)`.
    #[must_use]
    pub fn day_phase(&self, t: SimTime) -> f64 {
        let elapsed = t - SimTime::EPOCH;
        (elapsed % self.day_length) / self.day_length
    }

    /// Artificial illuminance in lux at time `t` in `room`.
    ///
    /// Lights ramp with the Martian day: dark "night" (0.23–0.77 of the cycle
    /// maps to day), off in the hangar airlock side, dimmer in the bedroom.
    #[must_use]
    pub fn light_lux(&self, room: RoomId, t: SimTime) -> f64 {
        let phase = self.day_phase(t);
        // Daylight window roughly 07:00–21:00 of the artificial day.
        let day = (0.29..0.875).contains(&phase);
        let base: f64 = match room {
            RoomId::Hangar => 40.0, // dim work lights only
            RoomId::Bedroom => {
                if day {
                    180.0
                } else {
                    2.0
                }
            }
            _ => {
                if day {
                    420.0
                } else {
                    8.0
                }
            }
        };
        // Smooth ramp near the boundaries.
        let ramp = {
            let edges = [(0.29, 1.0), (0.875, -1.0)];
            let mut k: f64 = 1.0;
            for (e, _sign) in edges {
                let d = (phase - e).abs();
                if d < 0.02 {
                    k = k.min(d / 0.02);
                }
            }
            k.clamp(0.05, 1.0)
        };
        base * ramp
    }

    /// Ambient temperature in °C at time `t` in `room`, with a mild diurnal
    /// swing.
    #[must_use]
    pub fn temperature_c(&self, room: RoomId, t: SimTime) -> f64 {
        let phase = self.day_phase(t);
        let swing = 1.2 * (std::f64::consts::TAU * (phase - 0.55)).cos();
        *self.base_temp_c.get(room) + swing
    }

    /// Barometric pressure in hPa (uniform across the sealed habitat, slight
    /// slow oscillation from the life-support cycle).
    #[must_use]
    pub fn pressure_hpa(&self, t: SimTime) -> f64 {
        let phase = self.day_phase(t);
        self.pressure_hpa + 1.5 * (std::f64::consts::TAU * phase).sin()
    }
}

impl Default for Environment {
    fn default() -> Self {
        Environment::icares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kitchen_is_warmest_indoor_room() {
        let env = Environment::icares();
        let t = SimTime::from_day_hms(3, 13, 0, 0);
        let kitchen = env.temperature_c(RoomId::Kitchen, t);
        for r in RoomId::ALL {
            if r != RoomId::Kitchen {
                assert!(kitchen > env.temperature_c(r, t), "kitchen must beat {r}");
            }
        }
    }

    #[test]
    fn lights_follow_martian_day() {
        let env = Environment::icares();
        // Mid-cycle (phase 0.5) is daytime; phase 0.05 is night.
        let day_t = SimTime::EPOCH + SOL.mul_f64(0.5);
        let night_t = SimTime::EPOCH + SOL.mul_f64(0.05);
        assert!(env.light_lux(RoomId::Office, day_t) > 300.0);
        assert!(env.light_lux(RoomId::Office, night_t) < 20.0);
    }

    #[test]
    fn martian_day_drifts_against_terrestrial_clock() {
        let env = Environment::icares();
        // After one terrestrial day the phase is just short of a full cycle:
        // the 39.5-minute daily shift experienced by the crew.
        let phase = env.day_phase(SimTime::from_day_hms(2, 0, 0, 0));
        assert!(phase > 0.95 && phase < 1.0, "phase {phase}");
    }

    #[test]
    fn pressure_stays_in_band() {
        let env = Environment::icares();
        for h in 0..48 {
            let p = env.pressure_hpa(SimTime::from_secs(h * 3600));
            assert!((1000.0..1006.0).contains(&p));
        }
    }

    #[test]
    fn day_phase_wraps() {
        let env = Environment::icares();
        let p0 = env.day_phase(SimTime::EPOCH);
        let p1 = env.day_phase(SimTime::EPOCH + SOL);
        assert!((p0 - p1).abs() < 1e-9);
    }

    #[test]
    fn custom_day_length() {
        let env = Environment::icares().with_day_length(SimDuration::from_hours(24));
        assert_eq!(env.day_length(), SimDuration::from_hours(24));
        assert!((env.day_phase(SimTime::from_day_hms(1, 12, 0, 0)) - 0.5).abs() < 1e-9);
    }
}
