//! Deterministic chaos: seeded, replayable fault injection for the mission
//! support runtime.
//!
//! The paper demands a support system where "a partial failure or
//! unavailability of some functionality does not hinder the success of the
//! entire mission". That property is only believable if it is *measured
//! under injected faults* — availability, failover counts and MTTR under a
//! known fault schedule are the deliverable, not a hopeful architecture
//! diagram. This module provides the schedule: typed faults pinned to the
//! sim clock ([`Fault`]), bundled into a seeded [`FaultPlan`] (hand-built or
//! swept from an intensity knob), and compiled into a [`FaultScheduler`]
//! that answers point queries during a run. Same seed + same plan ⇒ the
//! same faults at the same instants, every time.

use crate::failover::ReplicaId;
use ares_badge::records::BadgeId;
use ares_simkit::rng::SeedTree;
use ares_simkit::series::{Interval, IntervalSet};
use ares_simkit::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One typed fault, scheduled on the sim clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// An analysis replica crashes at `at`; with `recover_at` set it reboots
    /// and starts heartbeating again at that instant.
    ReplicaCrash {
        /// Which replica.
        replica: ReplicaId,
        /// Crash instant.
        at: SimTime,
        /// Reboot instant, if the crash is transient.
        recover_at: Option<SimTime>,
    },
    /// Heartbeats from an otherwise live replica are suppressed (the
    /// failure detector's nightmare: a healthy unit that looks dead).
    HeartbeatLoss {
        /// Which replica.
        replica: ReplicaId,
        /// Suppression window.
        window: Interval,
    },
    /// Bus delivery fails: checkpoint replication offers are dropped.
    BusDrop {
        /// Outage window.
        window: Interval,
    },
    /// Earth-link blackout: messages are *delayed* past the window.
    LinkBlackout {
        /// Blackout window.
        window: Interval,
    },
    /// Earth-link loss: transmissions in the window are *destroyed*.
    LinkLoss {
        /// Lossy window.
        window: Interval,
    },
    /// A badge dies at `at` and stays dead for the run.
    BadgeDeath {
        /// Which badge.
        badge: BadgeId,
        /// Death instant.
        at: SimTime,
    },
    /// The time-sync reference badge is unreachable in the window: no sync
    /// exchanges reach the analyzers.
    ReferenceOutage {
        /// Outage window.
        window: Interval,
    },
}

impl Fault {
    /// A short stable tag for signatures and logs.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::ReplicaCrash { .. } => "replica-crash",
            Fault::HeartbeatLoss { .. } => "heartbeat-loss",
            Fault::BusDrop { .. } => "bus-drop",
            Fault::LinkBlackout { .. } => "link-blackout",
            Fault::LinkLoss { .. } => "link-loss",
            Fault::BadgeDeath { .. } => "badge-death",
            Fault::ReferenceOutage { .. } => "reference-outage",
        }
    }
}

/// A seeded, replayable fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan carrying the seed that derived randomness (telemetry
    /// loss draws, sweeps) will use.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builder: adds one fault.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Generates a plan over `span` whose fault load scales with
    /// `intensity` ∈ [0, 1]. Fully deterministic in `(seed, intensity,
    /// span)`: the intensity sweep of the `chaos` bench binary replays
    /// byte-identically.
    #[must_use]
    pub fn sweep(seed: u64, intensity: f64, span: Interval) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        let tree = SeedTree::new(seed).child("chaos");
        let mut plan = FaultPlan::new(seed);
        let span_secs = span.duration().as_secs_f64();
        let at_frac = |frac: f64| span.start + SimDuration::from_secs_f64(span_secs * frac);

        // Replica crashes: up to one per backup tier, transient.
        let mut rng = tree.stream("crash");
        let crashes = (intensity * 3.0).round() as usize;
        for (i, _) in (0..crashes).enumerate() {
            let at = at_frac(rng.gen_range(0.2..0.7));
            let outage_h = rng.gen_range(1.0..4.0);
            plan = plan.with(Fault::ReplicaCrash {
                replica: ReplicaId(i as u8),
                at,
                recover_at: Some(at + SimDuration::from_secs_f64(outage_h * 3600.0)),
            });
        }

        // Heartbeat suppression on a healthy replica.
        let mut rng = tree.stream("heartbeat");
        if intensity >= 0.5 {
            let start = at_frac(rng.gen_range(0.1..0.8));
            let window =
                Interval::new(start, start + SimDuration::from_mins(rng.gen_range(10..45)));
            plan = plan.with(Fault::HeartbeatLoss {
                replica: ReplicaId(2),
                window,
            });
        }

        // One blackout whose length scales with intensity, plus a lossy
        // window at high intensity.
        let mut rng = tree.stream("link");
        if intensity > 0.0 {
            let start = at_frac(rng.gen_range(0.3..0.6));
            let hours = 0.5 + 2.5 * intensity;
            plan = plan.with(Fault::LinkBlackout {
                window: Interval::new(start, start + SimDuration::from_secs_f64(hours * 3600.0)),
            });
        }
        if intensity >= 0.75 {
            let start = at_frac(rng.gen_range(0.05..0.25));
            plan = plan.with(Fault::LinkLoss {
                window: Interval::new(start, start + SimDuration::from_mins(rng.gen_range(30..90))),
            });
        }

        // Replication fabric outage.
        let mut rng = tree.stream("bus");
        if intensity >= 0.5 {
            let start = at_frac(rng.gen_range(0.4..0.8));
            plan = plan.with(Fault::BusDrop {
                window: Interval::new(start, start + SimDuration::from_mins(rng.gen_range(15..60))),
            });
        }

        // Badge deaths and a reference outage.
        let mut rng = tree.stream("badge");
        let deaths = (intensity * 2.0).floor() as usize;
        for i in 0..deaths {
            plan = plan.with(Fault::BadgeDeath {
                badge: BadgeId(i as u8 * 3 + 1),
                at: at_frac(rng.gen_range(0.3..0.9)),
            });
        }
        if intensity >= 0.9 {
            let start = at_frac(rng.gen_range(0.5..0.7));
            plan = plan.with(Fault::ReferenceOutage {
                window: Interval::new(
                    start,
                    start + SimDuration::from_mins(rng.gen_range(30..120)),
                ),
            });
        }
        plan
    }

    /// A stable one-line summary: seed plus fault counts by kind. Goes into
    /// the reliability report header so an artifact names the schedule that
    /// produced it.
    #[must_use]
    pub fn signature(&self) -> String {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for f in &self.faults {
            *counts.entry(f.kind()).or_default() += 1;
        }
        let body = counts
            .iter()
            .map(|(k, n)| format!("{k}x{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "seed=0x{:X} faults={} [{}]",
            self.seed,
            self.faults.len(),
            body
        )
    }
}

/// The compiled plan: per-entity interval sets answering point queries in
/// `O(log n)` during a run.
#[derive(Debug, Clone, Default)]
pub struct FaultScheduler {
    crashed: BTreeMap<ReplicaId, IntervalSet>,
    heartbeat_lost: BTreeMap<ReplicaId, IntervalSet>,
    bus_drop: IntervalSet,
    blackouts: IntervalSet,
    link_loss: IntervalSet,
    badge_dead_from: BTreeMap<BadgeId, SimTime>,
    reference_outage: IntervalSet,
}

impl FaultScheduler {
    /// Compiles a plan. Open-ended crashes are closed at `horizon` (queries
    /// beyond the horizon treat the replica as still down).
    #[must_use]
    pub fn compile(plan: &FaultPlan, horizon: SimTime) -> Self {
        let mut sched = FaultScheduler::default();
        for fault in plan.faults() {
            match fault {
                Fault::ReplicaCrash {
                    replica,
                    at,
                    recover_at,
                } => {
                    let end = recover_at.unwrap_or(horizon).max(*at);
                    sched
                        .crashed
                        .entry(*replica)
                        .or_default()
                        .insert(Interval::new(*at, end));
                }
                Fault::HeartbeatLoss { replica, window } => {
                    sched
                        .heartbeat_lost
                        .entry(*replica)
                        .or_default()
                        .insert(*window);
                }
                Fault::BusDrop { window } => sched.bus_drop.insert(*window),
                Fault::LinkBlackout { window } => sched.blackouts.insert(*window),
                Fault::LinkLoss { window } => sched.link_loss.insert(*window),
                Fault::BadgeDeath { badge, at } => {
                    let t = sched.badge_dead_from.entry(*badge).or_insert(*at);
                    *t = (*t).min(*at);
                }
                Fault::ReferenceOutage { window } => sched.reference_outage.insert(*window),
            }
        }
        sched
    }

    /// Whether the replica's process is running at `t`.
    #[must_use]
    pub fn replica_alive(&self, replica: ReplicaId, t: SimTime) -> bool {
        !self
            .crashed
            .get(&replica)
            .is_some_and(|set| set.contains(t))
    }

    /// Whether a heartbeat emitted by the replica at `t` reaches the
    /// failure detector (requires the process alive *and* no suppression).
    #[must_use]
    pub fn heartbeat_delivered(&self, replica: ReplicaId, t: SimTime) -> bool {
        self.replica_alive(replica, t)
            && !self
                .heartbeat_lost
                .get(&replica)
                .is_some_and(|set| set.contains(t))
    }

    /// Whether checkpoint replication over the bus fails at `t`.
    #[must_use]
    pub fn bus_drop_active(&self, t: SimTime) -> bool {
        self.bus_drop.contains(t)
    }

    /// Earth-link blackout windows (delays).
    #[must_use]
    pub fn blackouts(&self) -> &IntervalSet {
        &self.blackouts
    }

    /// Earth-link loss windows (destruction).
    #[must_use]
    pub fn link_loss(&self) -> &IntervalSet {
        &self.link_loss
    }

    /// Whether the badge is still alive at `t`.
    #[must_use]
    pub fn badge_alive(&self, badge: BadgeId, t: SimTime) -> bool {
        self.badge_dead_from.get(&badge).is_none_or(|&at| t < at)
    }

    /// Whether the sync reference badge is reachable at `t`.
    #[must_use]
    pub fn reference_available(&self, t: SimTime) -> bool {
        !self.reference_outage.contains(t)
    }

    /// Total crash-outage time scheduled for a replica within `[lo, hi)`.
    #[must_use]
    pub fn crash_downtime(&self, replica: ReplicaId, lo: SimTime, hi: SimTime) -> SimDuration {
        self.crashed
            .get(&replica)
            .map_or(SimDuration::ZERO, |set| set.duration_within(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: u32, h: u32, m: u32) -> SimTime {
        SimTime::from_day_hms(day, h, m, 0)
    }

    fn day_span(day: u32) -> Interval {
        Interval::new(t(day, 0, 0), t(day + 1, 0, 0))
    }

    #[test]
    fn scheduler_answers_point_queries() {
        let plan = FaultPlan::new(7)
            .with(Fault::ReplicaCrash {
                replica: ReplicaId(0),
                at: t(3, 12, 0),
                recover_at: Some(t(3, 15, 0)),
            })
            .with(Fault::HeartbeatLoss {
                replica: ReplicaId(1),
                window: Interval::new(t(3, 9, 0), t(3, 9, 30)),
            })
            .with(Fault::BadgeDeath {
                badge: BadgeId(2),
                at: t(3, 14, 0),
            })
            .with(Fault::LinkBlackout {
                window: Interval::new(t(3, 10, 0), t(3, 12, 0)),
            });
        let sched = FaultScheduler::compile(&plan, t(4, 0, 0));
        assert!(sched.replica_alive(ReplicaId(0), t(3, 11, 59)));
        assert!(!sched.replica_alive(ReplicaId(0), t(3, 12, 0)));
        assert!(!sched.replica_alive(ReplicaId(0), t(3, 14, 59)));
        assert!(sched.replica_alive(ReplicaId(0), t(3, 15, 0)));
        // Alive but mute: the detector sees nothing, the process runs.
        assert!(sched.replica_alive(ReplicaId(1), t(3, 9, 15)));
        assert!(!sched.heartbeat_delivered(ReplicaId(1), t(3, 9, 15)));
        assert!(sched.heartbeat_delivered(ReplicaId(1), t(3, 9, 30)));
        // Crashed implies undelivered.
        assert!(!sched.heartbeat_delivered(ReplicaId(0), t(3, 13, 0)));
        assert!(sched.badge_alive(BadgeId(2), t(3, 13, 59)));
        assert!(!sched.badge_alive(BadgeId(2), t(3, 14, 0)));
        assert!(sched.badge_alive(BadgeId(9), t(3, 23, 0)));
        assert_eq!(
            sched.crash_downtime(ReplicaId(0), t(3, 0, 0), t(4, 0, 0)),
            SimDuration::from_hours(3)
        );
        assert!(sched.blackouts().contains(t(3, 11, 0)));
    }

    #[test]
    fn open_ended_crash_lasts_to_horizon() {
        let plan = FaultPlan::new(1).with(Fault::ReplicaCrash {
            replica: ReplicaId(2),
            at: t(5, 6, 0),
            recover_at: None,
        });
        let sched = FaultScheduler::compile(&plan, t(6, 0, 0));
        assert!(!sched.replica_alive(ReplicaId(2), t(5, 23, 59)));
    }

    #[test]
    fn sweep_is_deterministic_and_scales() {
        let span = day_span(3);
        let a = FaultPlan::sweep(0xDEAD, 0.5, span);
        let b = FaultPlan::sweep(0xDEAD, 0.5, span);
        assert_eq!(a, b, "same inputs ⇒ same plan");
        assert_eq!(a.signature(), b.signature());
        let calm = FaultPlan::sweep(0xDEAD, 0.0, span);
        let storm = FaultPlan::sweep(0xDEAD, 1.0, span);
        assert!(calm.faults().len() < a.faults().len());
        assert!(a.faults().len() < storm.faults().len());
        assert_eq!(calm.faults().len(), 0, "zero intensity injects nothing");
        // Every swept fault lies inside (or starts inside) the span.
        for f in storm.faults() {
            let start = match f {
                Fault::ReplicaCrash { at, .. } | Fault::BadgeDeath { at, .. } => *at,
                Fault::HeartbeatLoss { window, .. }
                | Fault::BusDrop { window }
                | Fault::LinkBlackout { window }
                | Fault::LinkLoss { window }
                | Fault::ReferenceOutage { window } => window.start,
            };
            assert!(span.contains(start), "{f:?} outside {span:?}");
        }
    }

    #[test]
    fn signature_is_stable_and_descriptive() {
        let plan = FaultPlan::new(0xBEEF)
            .with(Fault::LinkBlackout {
                window: Interval::new(t(2, 10, 0), t(2, 12, 0)),
            })
            .with(Fault::ReplicaCrash {
                replica: ReplicaId(0),
                at: t(2, 12, 0),
                recover_at: None,
            });
        assert_eq!(
            plan.signature(),
            "seed=0xBEEF faults=2 [link-blackoutx1 replica-crashx1]"
        );
    }
}
