//! `ares-support` — the distributed mission-support runtime of Section VI.
//!
//! The paper's deployment was offline; its Section VI argues that future
//! habitats need a *mission support system*: autonomous (Earth is 20 light-
//! minutes away), resilient (components fail and must be replicated),
//! privacy-respecting, and governed jointly by crew and mission control.
//! This crate builds that system against the pipeline's streaming output:
//!
//! * [`accessibility`] — ability-based interface design (the fix for the
//!   e-ink badge-number mix-up).
//! * [`bus`] — the habitat-wide pub/sub fabric.
//! * [`chaos`] — seeded, replayable fault injection (crashes, blackouts,
//!   heartbeat loss, badge deaths) for reliability drills.
//! * [`failover`] — heartbeat failure detection and primary/backup
//!   replication of analysis units.
//! * [`earthlink`] — the 20-minute-delay link with blackout handling and the
//!   day-12 delayed-command conflict detector.
//! * [`ingest`] — the multi-tenant streaming front door: thread-per-shard
//!   ingest with bounded queues, typed backpressure, per-shard WAL + vault
//!   checkpoints, and byte-identical crash recovery.
//! * [`alerts`] — the rule engine (dehydration, passivity, conflict heat,
//!   fatigue, wear compliance).
//! * [`approval`] — the crew + mission-control change-approval protocol with
//!   an emergency-override path.
//! * [`privacy`] — privacy zones, duty-cycle governance and the audit log.
//! * [`resources`] — the resource ledger and the badge + smart-mug +
//!   urine-processor fluid-balance integration.
//! * [`runtime`] — the composed runtime driving all of the above from
//!   streaming day analyses.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accessibility;
pub mod alerts;
pub mod approval;
pub mod bus;
pub mod chaos;
pub mod earthlink;
pub mod failover;
pub mod ingest;
pub mod privacy;
pub mod resources;
pub mod runtime;

/// Convenient glob-import of the most used support types.
pub mod prelude {
    pub use crate::accessibility::{AbilityProfile, Capability, Modality};
    pub use crate::alerts::{Alert, AlertEngine, AlertRules, Severity};
    pub use crate::approval::{ApprovalRules, Proposal, Status, Vote};
    pub use crate::bus::{Bus, Message, Subscription, Topic};
    pub use crate::chaos::{Fault, FaultPlan, FaultScheduler};
    pub use crate::earthlink::{Command, ConflictPolicy, Delivery, EarthLink, ONE_WAY_DELAY};
    pub use crate::failover::{FailoverEvent, ReplicaId, ReplicatedService, Role};
    pub use crate::ingest::{
        BackpressurePolicy, IngestConfig, IngestRunReport, IngestServer, RecordKind,
        TelemetryRecord, TenantId,
    };
    pub use crate::privacy::{DutyLevel, PrivacyGovernor, SensorClass};
    pub use crate::resources::{FluidBalance, Resource, ResourceLedger};
    pub use crate::runtime::{
        ChaosConfig, ChaosMission, DayReport, ReliabilityReport, SupportRuntime,
    };
}
