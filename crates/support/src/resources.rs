//! The resource ledger and the fluid-balance integration example.
//!
//! "Another aspect is optimizing utilization of scarce resources, such as
//! power, water, oxygen, food, especially during critical periods." And the
//! paper's concrete cross-system example: "a urine processor assembly …
//! combined with an identification system (e.g., provided by wearable
//! sociometric badges) and smart drinking mugs. These three modules together
//! allow for tracking fluid loss and intake to warn astronauts against
//! dehydration."

use ares_crew::roster::AstronautId;
use ares_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// A consumable resource of the habitat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Electrical energy (kWh).
    Power,
    /// Potable water (L).
    Water,
    /// Oxygen (kg).
    Oxygen,
    /// Food (kcal ×1000).
    Food,
}

/// The habitat-wide resource ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceLedger {
    stock: [(Resource, f64); 4],
    history: Vec<(SimTime, Resource, f64)>, // deltas
}

impl ResourceLedger {
    /// ICAres-1-scale initial stocks for a 14-day, 6-person mission.
    #[must_use]
    pub fn icares() -> Self {
        ResourceLedger {
            stock: [
                (Resource::Power, 1200.0),
                (Resource::Water, 900.0),
                (Resource::Oxygen, 160.0),
                (Resource::Food, 210.0), // 210k kcal ≈ 2500/person/day
            ],
            history: Vec::new(),
        }
    }

    /// Current stock.
    #[must_use]
    pub fn stock(&self, r: Resource) -> f64 {
        self.stock
            .iter()
            .find(|(x, _)| *x == r)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Consumes (negative delta) or replenishes (positive) a resource;
    /// stock floors at zero. Returns the new level.
    pub fn apply(&mut self, at: SimTime, r: Resource, delta: f64) -> f64 {
        for (x, v) in &mut self.stock {
            if *x == r {
                *v = (*v + delta).max(0.0);
                self.history.push((at, r, delta));
                return *v;
            }
        }
        0.0
    }

    /// Days of supply left at the given daily burn rate.
    #[must_use]
    pub fn days_left(&self, r: Resource, daily_burn: f64) -> f64 {
        if daily_burn <= 0.0 {
            f64::INFINITY
        } else {
            self.stock(r) / daily_burn
        }
    }

    /// Applies a rationing factor to a projected burn: the day-11 "extreme
    /// shortage" cuts food to under 500 kcal/person/day.
    #[must_use]
    pub fn rationed_burn(normal_daily: f64, factor: f64) -> f64 {
        normal_daily * factor
    }
}

/// Per-astronaut fluid balance from the three integrated modules.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FluidBalance {
    /// Intake via identified smart-mug events (L).
    intake_l: [f64; 6],
    /// Output via the identified urine-processor sessions (L).
    output_l: [f64; 6],
}

/// Dehydration warning threshold: net balance below this (L) over a day.
pub const DEHYDRATION_NET_L: f64 = -0.75;

impl FluidBalance {
    /// An empty daily balance.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A smart-mug drink event attributed to `who` by their badge's
    /// proximity to the mug.
    pub fn drink(&mut self, who: AstronautId, liters: f64) {
        self.intake_l[who.index()] += liters;
    }

    /// A urine-processor session attributed to `who`.
    pub fn void(&mut self, who: AstronautId, liters: f64) {
        self.output_l[who.index()] += liters;
    }

    /// Net fluid balance of one astronaut (intake − output − insensible
    /// losses).
    #[must_use]
    pub fn net_l(&self, who: AstronautId, insensible_l: f64) -> f64 {
        self.intake_l[who.index()] - self.output_l[who.index()] - insensible_l
    }

    /// Astronauts whose balance warrants a dehydration warning.
    #[must_use]
    pub fn dehydrated(&self, insensible_l: f64) -> Vec<AstronautId> {
        AstronautId::ALL
            .into_iter()
            .filter(|&a| self.net_l(a, insensible_l) < DEHYDRATION_NET_L)
            .collect()
    }

    /// Recovered water routed back to the ledger by the urine processor
    /// (87 % recovery, the ISS-class figure).
    #[must_use]
    pub fn recovered_water_l(&self) -> f64 {
        self.output_l.iter().sum::<f64>() * 0.87
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn ledger_tracks_stock_and_floors_at_zero() {
        let mut l = ResourceLedger::icares();
        let w0 = l.stock(Resource::Water);
        l.apply(t(0), Resource::Water, -50.0);
        assert_eq!(l.stock(Resource::Water), w0 - 50.0);
        l.apply(t(1), Resource::Water, -10_000.0);
        assert_eq!(l.stock(Resource::Water), 0.0);
    }

    #[test]
    fn days_left_projection() {
        let l = ResourceLedger::icares();
        // 210k kcal at 15k kcal/day (6 × 2500) = 14 days.
        let days = l.days_left(Resource::Food, 15.0);
        assert!((days - 14.0).abs() < 0.01);
        // Day-11 rationing: under 500 kcal/person = 3k/day.
        let rationed = ResourceLedger::rationed_burn(15.0, 0.2);
        assert!(l.days_left(Resource::Food, rationed) > 60.0);
        assert!(l.days_left(Resource::Food, 0.0).is_infinite());
    }

    #[test]
    fn fluid_balance_flags_dehydration() {
        let mut fb = FluidBalance::new();
        // Everyone drinks 2 L except D (0.5 L); everyone voids 1.2 L.
        for a in AstronautId::ALL {
            fb.drink(a, if a == AstronautId::D { 0.5 } else { 2.0 });
            fb.void(a, 1.2);
        }
        // Insensible losses 0.4 L: D nets 0.5-1.2-0.4 = −1.1 < −0.75.
        let flagged = fb.dehydrated(0.4);
        assert_eq!(flagged, vec![AstronautId::D]);
    }

    #[test]
    fn urine_processor_recovers_water() {
        let mut fb = FluidBalance::new();
        for a in AstronautId::ALL {
            fb.void(a, 1.0);
        }
        assert!((fb.recovered_water_l() - 5.22).abs() < 1e-9);
        // …which flows back into the ledger.
        let mut l = ResourceLedger::icares();
        let before = l.stock(Resource::Water);
        l.apply(t(0), Resource::Water, fb.recovered_water_l());
        assert!(l.stock(Resource::Water) > before);
    }
}
