//! The habitat message bus.
//!
//! "A habitat itself consists of many modules and pieces of equipment, which
//! are independent but have to be orchestrated to deliver certain
//! functionality." The bus is the orchestration fabric: topic-based
//! publish/subscribe between system units (sensor aggregators, analysis
//! units, alert sinks, the Earth-link gateway), built on crossbeam channels
//! so units can run on their own threads while tests drive them
//! synchronously.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A bus topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topic {
    /// Raw sensor observations.
    Sensors,
    /// Analysis results (occupancy, speech, meetings).
    Analysis,
    /// Alerts raised for the crew.
    Alerts,
    /// Traffic to/from mission control.
    EarthLink,
    /// System-management messages (heartbeats, takeovers, approvals).
    Control,
    /// Ingest-plane health: backpressure shedding, queue depths, failovers.
    Ingest,
    /// Fleet-scheduler health: shard scorecards, availability drills.
    Fleet,
}

impl Topic {
    /// All topics.
    pub const ALL: [Topic; 7] = [
        Topic::Sensors,
        Topic::Analysis,
        Topic::Alerts,
        Topic::EarthLink,
        Topic::Control,
        Topic::Ingest,
        Topic::Fleet,
    ];
}

/// A bus message: topic plus an opaque payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Publisher identity.
    pub from: String,
    /// Payload (JSON-encoded by convention; the bus does not interpret it).
    pub payload: String,
}

/// A handle for receiving messages of one subscription.
#[derive(Debug)]
pub struct Subscription {
    rx: Receiver<Message>,
}

impl Subscription {
    /// Non-blocking receive.
    #[must_use]
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }

    /// Drains everything currently queued.
    #[must_use]
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Number of queued messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

#[derive(Debug, Default)]
struct Inner {
    subscribers: HashMap<Topic, Vec<Sender<Message>>>,
    published: HashMap<Topic, u64>,
    /// Messages dropped because a bounded subscriber's queue was full.
    dropped: HashMap<Topic, u64>,
}

/// The shared bus. Cheap to clone (an `Arc` inside).
#[derive(Debug, Clone, Default)]
pub struct Bus {
    inner: Arc<RwLock<Inner>>,
}

impl Bus {
    /// Creates an empty bus.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes to a topic with an unbounded queue.
    #[must_use]
    pub fn subscribe(&self, topic: Topic) -> Subscription {
        let (tx, rx) = unbounded();
        self.inner
            .write()
            .subscribers
            .entry(topic)
            .or_default()
            .push(tx);
        Subscription { rx }
    }

    /// Subscribes to a topic with a queue holding at most `capacity`
    /// messages. When the queue is full, new messages for this subscriber
    /// are dropped and counted in [`Bus::dropped_count`] — a slow consumer
    /// sheds load visibly instead of stalling the habitat fabric or growing
    /// without bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn subscribe_bounded(&self, topic: Topic, capacity: usize) -> Subscription {
        let (tx, rx) = bounded(capacity);
        self.inner
            .write()
            .subscribers
            .entry(topic)
            .or_default()
            .push(tx);
        Subscription { rx }
    }

    /// Publishes to a topic; returns the number of subscribers reached.
    /// Dead subscriptions are pruned lazily; full bounded subscriptions
    /// count the loss instead of silently swallowing it.
    pub fn publish(&self, topic: Topic, message: Message) -> usize {
        let mut inner = self.inner.write();
        *inner.published.entry(topic).or_default() += 1;
        let mut delivered = 0;
        let mut dropped = 0u64;
        {
            let subs = inner.subscribers.entry(topic).or_default();
            subs.retain(|tx| match tx.try_send(message.clone()) {
                Ok(()) => {
                    delivered += 1;
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
                Err(TrySendError::Full(_)) => {
                    dropped += 1;
                    true
                }
            });
        }
        if dropped > 0 {
            *inner.dropped.entry(topic).or_default() += dropped;
        }
        delivered
    }

    /// Total messages ever published to a topic.
    #[must_use]
    pub fn published_count(&self, topic: Topic) -> u64 {
        *self.inner.read().published.get(&topic).unwrap_or(&0)
    }

    /// Messages dropped on a topic because a bounded subscriber was full.
    #[must_use]
    pub fn dropped_count(&self, topic: Topic) -> u64 {
        *self.inner.read().dropped.get(&topic).unwrap_or(&0)
    }

    /// Current subscriber count on a topic.
    #[must_use]
    pub fn subscriber_count(&self, topic: Topic) -> usize {
        self.inner
            .read()
            .subscribers
            .get(&topic)
            .map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: &str, payload: &str) -> Message {
        Message {
            from: from.to_string(),
            payload: payload.to_string(),
        }
    }

    #[test]
    fn fan_out_to_all_subscribers() {
        let bus = Bus::new();
        let a = bus.subscribe(Topic::Alerts);
        let b = bus.subscribe(Topic::Alerts);
        let delivered = bus.publish(Topic::Alerts, msg("engine", "dehydration:D"));
        assert_eq!(delivered, 2);
        assert_eq!(a.try_recv().unwrap().payload, "dehydration:D");
        assert_eq!(b.try_recv().unwrap().payload, "dehydration:D");
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn topics_are_isolated() {
        let bus = Bus::new();
        let alerts = bus.subscribe(Topic::Alerts);
        bus.publish(Topic::Sensors, msg("badge", "scan"));
        assert!(alerts.is_empty());
        assert_eq!(bus.published_count(Topic::Sensors), 1);
        assert_eq!(bus.published_count(Topic::Alerts), 0);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus = Bus::new();
        {
            let _tmp = bus.subscribe(Topic::Control);
            assert_eq!(bus.subscriber_count(Topic::Control), 1);
        }
        // Subscription dropped: next publish prunes it.
        let delivered = bus.publish(Topic::Control, msg("x", "y"));
        assert_eq!(delivered, 0);
        assert_eq!(bus.subscriber_count(Topic::Control), 0);
    }

    #[test]
    fn drain_collects_backlog() {
        let bus = Bus::new();
        let sub = bus.subscribe(Topic::Analysis);
        for i in 0..5 {
            bus.publish(Topic::Analysis, msg("pipeline", &format!("r{i}")));
        }
        let all = sub.drain();
        assert_eq!(all.len(), 5);
        assert_eq!(all[4].payload, "r4");
    }

    #[test]
    fn bounded_subscriber_sheds_load_and_counts_drops() {
        let bus = Bus::new();
        let slow = bus.subscribe_bounded(Topic::Sensors, 3);
        let fast = bus.subscribe(Topic::Sensors);
        for i in 0..10 {
            bus.publish(Topic::Sensors, msg("badge", &i.to_string()));
        }
        // The bounded queue kept the three oldest; the rest were dropped
        // and the loss is visible, not silent.
        assert_eq!(slow.len(), 3);
        assert_eq!(bus.dropped_count(Topic::Sensors), 7);
        assert_eq!(fast.drain().len(), 10, "unbounded peer sees everything");
        // Draining frees capacity for later publishes.
        let _ = slow.drain();
        bus.publish(Topic::Sensors, msg("badge", "fresh"));
        assert_eq!(slow.try_recv().unwrap().payload, "fresh");
        assert_eq!(bus.dropped_count(Topic::Sensors), 7);
        assert_eq!(bus.dropped_count(Topic::Alerts), 0);
    }

    #[test]
    fn bus_works_across_threads() {
        let bus = Bus::new();
        let sub = bus.subscribe(Topic::Sensors);
        let bus2 = bus.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                bus2.publish(Topic::Sensors, msg("t", &i.to_string()));
            }
        });
        handle.join().unwrap();
        assert_eq!(sub.drain().len(), 100);
    }
}
