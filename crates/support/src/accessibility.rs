//! Ability-based design of the habitat's interfaces.
//!
//! "One of those important though relatively neglected aspects is adjusting
//! the deployed technology to abilities of the crew, in general known as
//! ability-based design. … since the badges were identified with numbers
//! displayed on their e-ink screens, astronaut A accidentally swapped their
//! badge for one day with B. … we recommend that the whole habitat technology
//! provides accessibility support aimed at diverse human senses, with
//! informative light signals complemented by sounds, buttons corresponding to
//! voice commands and other solutions of this kind … embedded into wearable
//! elements of the system as detachable modules, optimizing energy use and
//! weight of devices."

use ares_crew::roster::{AstronautId, Roster};
use serde::{Deserialize, Serialize};

/// A sensory/motor capability level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Capability {
    /// Unusable for this person (or currently impeded, e.g. during an EVA).
    None,
    /// Usable with effort.
    Limited,
    /// Fully usable.
    Full,
}

/// A crew member's interface-relevant abilities. Abilities may be *situational*
/// ("during EVAs, the ability to see or speak is sometimes impeded"), so the
/// profile is a value type that scenarios can override per context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbilityProfile {
    /// Reading small displays (the e-ink badge number).
    pub vision: Capability,
    /// Hearing tones and voice prompts.
    pub hearing: Capability,
    /// Operating small buttons with fingers.
    pub dexterity: Capability,
}

impl AbilityProfile {
    /// Full abilities.
    #[must_use]
    pub fn full() -> Self {
        AbilityProfile {
            vision: Capability::Full,
            hearing: Capability::Full,
            dexterity: Capability::Full,
        }
    }

    /// The profile of a crew member per the roster (astronaut A is visually
    /// impaired with limited dexterity).
    #[must_use]
    pub fn of(roster: &Roster, id: AstronautId) -> Self {
        if roster.member(id).profile.impaired {
            AbilityProfile {
                vision: Capability::None,
                hearing: Capability::Full,
                dexterity: Capability::Limited,
            }
        } else {
            AbilityProfile::full()
        }
    }

    /// The EVA situational override: vision and speech channels degraded by
    /// the suit ("difficult conditions (e.g., no light source)").
    #[must_use]
    pub fn during_eva(self) -> Self {
        AbilityProfile {
            vision: self.vision.min(Capability::Limited),
            hearing: self.hearing,
            dexterity: self.dexterity.min(Capability::Limited),
        }
    }
}

/// An output/input modality a wearable module can provide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modality {
    /// The e-ink display (badge id, status).
    EInkDisplay,
    /// Informative light signals.
    Led,
    /// Sounds / buzzer.
    Buzzer,
    /// Spoken prompts ("voice announcement on docking").
    VoicePrompt,
    /// Physical buttons.
    Button,
    /// Voice commands (microphone input).
    VoiceCommand,
    /// Vibration.
    Haptic,
}

impl Modality {
    /// Power draw of the detachable module providing this modality (mW,
    /// amortized) — the optimization axis the paper calls out.
    #[must_use]
    pub fn power_mw(self) -> f64 {
        match self {
            Modality::EInkDisplay => 1.0, // only draws on refresh
            Modality::Led => 4.0,
            Modality::Buzzer => 6.0,
            Modality::VoicePrompt => 22.0,
            Modality::Button => 0.5,
            Modality::VoiceCommand => 18.0,
            Modality::Haptic => 9.0,
        }
    }

    /// Whether a person with `profile` can use this modality.
    #[must_use]
    pub fn usable_by(self, profile: &AbilityProfile) -> bool {
        match self {
            Modality::EInkDisplay => profile.vision == Capability::Full,
            Modality::Led => profile.vision >= Capability::Limited,
            Modality::Buzzer | Modality::VoicePrompt | Modality::VoiceCommand => {
                profile.hearing >= Capability::Limited
            }
            Modality::Button => profile.dexterity >= Capability::Limited,
            Modality::Haptic => true,
        }
    }
}

/// Selects the cheapest set of modalities that covers output *and* input for
/// a given ability profile.
///
/// Output coverage requires at least one usable output channel (display,
/// LED, buzzer, voice prompt or haptic); input coverage at least one of
/// button or voice command. Returns `None` only for a profile nothing can
/// serve (does not occur for human profiles).
#[must_use]
pub fn select_modalities(profile: &AbilityProfile) -> Option<Vec<Modality>> {
    const OUTPUTS: [Modality; 5] = [
        Modality::EInkDisplay,
        Modality::Led,
        Modality::Buzzer,
        Modality::VoicePrompt,
        Modality::Haptic,
    ];
    const INPUTS: [Modality; 2] = [Modality::Button, Modality::VoiceCommand];
    let cheapest = |options: &[Modality]| -> Option<Modality> {
        options
            .iter()
            .copied()
            .filter(|m| m.usable_by(profile))
            .min_by(|a, b| a.power_mw().partial_cmp(&b.power_mw()).expect("finite"))
    };
    let out = cheapest(&OUTPUTS)?;
    let input = cheapest(&INPUTS)?;
    let mut set = vec![out, input];
    // Identification needs an *identity-bearing* channel — the e-ink number,
    // a spoken announcement, or a coded vibration pattern. This is the fix
    // for the A↔B badge swap: A could not read the number, so A's badge must
    // announce itself another way.
    const IDENTITY: [Modality; 3] = [
        Modality::EInkDisplay,
        Modality::VoicePrompt,
        Modality::Haptic,
    ];
    if !set.iter().any(|m| IDENTITY.contains(m)) {
        // Identity is safety-critical: prefer fidelity (display > voice >
        // coded vibration) over power.
        let id_channel = IDENTITY.iter().copied().find(|m| m.usable_by(profile))?;
        set.push(id_channel);
    }
    set.dedup();
    Some(set)
}

/// Total module power of a modality set (mW).
#[must_use]
pub fn set_power_mw(set: &[Modality]) -> f64 {
    set.iter().map(|m| m.power_mw()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astronaut_a_gets_voice_identification() {
        let roster = Roster::icares();
        let a = AbilityProfile::of(&roster, AstronautId::A);
        let set = select_modalities(&a).expect("servable");
        assert!(
            set.contains(&Modality::VoicePrompt),
            "A cannot read the e-ink number; identity must be spoken: {set:?}"
        );
        assert!(!set.contains(&Modality::EInkDisplay));
        // Input is still possible (limited dexterity allows buttons).
        assert!(set.contains(&Modality::Button) || set.contains(&Modality::VoiceCommand));
    }

    #[test]
    fn sighted_crew_get_the_cheap_display_path() {
        let roster = Roster::icares();
        let b = AbilityProfile::of(&roster, AstronautId::B);
        let set = select_modalities(&b).expect("servable");
        assert!(set.contains(&Modality::EInkDisplay));
        // The sighted set must be cheaper than A's voice-based set.
        let a_set = select_modalities(&AbilityProfile::of(&roster, AstronautId::A)).unwrap();
        assert!(set_power_mw(&set) < set_power_mw(&a_set));
    }

    #[test]
    fn eva_override_degrades_vision_dependent_channels() {
        let full = AbilityProfile::full();
        let eva = full.during_eva();
        assert_eq!(eva.vision, Capability::Limited);
        assert!(!Modality::EInkDisplay.usable_by(&eva));
        assert!(Modality::Led.usable_by(&eva));
        // A servable set still exists during EVAs.
        assert!(select_modalities(&eva).is_some());
    }

    #[test]
    fn every_crew_profile_is_servable() {
        let roster = Roster::icares();
        for id in AstronautId::ALL {
            let p = AbilityProfile::of(&roster, id);
            let set = select_modalities(&p).expect("servable profile");
            assert!(set.iter().all(|m| m.usable_by(&p)), "{id}: {set:?}");
            // And it stays servable during an EVA.
            assert!(select_modalities(&p.during_eva()).is_some(), "{id} EVA");
        }
    }

    #[test]
    fn deaf_profile_falls_back_to_haptics() {
        let p = AbilityProfile {
            vision: Capability::None,
            hearing: Capability::None,
            dexterity: Capability::Full,
        };
        let set = select_modalities(&p).expect("haptics + buttons suffice");
        assert!(set.contains(&Modality::Haptic));
        assert!(set.contains(&Modality::Button));
        assert!(!set.contains(&Modality::VoicePrompt));
    }
}
