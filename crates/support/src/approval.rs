//! The change-approval protocol.
//!
//! "To protect the system from harmful changes introduced by disobedient
//! individuals, it might be worthwhile to require approvals from all the
//! teammates and the mission control before any significant change to the
//! system is applied." The protocol below implements that balance of power:
//! a proposed change needs a crew quorum **and** mission control's consent —
//! but because of the 20-minute latency, control's vote may take ≥ 40 min,
//! so an emergency path lets a unanimous crew override a silent Earth after
//! a timeout (never a *denied* Earth).

use crate::earthlink::ONE_WAY_DELAY;
use ares_crew::roster::AstronautId;
use ares_simkit::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A vote on a proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vote {
    /// In favour.
    Approve,
    /// Against.
    Reject,
}

/// The proposal's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Collecting votes.
    Pending,
    /// Applied: quorum plus control consent (or emergency override).
    Applied {
        /// Whether the emergency timeout path was used.
        emergency: bool,
    },
    /// Rejected (by crew or control) or expired.
    Rejected,
}

/// A proposed system change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Proposal {
    /// What would change.
    pub description: String,
    /// When it was proposed.
    pub proposed_at: SimTime,
    /// Crew votes so far.
    votes: Vec<(AstronautId, Vote)>,
    /// Mission control's vote, when it arrives (≥ 2 × one-way delay after
    /// proposing).
    control_vote: Option<Vote>,
    status: Status,
}

/// Protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApprovalRules {
    /// Minimum crew approvals.
    pub crew_quorum: usize,
    /// After this silence from Earth, a *unanimous* aboard crew may apply
    /// anyway (time-critical cases where "terrestrial assistance is not
    /// sufficient").
    pub emergency_timeout: SimDuration,
    /// Number of astronauts currently aboard (unanimity denominator).
    pub aboard: usize,
}

impl Default for ApprovalRules {
    fn default() -> Self {
        ApprovalRules {
            crew_quorum: 4,
            emergency_timeout: ONE_WAY_DELAY * 4, // two full round trips
            aboard: 6,
        }
    }
}

impl Proposal {
    /// Creates a pending proposal.
    #[must_use]
    pub fn new(description: impl Into<String>, proposed_at: SimTime) -> Self {
        Proposal {
            description: description.into(),
            proposed_at,
            votes: Vec::new(),
            control_vote: None,
            status: Status::Pending,
        }
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> Status {
        self.status
    }

    /// Records a crew vote (latest vote per astronaut wins).
    pub fn crew_vote(&mut self, who: AstronautId, vote: Vote) {
        self.votes.retain(|&(a, _)| a != who);
        self.votes.push((who, vote));
    }

    /// Records mission control's vote (arrives over the Earth link).
    pub fn control_vote(&mut self, vote: Vote) {
        self.control_vote = Some(vote);
    }

    /// Number of crew approvals.
    #[must_use]
    pub fn approvals(&self) -> usize {
        self.votes
            .iter()
            .filter(|&&(_, v)| v == Vote::Approve)
            .count()
    }

    /// Number of crew rejections.
    #[must_use]
    pub fn rejections(&self) -> usize {
        self.votes
            .iter()
            .filter(|&&(_, v)| v == Vote::Reject)
            .count()
    }

    /// Advances the protocol at `now`; returns the (possibly new) status.
    ///
    /// Safety invariants (property-tested):
    /// * never `Applied` without crew quorum;
    /// * never `Applied` when mission control voted `Reject`;
    /// * the emergency path fires only after the timeout, with a unanimous
    ///   aboard crew and a *silent* Earth.
    pub fn evaluate(&mut self, now: SimTime, rules: &ApprovalRules) -> Status {
        if self.status != Status::Pending {
            return self.status;
        }
        // Any explicit rejection by control kills the proposal.
        if self.control_vote == Some(Vote::Reject) {
            self.status = Status::Rejected;
            return self.status;
        }
        // A crew majority against also kills it.
        if self.rejections() > rules.aboard.saturating_sub(rules.crew_quorum) {
            self.status = Status::Rejected;
            return self.status;
        }
        let quorum = self.approvals() >= rules.crew_quorum;
        match self.control_vote {
            Some(Vote::Approve) if quorum => {
                self.status = Status::Applied { emergency: false };
            }
            None if quorum
                && self.approvals() == rules.aboard
                && now - self.proposed_at >= rules.emergency_timeout =>
            {
                self.status = Status::Applied { emergency: true };
            }
            _ => {}
        }
        self.status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AstronautId as Id;

    fn t(min: i64) -> SimTime {
        SimTime::from_secs(min * 60)
    }

    fn approve_all(p: &mut Proposal, ids: &[Id]) {
        for &id in ids {
            p.crew_vote(id, Vote::Approve);
        }
    }

    #[test]
    fn normal_path_needs_quorum_and_control() {
        let rules = ApprovalRules::default();
        let mut p = Proposal::new("raise mic sampling", t(0));
        approve_all(&mut p, &[Id::A, Id::B, Id::C]);
        assert_eq!(p.evaluate(t(10), &rules), Status::Pending, "3 < quorum 4");
        p.crew_vote(Id::D, Vote::Approve);
        assert_eq!(
            p.evaluate(t(10), &rules),
            Status::Pending,
            "control missing"
        );
        p.control_vote(Vote::Approve);
        assert_eq!(
            p.evaluate(t(45), &rules),
            Status::Applied { emergency: false }
        );
    }

    #[test]
    fn control_rejection_is_final() {
        let rules = ApprovalRules::default();
        let mut p = Proposal::new("disable privacy zone", t(0));
        approve_all(&mut p, &[Id::A, Id::B, Id::C, Id::D, Id::E, Id::F]);
        p.control_vote(Vote::Reject);
        assert_eq!(p.evaluate(t(500), &rules), Status::Rejected);
        // Even long after the emergency timeout.
        assert_eq!(p.evaluate(t(5000), &rules), Status::Rejected);
    }

    #[test]
    fn emergency_override_requires_unanimity_and_timeout() {
        let rules = ApprovalRules::default(); // timeout 80 min
        let mut p = Proposal::new("vent module 2", t(0));
        approve_all(&mut p, &[Id::A, Id::B, Id::C, Id::D, Id::E]);
        // 5 of 6: quorum met but not unanimous → never emergency-applies.
        assert_eq!(p.evaluate(t(200), &rules), Status::Pending);
        p.crew_vote(Id::F, Vote::Approve);
        // Unanimous but before the timeout → still pending.
        assert_eq!(p.evaluate(t(79), &rules), Status::Pending);
        assert_eq!(
            p.evaluate(t(81), &rules),
            Status::Applied { emergency: true }
        );
    }

    #[test]
    fn crew_majority_against_rejects() {
        let rules = ApprovalRules::default();
        let mut p = Proposal::new("reduce sensor duty cycle", t(0));
        for id in [Id::A, Id::B, Id::C] {
            p.crew_vote(id, Vote::Reject);
        }
        assert_eq!(p.evaluate(t(5), &rules), Status::Rejected);
    }

    #[test]
    fn revoting_replaces_previous_vote() {
        let rules = ApprovalRules {
            crew_quorum: 2,
            aboard: 3,
            ..Default::default()
        };
        let mut p = Proposal::new("x", t(0));
        p.crew_vote(Id::A, Vote::Reject);
        p.crew_vote(Id::A, Vote::Approve);
        p.crew_vote(Id::B, Vote::Approve);
        p.control_vote(Vote::Approve);
        assert_eq!(p.approvals(), 2);
        assert_eq!(p.rejections(), 0);
        assert_eq!(
            p.evaluate(t(50), &rules),
            Status::Applied { emergency: false }
        );
    }

    #[test]
    fn applied_status_is_sticky() {
        let rules = ApprovalRules {
            crew_quorum: 1,
            aboard: 1,
            ..Default::default()
        };
        let mut p = Proposal::new("y", t(0));
        p.crew_vote(Id::A, Vote::Approve);
        p.control_vote(Vote::Approve);
        let s = p.evaluate(t(1), &rules);
        assert!(matches!(s, Status::Applied { .. }));
        // A late control rejection cannot un-apply.
        p.control_vote(Vote::Reject);
        assert_eq!(p.evaluate(t(2), &rules), s);
    }
}
