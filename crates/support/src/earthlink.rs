//! The Mars–Earth link: 20-minute one-way delay, blackouts, and the
//! delayed-command conflict of mission day 12.
//!
//! "Communication was delayed by 20 min, reflecting possible Earth–Mars
//! latencies. … events on the twelfth day of ICAres-1, when delayed
//! instructions from the mission control contradicted the course of action
//! already taken by the crew", showed why "terrestrial assistance is not
//! sufficient in time-critical cases". The gateway therefore tracks, for
//! every inbound command, the *habitat state version* it was based on; a
//! command arriving after the habitat has already diverged is flagged as a
//! conflict and resolved by an explicit policy instead of being applied
//! blindly.

use ares_simkit::series::{Interval, IntervalSet};
use ares_simkit::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One-way Earth↔Mars latency used in ICAres-1.
pub const ONE_WAY_DELAY: SimDuration = SimDuration::from_mins(20);

/// A command from mission control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Monotone id assigned by mission control.
    pub id: u64,
    /// What to do (opaque to the gateway).
    pub directive: String,
    /// The habitat state version mission control had seen when issuing.
    pub based_on_version: u64,
}

/// Outcome of delivering a command to the habitat.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Delivery {
    /// Applied cleanly — the habitat had not diverged.
    Applied(Command),
    /// The habitat acted locally after the command's basis: a conflict.
    Conflict {
        /// The late command.
        command: Command,
        /// The habitat's version at arrival.
        local_version: u64,
    },
}

/// How conflicts are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictPolicy {
    /// The crew's local decision stands; the command is dropped and a report
    /// is queued to Earth (the post-incident recommendation).
    CrewWins,
    /// The command overrides local action (the day-12 behaviour that caused
    /// "surging stress levels").
    ControlWins,
}

/// A message in flight, due at `arrives_at`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct InFlight<T> {
    arrives_at: SimTime,
    item: T,
}

/// A reliable telemetry message awaiting acknowledgement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PendingTelemetry {
    seq: u64,
    payload: String,
    first_sent: SimTime,
    /// Attempts transmitted so far (≥ 1 once the first attempt fires).
    attempts: u32,
    /// When the next retransmission fires if no ack has landed by then.
    next_attempt_at: SimTime,
    /// Earth-side arrival times of attempts currently in flight.
    arrivals: Vec<SimTime>,
    /// Earliest habitat-side ack arrival among successful attempts.
    ack_at: Option<SimTime>,
}

/// Delivery counters of the reliable telemetry stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TelemetryStatus {
    /// Messages submitted via [`EarthLink::send_telemetry`].
    pub sent: u64,
    /// Unique messages that reached Earth.
    pub delivered: u64,
    /// Redundant arrivals suppressed on Earth (retransmit raced its ack).
    pub duplicates: u64,
    /// Attempts beyond each message's first transmission.
    pub retransmits: u64,
    /// Attempts destroyed in transit (loss windows / random loss).
    pub lost_attempts: u64,
    /// Messages still awaiting acknowledgement.
    pub pending: u64,
}

/// The habitat-side gateway of the Earth link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EarthLink {
    delay: SimDuration,
    blackouts: IntervalSet,
    policy: ConflictPolicy,
    inbound: VecDeque<InFlight<Command>>,
    outbound: VecDeque<InFlight<String>>,
    /// Habitat state version: bumped on every local (crew/system) action.
    local_version: u64,
    /// Deliveries performed, in order.
    deliveries: Vec<(SimTime, Delivery)>,
    /// Telemetry actually handed to Earth: `(sent_at_mars, received_at_earth,
    /// payload)`.
    received_on_earth: Vec<(SimTime, SimTime, String)>,
    /// Windows in which transmissions are destroyed (not merely delayed).
    loss_windows: IntervalSet,
    /// Per-attempt random loss probability, with its deterministic seed.
    loss_probability: f64,
    loss_seed: u64,
    /// Reliable telemetry: next sequence number and unacked messages.
    next_seq: u64,
    pending: Vec<PendingTelemetry>,
    /// Earth-side duplicate suppression: seqs already delivered (sorted).
    delivered_seqs: Vec<u64>,
    telemetry: TelemetryStatus,
}

impl EarthLink {
    /// Creates a link with the canonical 20-minute delay.
    #[must_use]
    pub fn new(policy: ConflictPolicy) -> Self {
        EarthLink {
            delay: ONE_WAY_DELAY,
            blackouts: IntervalSet::new(),
            policy,
            inbound: VecDeque::new(),
            outbound: VecDeque::new(),
            local_version: 0,
            deliveries: Vec::new(),
            received_on_earth: Vec::new(),
            loss_windows: IntervalSet::new(),
            loss_probability: 0.0,
            loss_seed: 0,
            next_seq: 0,
            pending: Vec::new(),
            delivered_seqs: Vec::new(),
            telemetry: TelemetryStatus::default(),
        }
    }

    /// Adds a communication blackout window (e.g. a solar conjunction or a
    /// ground-station gap); messages due inside it are held until it ends.
    pub fn add_blackout(&mut self, window: Interval) {
        self.blackouts.insert(window);
    }

    /// The habitat's current state version.
    #[must_use]
    pub fn local_version(&self) -> u64 {
        self.local_version
    }

    /// The crew (or the autonomous system) takes a local action: the state
    /// version advances, invalidating in-flight commands based on older
    /// state.
    pub fn local_action(&mut self, _now: SimTime, _description: &str) -> u64 {
        self.local_version += 1;
        self.local_version
    }

    /// Mission control sends a command at (Earth) time `now`.
    pub fn uplink(&mut self, now: SimTime, command: Command) {
        self.inbound.push_back(InFlight {
            arrives_at: self.deliverable_at(now + self.delay),
            item: command,
        });
    }

    /// The habitat sends telemetry/reports at (Mars) time `now`.
    ///
    /// Fire-and-forget: delayed by blackouts but never retried. Use
    /// [`EarthLink::send_telemetry`] for digests that must not be lost.
    pub fn downlink(&mut self, now: SimTime, payload: impl Into<String>) {
        self.outbound.push_back(InFlight {
            arrives_at: self.deliverable_at(now + self.delay),
            item: payload.into(),
        });
    }

    /// Adds a window in which transmissions are *destroyed* in transit (a
    /// lossy window, unlike a blackout which merely delays).
    pub fn add_loss_window(&mut self, window: Interval) {
        self.loss_windows.insert(window);
    }

    /// Enables seeded per-attempt random loss with probability `p`. The same
    /// seed yields the same losses — chaos runs stay replayable.
    pub fn set_random_loss(&mut self, p: f64, seed: u64) {
        self.loss_probability = p.clamp(0.0, 1.0);
        self.loss_seed = seed;
    }

    /// Submits a telemetry digest to the *reliable* stream: store-and-forward
    /// with a monotone sequence number, positive acknowledgement from Earth,
    /// bounded exponential-backoff retransmission and Earth-side duplicate
    /// suppression. Returns the assigned sequence number.
    pub fn send_telemetry(&mut self, now: SimTime, payload: impl Into<String>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.telemetry.sent += 1;
        self.pending.push(PendingTelemetry {
            seq,
            payload: payload.into(),
            first_sent: now,
            attempts: 0,
            next_attempt_at: now,
            arrivals: Vec::new(),
            ack_at: None,
        });
        seq
    }

    /// Current counters of the reliable telemetry stream.
    #[must_use]
    pub fn telemetry_status(&self) -> TelemetryStatus {
        TelemetryStatus {
            pending: self.pending.len() as u64,
            ..self.telemetry
        }
    }

    /// Retransmission timeout before attempt `attempts + 1`: one round trip
    /// plus margin, doubled per retry, capped (bounded backoff).
    fn rto(&self, attempts: u32) -> SimDuration {
        let base = self.delay * 2 + SimDuration::from_mins(5);
        base * i64::from(1u32 << attempts.saturating_sub(1).min(3))
    }

    /// Whether the attempt transmitted at `sent` as try `attempt` of `seq`
    /// is destroyed in transit.
    fn attempt_lost(&self, seq: u64, attempt: u32, sent: SimTime) -> bool {
        if self.loss_windows.contains(sent + self.delay) {
            return true;
        }
        if self.loss_probability <= 0.0 {
            return false;
        }
        let word = ares_simkit::rng::splitmix64(self.loss_seed ^ (seq << 16) ^ u64::from(attempt));
        let unit = (word >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.loss_probability
    }

    fn deliverable_at(&self, due: SimTime) -> SimTime {
        // Push past any blackout covering the due instant, then re-scan: the
        // displaced time may land inside a later (or overlapping) window and
        // must be pushed again until it settles on clear sky. The fixpoint
        // terminates because every step jumps to a window end and the set of
        // windows is finite.
        let mut t = due;
        while let Some(iv) = self.blackouts.covering(t) {
            t = iv.end;
        }
        t
    }

    /// Drives the reliable telemetry state machines up to `now`: fires due
    /// (re)transmissions, lands arrivals and acks, and schedules backoff.
    /// Event order is deterministic — `(time, acks-before-attempts, seq)` —
    /// so identical histories replay identically.
    fn pump_telemetry(&mut self, now: SimTime) {
        loop {
            // The earliest due event over all pending messages. Kind 0 =
            // Earth-side arrival of an in-flight attempt, kind 1 = ack
            // arrival (completes a message), kind 2 = (re)transmission.
            // Arrivals sort before acks at the same instant so a duplicate
            // landing exactly when its ack settles the message is still
            // observed on Earth.
            let mut next: Option<(SimTime, u8, u64, usize)> = None;
            for (idx, msg) in self.pending.iter().enumerate() {
                let consider =
                    |at: SimTime, kind: u8, best: &mut Option<(SimTime, u8, u64, usize)>| {
                        if at <= now
                            && best.is_none_or(|(t, k, s, _)| (at, kind, msg.seq) < (t, k, s))
                        {
                            *best = Some((at, kind, msg.seq, idx));
                        }
                    };
                for &a in &msg.arrivals {
                    consider(a, 0, &mut next);
                }
                if let Some(ack) = msg.ack_at {
                    consider(ack, 1, &mut next);
                }
                consider(msg.next_attempt_at, 2, &mut next);
            }
            let Some((at, kind, seq, idx)) = next else {
                break;
            };
            match kind {
                1 => {
                    // Ack received: the message is done.
                    self.pending.remove(idx);
                }
                0 => {
                    // The attempt lands on Earth; the ack starts home.
                    let ack_arrival = self.deliverable_at(at + self.delay);
                    let msg = &mut self.pending[idx];
                    // Remove exactly one copy: attempts displaced onto the
                    // same blackout end arrive as distinct (duplicate)
                    // packets and must each be observed.
                    if let Some(pos) = msg.arrivals.iter().position(|&a| a == at) {
                        msg.arrivals.remove(pos);
                    }
                    msg.ack_at = Some(msg.ack_at.map_or(ack_arrival, |a| a.min(ack_arrival)));
                    let (first_sent, payload) = (msg.first_sent, msg.payload.clone());
                    // Earth side: suppress duplicates by sequence number.
                    match self.delivered_seqs.binary_search(&seq) {
                        Ok(_) => self.telemetry.duplicates += 1,
                        Err(pos) => {
                            self.delivered_seqs.insert(pos, seq);
                            self.telemetry.delivered += 1;
                            self.received_on_earth.push((first_sent, at, payload));
                        }
                    }
                }
                _ => {
                    // Transmission attempt.
                    self.pending[idx].attempts += 1;
                    let attempts = self.pending[idx].attempts;
                    if attempts > 1 {
                        self.telemetry.retransmits += 1;
                    }
                    self.pending[idx].next_attempt_at = at + self.rto(attempts);
                    if self.attempt_lost(seq, attempts, at) {
                        self.telemetry.lost_attempts += 1;
                    } else {
                        let arrival = self.deliverable_at(at + self.delay);
                        self.pending[idx].arrivals.push(arrival);
                    }
                }
            }
        }
    }

    /// Advances the link to `now`, delivering everything due. Returns the
    /// new deliveries on the habitat side.
    pub fn advance(&mut self, now: SimTime) -> Vec<Delivery> {
        self.pump_telemetry(now);
        let mut out = Vec::new();
        // Mails may be queued out of order due to blackout displacement.
        let mut still_waiting = VecDeque::new();
        while let Some(f) = self.inbound.pop_front() {
            if f.arrives_at <= now {
                let delivery = if f.item.based_on_version < self.local_version {
                    Delivery::Conflict {
                        command: f.item,
                        local_version: self.local_version,
                    }
                } else {
                    self.local_version += 1;
                    Delivery::Applied(f.item)
                };
                if let Delivery::Conflict { command, .. } = &delivery {
                    match self.policy {
                        ConflictPolicy::CrewWins => {
                            self.downlink(
                                now,
                                format!(
                                    "CONFLICT-REPORT cmd {} dropped (stale basis v{})",
                                    command.id, command.based_on_version
                                ),
                            );
                        }
                        ConflictPolicy::ControlWins => {
                            // Forced through: the habitat resets to the
                            // command's world — the stressful day-12 path.
                            self.local_version += 1;
                        }
                    }
                }
                self.deliveries.push((now, delivery.clone()));
                out.push(delivery);
            } else {
                still_waiting.push_back(f);
            }
        }
        self.inbound = still_waiting;
        // Deliver telemetry to Earth.
        let mut waiting_out = VecDeque::new();
        while let Some(f) = self.outbound.pop_front() {
            if f.arrives_at <= now {
                self.received_on_earth
                    .push((f.arrives_at - self.delay, f.arrives_at, f.item));
            } else {
                waiting_out.push_back(f);
            }
        }
        self.outbound = waiting_out;
        out
    }

    /// All deliveries so far.
    #[must_use]
    pub fn deliveries(&self) -> &[(SimTime, Delivery)] {
        &self.deliveries
    }

    /// Telemetry received on Earth.
    #[must_use]
    pub fn received_on_earth(&self) -> &[(SimTime, SimTime, String)] {
        &self.received_on_earth
    }

    /// Conflicts seen so far.
    #[must_use]
    pub fn conflict_count(&self) -> usize {
        self.deliveries
            .iter()
            .filter(|(_, d)| matches!(d, Delivery::Conflict { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: u32, h: u32, m: u32) -> SimTime {
        SimTime::from_day_hms(day, h, m, 0)
    }

    fn cmd(id: u64, basis: u64) -> Command {
        Command {
            id,
            directive: format!("directive-{id}"),
            based_on_version: basis,
        }
    }

    #[test]
    fn commands_take_twenty_minutes() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        link.uplink(t(12, 10, 0), cmd(1, 0));
        assert!(link.advance(t(12, 10, 19)).is_empty());
        let arrived = link.advance(t(12, 10, 20));
        assert_eq!(arrived, vec![Delivery::Applied(cmd(1, 0))]);
    }

    #[test]
    fn day12_conflict_is_detected() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        // Mission control issues a command based on the state it last saw.
        link.uplink(t(12, 10, 0), cmd(7, 0));
        // Meanwhile the crew already took a different course of action.
        link.local_action(t(12, 10, 5), "crew reconfigured the experiment");
        let deliveries = link.advance(t(12, 10, 30));
        assert_eq!(link.conflict_count(), 1);
        match &deliveries[0] {
            Delivery::Conflict {
                command,
                local_version,
            } => {
                assert_eq!(command.id, 7);
                assert_eq!(*local_version, 1);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        // Crew-wins policy reports the drop back to Earth.
        link.advance(t(12, 11, 0));
        assert!(link
            .received_on_earth()
            .iter()
            .any(|(_, _, p)| p.contains("CONFLICT-REPORT cmd 7")));
    }

    #[test]
    fn control_wins_policy_forces_the_command() {
        let mut link = EarthLink::new(ConflictPolicy::ControlWins);
        link.uplink(t(12, 10, 0), cmd(9, 0));
        link.local_action(t(12, 10, 5), "local action");
        let v_before = link.local_version();
        link.advance(t(12, 10, 30));
        assert_eq!(link.conflict_count(), 1);
        assert!(link.local_version() > v_before, "override bumps state");
    }

    #[test]
    fn blackouts_postpone_delivery() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        link.add_blackout(Interval::new(t(5, 10, 0), t(5, 12, 0)));
        link.uplink(t(5, 9, 50), cmd(2, 0)); // due 10:10, inside blackout
        assert!(link.advance(t(5, 11, 0)).is_empty());
        let arrived = link.advance(t(5, 12, 0));
        assert_eq!(arrived.len(), 1);
    }

    #[test]
    fn displacement_rescans_back_to_back_blackouts() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        // Two windows added out of order; the first displacement lands the
        // message exactly on the seam, which sits inside the merged cover.
        link.add_blackout(Interval::new(t(5, 11, 0), t(5, 13, 0)));
        link.add_blackout(Interval::new(t(5, 10, 0), t(5, 11, 30)));
        link.uplink(t(5, 9, 50), cmd(2, 0)); // due 10:10, inside the cover
        assert!(link.advance(t(5, 12, 59)).is_empty(), "still covered");
        let arrived = link.advance(t(5, 13, 0));
        assert_eq!(arrived.len(), 1, "delivered only after the whole cover");
    }

    #[test]
    fn reliable_telemetry_survives_a_blackout() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        link.add_blackout(Interval::new(t(7, 10, 0), t(7, 12, 0)));
        link.send_telemetry(t(7, 10, 30), "digest-1");
        link.advance(t(7, 11, 59));
        assert_eq!(link.received_on_earth().len(), 0);
        link.advance(t(7, 14, 0));
        let status = link.telemetry_status();
        assert_eq!(status.delivered, 1);
        assert_eq!(status.pending, 0, "ack must land and settle the message");
    }

    #[test]
    fn lost_attempts_are_retried_until_acked() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        // Transit loss for the first hour: the initial attempt dies.
        link.add_loss_window(Interval::new(t(3, 8, 0), t(3, 9, 0)));
        link.send_telemetry(t(3, 8, 30), "digest");
        // RTO is 45 min: retry at 9:15 arrives 9:35, ack at 9:55.
        link.advance(t(3, 12, 0));
        let status = link.telemetry_status();
        assert_eq!(status.delivered, 1, "{status:?}");
        assert_eq!(status.lost_attempts, 1);
        assert_eq!(status.retransmits, 1);
        assert_eq!(status.pending, 0);
        assert_eq!(link.received_on_earth().len(), 1);
        let (_, received_at, _) = &link.received_on_earth()[0];
        assert_eq!(*received_at, t(3, 9, 35));
    }

    #[test]
    fn duplicate_arrivals_are_suppressed_on_earth() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        // Blackout delays the first attempt's *ack* long enough that a
        // retransmission fires; both copies arrive, Earth keeps one.
        link.add_blackout(Interval::new(t(4, 8, 30), t(4, 10, 0)));
        link.send_telemetry(t(4, 8, 0), "digest");
        link.advance(t(4, 12, 0));
        let status = link.telemetry_status();
        assert_eq!(status.delivered, 1);
        assert!(status.duplicates >= 1, "{status:?}");
        assert_eq!(status.pending, 0);
        assert_eq!(
            link.received_on_earth().len(),
            1,
            "duplicates must not reach the Earth-side consumer"
        );
    }

    #[test]
    fn random_loss_is_deterministic_and_eventually_delivered() {
        let run = || {
            let mut link = EarthLink::new(ConflictPolicy::CrewWins);
            link.set_random_loss(0.5, 0xC0FFEE);
            for i in 0..20u64 {
                link.send_telemetry(
                    t(2, 8, 0) + SimDuration::from_mins(i as i64 * 30),
                    format!("d{i}"),
                );
            }
            link.advance(t(4, 0, 0));
            (link.telemetry_status(), link.received_on_earth().to_vec())
        };
        let (s1, earth1) = run();
        let (s2, earth2) = run();
        assert_eq!(s1, s2, "same seed ⇒ same counters");
        assert_eq!(earth1, earth2);
        assert_eq!(s1.delivered, 20, "every digest eventually lands");
        assert_eq!(s1.pending, 0);
        assert!(s1.lost_attempts > 0, "p=0.5 must actually lose attempts");
    }

    #[test]
    fn telemetry_round_trip_takes_forty_minutes() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        link.downlink(t(3, 8, 0), "status nominal");
        link.advance(t(3, 8, 25));
        assert_eq!(link.received_on_earth().len(), 1);
        let (_, received_at, payload) = &link.received_on_earth()[0];
        assert_eq!(*received_at, t(3, 8, 20));
        assert_eq!(payload, "status nominal");
    }

    #[test]
    fn fresh_command_applies_cleanly_after_local_actions_are_seen() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        let v = link.local_action(t(2, 9, 0), "setup");
        // Control issues a command already aware of version v.
        link.uplink(t(2, 9, 30), cmd(3, v));
        let arrived = link.advance(t(2, 10, 0));
        assert_eq!(arrived.len(), 1);
        assert!(matches!(arrived[0], Delivery::Applied(_)));
        assert_eq!(link.conflict_count(), 0);
    }
}
