//! The Mars–Earth link: 20-minute one-way delay, blackouts, and the
//! delayed-command conflict of mission day 12.
//!
//! "Communication was delayed by 20 min, reflecting possible Earth–Mars
//! latencies. … events on the twelfth day of ICAres-1, when delayed
//! instructions from the mission control contradicted the course of action
//! already taken by the crew", showed why "terrestrial assistance is not
//! sufficient in time-critical cases". The gateway therefore tracks, for
//! every inbound command, the *habitat state version* it was based on; a
//! command arriving after the habitat has already diverged is flagged as a
//! conflict and resolved by an explicit policy instead of being applied
//! blindly.

use ares_simkit::series::{Interval, IntervalSet};
use ares_simkit::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One-way Earth↔Mars latency used in ICAres-1.
pub const ONE_WAY_DELAY: SimDuration = SimDuration::from_mins(20);

/// A command from mission control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Monotone id assigned by mission control.
    pub id: u64,
    /// What to do (opaque to the gateway).
    pub directive: String,
    /// The habitat state version mission control had seen when issuing.
    pub based_on_version: u64,
}

/// Outcome of delivering a command to the habitat.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Delivery {
    /// Applied cleanly — the habitat had not diverged.
    Applied(Command),
    /// The habitat acted locally after the command's basis: a conflict.
    Conflict {
        /// The late command.
        command: Command,
        /// The habitat's version at arrival.
        local_version: u64,
    },
}

/// How conflicts are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictPolicy {
    /// The crew's local decision stands; the command is dropped and a report
    /// is queued to Earth (the post-incident recommendation).
    CrewWins,
    /// The command overrides local action (the day-12 behaviour that caused
    /// "surging stress levels").
    ControlWins,
}

/// A message in flight, due at `arrives_at`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct InFlight<T> {
    arrives_at: SimTime,
    item: T,
}

/// The habitat-side gateway of the Earth link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EarthLink {
    delay: SimDuration,
    blackouts: IntervalSet,
    policy: ConflictPolicy,
    inbound: VecDeque<InFlight<Command>>,
    outbound: VecDeque<InFlight<String>>,
    /// Habitat state version: bumped on every local (crew/system) action.
    local_version: u64,
    /// Deliveries performed, in order.
    deliveries: Vec<(SimTime, Delivery)>,
    /// Telemetry actually handed to Earth: `(sent_at_mars, received_at_earth,
    /// payload)`.
    received_on_earth: Vec<(SimTime, SimTime, String)>,
}

impl EarthLink {
    /// Creates a link with the canonical 20-minute delay.
    #[must_use]
    pub fn new(policy: ConflictPolicy) -> Self {
        EarthLink {
            delay: ONE_WAY_DELAY,
            blackouts: IntervalSet::new(),
            policy,
            inbound: VecDeque::new(),
            outbound: VecDeque::new(),
            local_version: 0,
            deliveries: Vec::new(),
            received_on_earth: Vec::new(),
        }
    }

    /// Adds a communication blackout window (e.g. a solar conjunction or a
    /// ground-station gap); messages due inside it are held until it ends.
    pub fn add_blackout(&mut self, window: Interval) {
        self.blackouts.insert(window);
    }

    /// The habitat's current state version.
    #[must_use]
    pub fn local_version(&self) -> u64 {
        self.local_version
    }

    /// The crew (or the autonomous system) takes a local action: the state
    /// version advances, invalidating in-flight commands based on older
    /// state.
    pub fn local_action(&mut self, _now: SimTime, _description: &str) -> u64 {
        self.local_version += 1;
        self.local_version
    }

    /// Mission control sends a command at (Earth) time `now`.
    pub fn uplink(&mut self, now: SimTime, command: Command) {
        self.inbound.push_back(InFlight {
            arrives_at: self.deliverable_at(now + self.delay),
            item: command,
        });
    }

    /// The habitat sends telemetry/reports at (Mars) time `now`.
    pub fn downlink(&mut self, now: SimTime, payload: impl Into<String>) {
        self.outbound.push_back(InFlight {
            arrives_at: self.deliverable_at(now + self.delay),
            item: payload.into(),
        });
    }

    fn deliverable_at(&self, due: SimTime) -> SimTime {
        // Push past any blackout covering the due instant.
        let mut t = due;
        for iv in self.blackouts.intervals() {
            if iv.contains(t) {
                t = iv.end;
            }
        }
        t
    }

    /// Advances the link to `now`, delivering everything due. Returns the
    /// new deliveries on the habitat side.
    pub fn advance(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut out = Vec::new();
        // Mails may be queued out of order due to blackout displacement.
        let mut still_waiting = VecDeque::new();
        while let Some(f) = self.inbound.pop_front() {
            if f.arrives_at <= now {
                let delivery = if f.item.based_on_version < self.local_version {
                    Delivery::Conflict {
                        command: f.item,
                        local_version: self.local_version,
                    }
                } else {
                    self.local_version += 1;
                    Delivery::Applied(f.item)
                };
                if let Delivery::Conflict { command, .. } = &delivery {
                    match self.policy {
                        ConflictPolicy::CrewWins => {
                            self.downlink(
                                now,
                                format!(
                                    "CONFLICT-REPORT cmd {} dropped (stale basis v{})",
                                    command.id, command.based_on_version
                                ),
                            );
                        }
                        ConflictPolicy::ControlWins => {
                            // Forced through: the habitat resets to the
                            // command's world — the stressful day-12 path.
                            self.local_version += 1;
                        }
                    }
                }
                self.deliveries.push((now, delivery.clone()));
                out.push(delivery);
            } else {
                still_waiting.push_back(f);
            }
        }
        self.inbound = still_waiting;
        // Deliver telemetry to Earth.
        let mut waiting_out = VecDeque::new();
        while let Some(f) = self.outbound.pop_front() {
            if f.arrives_at <= now {
                self.received_on_earth
                    .push((f.arrives_at - self.delay, f.arrives_at, f.item));
            } else {
                waiting_out.push_back(f);
            }
        }
        self.outbound = waiting_out;
        out
    }

    /// All deliveries so far.
    #[must_use]
    pub fn deliveries(&self) -> &[(SimTime, Delivery)] {
        &self.deliveries
    }

    /// Telemetry received on Earth.
    #[must_use]
    pub fn received_on_earth(&self) -> &[(SimTime, SimTime, String)] {
        &self.received_on_earth
    }

    /// Conflicts seen so far.
    #[must_use]
    pub fn conflict_count(&self) -> usize {
        self.deliveries
            .iter()
            .filter(|(_, d)| matches!(d, Delivery::Conflict { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: u32, h: u32, m: u32) -> SimTime {
        SimTime::from_day_hms(day, h, m, 0)
    }

    fn cmd(id: u64, basis: u64) -> Command {
        Command {
            id,
            directive: format!("directive-{id}"),
            based_on_version: basis,
        }
    }

    #[test]
    fn commands_take_twenty_minutes() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        link.uplink(t(12, 10, 0), cmd(1, 0));
        assert!(link.advance(t(12, 10, 19)).is_empty());
        let arrived = link.advance(t(12, 10, 20));
        assert_eq!(arrived, vec![Delivery::Applied(cmd(1, 0))]);
    }

    #[test]
    fn day12_conflict_is_detected() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        // Mission control issues a command based on the state it last saw.
        link.uplink(t(12, 10, 0), cmd(7, 0));
        // Meanwhile the crew already took a different course of action.
        link.local_action(t(12, 10, 5), "crew reconfigured the experiment");
        let deliveries = link.advance(t(12, 10, 30));
        assert_eq!(link.conflict_count(), 1);
        match &deliveries[0] {
            Delivery::Conflict { command, local_version } => {
                assert_eq!(command.id, 7);
                assert_eq!(*local_version, 1);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        // Crew-wins policy reports the drop back to Earth.
        link.advance(t(12, 11, 0));
        assert!(link
            .received_on_earth()
            .iter()
            .any(|(_, _, p)| p.contains("CONFLICT-REPORT cmd 7")));
    }

    #[test]
    fn control_wins_policy_forces_the_command() {
        let mut link = EarthLink::new(ConflictPolicy::ControlWins);
        link.uplink(t(12, 10, 0), cmd(9, 0));
        link.local_action(t(12, 10, 5), "local action");
        let v_before = link.local_version();
        link.advance(t(12, 10, 30));
        assert_eq!(link.conflict_count(), 1);
        assert!(link.local_version() > v_before, "override bumps state");
    }

    #[test]
    fn blackouts_postpone_delivery() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        link.add_blackout(Interval::new(t(5, 10, 0), t(5, 12, 0)));
        link.uplink(t(5, 9, 50), cmd(2, 0)); // due 10:10, inside blackout
        assert!(link.advance(t(5, 11, 0)).is_empty());
        let arrived = link.advance(t(5, 12, 0));
        assert_eq!(arrived.len(), 1);
    }

    #[test]
    fn telemetry_round_trip_takes_forty_minutes() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        link.downlink(t(3, 8, 0), "status nominal");
        link.advance(t(3, 8, 25));
        assert_eq!(link.received_on_earth().len(), 1);
        let (_, received_at, payload) = &link.received_on_earth()[0];
        assert_eq!(*received_at, t(3, 8, 20));
        assert_eq!(payload, "status nominal");
    }

    #[test]
    fn fresh_command_applies_cleanly_after_local_actions_are_seen() {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        let v = link.local_action(t(2, 9, 0), "setup");
        // Control issues a command already aware of version v.
        link.uplink(t(2, 9, 30), cmd(3, v));
        let arrived = link.advance(t(2, 10, 0));
        assert_eq!(arrived.len(), 1);
        assert!(matches!(arrived[0], Delivery::Applied(_)));
        assert_eq!(link.conflict_count(), 0);
    }
}
