//! The alert rule engine.
//!
//! Section VI's support system should "measure fatigue, stress, and mood,
//! help prevent injuries and avoid conflicts", warn "astronauts against
//! dehydration", and surface that "familiarity with current sociometric
//! indicators could have motivated the crew to give extra attention during
//! group meetings to the most passive astronaut, D". The engine evaluates
//! those rules over the streaming per-day pipeline output.

use ares_crew::roster::AstronautId;
use ares_habitat::rooms::RoomId;
use ares_simkit::time::{SimDuration, SimTime};
use ares_sociometrics::pipeline::DayAnalysis;
use serde::{Deserialize, Serialize};

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational nudge.
    Info,
    /// Needs crew attention.
    Warning,
    /// Needs immediate action.
    Critical,
}

/// A raised alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// When it was raised.
    pub at: SimTime,
    /// Severity.
    pub severity: Severity,
    /// Rule that fired.
    pub rule: String,
    /// Affected astronaut, if specific.
    pub who: Option<AstronautId>,
    /// Human-readable detail.
    pub detail: String,
}

/// Tunable rule thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertRules {
    /// Longest acceptable span without a kitchen visit (dehydration risk).
    pub hydration_gap: SimDuration,
    /// Fraction of the crew-mean speech below which someone counts passive.
    pub passivity_ratio: f64,
    /// Meeting loudness above which a heated-conflict warning fires (dB).
    pub conflict_level_db: f64,
    /// Walking fraction below which fatigue is suspected (vs own baseline).
    pub fatigue_ratio: f64,
    /// Worn fraction below which a compliance nudge fires.
    pub wear_floor: f64,
}

impl Default for AlertRules {
    fn default() -> Self {
        AlertRules {
            hydration_gap: SimDuration::from_hours(5),
            passivity_ratio: 0.55,
            conflict_level_db: 75.0,
            fatigue_ratio: 0.5,
            wear_floor: 0.4,
        }
    }
}

/// The alert engine: stateful across days (baselines).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AlertEngine {
    rules: AlertRules,
    baseline_walking: [Option<f64>; 6],
    raised: Vec<Alert>,
}

impl AlertEngine {
    /// Creates an engine with the given rules.
    #[must_use]
    pub fn new(rules: AlertRules) -> Self {
        AlertEngine {
            rules,
            baseline_walking: [None; 6],
            raised: Vec::new(),
        }
    }

    /// All alerts raised so far.
    #[must_use]
    pub fn alerts(&self) -> &[Alert] {
        &self.raised
    }

    /// Evaluates one day of pipeline output; returns the alerts raised.
    pub fn evaluate_day(&mut self, day: &DayAnalysis) -> Vec<Alert> {
        let mut new_alerts = Vec::new();
        let day_end = SimTime::from_day_hms(day.day, 21, 0, 0);

        // Dehydration: long spans without a kitchen stay.
        for a in AstronautId::ALL {
            let Some(idx) = day.carrier_of[a.index()] else {
                continue;
            };
            let stays = &day.badges[idx].stays;
            let mut last_kitchen = SimTime::from_day_hms(day.day, 7, 0, 0);
            for s in stays {
                if s.room == RoomId::Kitchen {
                    last_kitchen = s.interval.end;
                } else if s.interval.end - last_kitchen > self.rules.hydration_gap {
                    new_alerts.push(Alert {
                        at: s.interval.end,
                        severity: Severity::Warning,
                        rule: "hydration".into(),
                        who: Some(a),
                        detail: format!(
                            "{a} has not visited the kitchen for over {}",
                            self.rules.hydration_gap
                        ),
                    });
                    last_kitchen = s.interval.end; // one alert per gap
                }
            }
        }

        // Passivity: speech far below the crew mean ("give extra attention
        // to the most passive astronaut").
        let fractions: Vec<(AstronautId, f64)> = AstronautId::ALL
            .iter()
            .filter_map(|&a| day.daily[a.index()].map(|d| (a, d.heard_fraction)))
            .collect();
        if fractions.len() >= 3 {
            let mean: f64 = fractions.iter().map(|&(_, f)| f).sum::<f64>() / fractions.len() as f64;
            if mean > 0.05 {
                for &(a, f) in &fractions {
                    if f < self.rules.passivity_ratio * mean {
                        new_alerts.push(Alert {
                            at: day_end,
                            severity: Severity::Info,
                            rule: "passivity".into(),
                            who: Some(a),
                            detail: format!(
                                "{a} engaged in conversation far less than the crew mean \
                                 ({f:.2} vs {mean:.2}); consider extra attention at the next briefing"
                            ),
                        });
                    }
                }
            }
        }

        // Conflict heat: unusually loud meetings.
        for m in &day.meetings {
            if m.mean_level_db > self.rules.conflict_level_db && m.participants.len() >= 2 {
                new_alerts.push(Alert {
                    at: m.interval.start,
                    severity: Severity::Warning,
                    rule: "conflict-loudness".into(),
                    who: None,
                    detail: format!(
                        "meeting in the {} reached {:.1} dB — possible heated exchange",
                        m.room, m.mean_level_db
                    ),
                });
            }
        }

        // Fatigue: walking collapsed against the astronaut's own baseline.
        for a in AstronautId::ALL {
            let Some(d) = &day.daily[a.index()] else {
                continue;
            };
            match self.baseline_walking[a.index()] {
                Some(base) if base > 1e-6 => {
                    if d.walking_fraction < self.rules.fatigue_ratio * base {
                        new_alerts.push(Alert {
                            at: day_end,
                            severity: Severity::Warning,
                            rule: "fatigue".into(),
                            who: Some(a),
                            detail: format!(
                                "{a}'s mobility dropped to {:.3} (baseline {:.3})",
                                d.walking_fraction, base
                            ),
                        });
                    }
                    // Exponential moving baseline.
                    self.baseline_walking[a.index()] = Some(0.8 * base + 0.2 * d.walking_fraction);
                }
                _ => self.baseline_walking[a.index()] = Some(d.walking_fraction),
            }
        }

        // Compliance: badge barely worn.
        for a in AstronautId::ALL {
            if let Some(d) = &day.daily[a.index()] {
                if d.worn_fraction < self.rules.wear_floor {
                    new_alerts.push(Alert {
                        at: day_end,
                        severity: Severity::Info,
                        rule: "wear-compliance".into(),
                        who: Some(a),
                        detail: format!(
                            "{a}'s badge was worn only {:.0} % of daytime",
                            d.worn_fraction * 100.0
                        ),
                    });
                }
            }
        }

        self.raised.extend(new_alerts.iter().cloned());
        new_alerts
    }

    /// Alerts of a given rule.
    #[must_use]
    pub fn of_rule(&self, rule: &str) -> Vec<&Alert> {
        self.raised.iter().filter(|a| a.rule == rule).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_simkit::series::Interval;
    use ares_sociometrics::occupancy::Stay;
    use ares_sociometrics::pipeline::AstronautDaily;

    fn daily(heard: f64, walking: f64, worn: f64) -> AstronautDaily {
        AstronautDaily {
            walking_fraction: walking,
            heard_fraction: heard,
            worn_fraction: worn,
            active_fraction: 0.9,
            self_talk_h: 1.0,
            worn_h: 9.0,
            walking_h: walking * 9.0,
            mean_accel_var: 0.05,
        }
    }

    fn empty_day(day: u32) -> DayAnalysis {
        DayAnalysis {
            day,
            badges: Vec::new(),
            carrier_of: [None; 6],
            meetings: Vec::new(),
            passages: ares_sociometrics::occupancy::PassageMatrix::new(),
            daily: [None; 6],
            swaps: Vec::new(),
            private_pairs: Vec::new(),
            climate_sums: [(0.0, 0); 10],
            reference_env: Vec::new(),
        }
    }

    #[test]
    fn passivity_flags_the_quiet_one() {
        let mut day = empty_day(5);
        for a in AstronautId::ALL {
            day.daily[a.index()] = Some(daily(
                if a == AstronautId::D { 0.08 } else { 0.4 },
                0.05,
                0.7,
            ));
        }
        let mut engine = AlertEngine::new(AlertRules::default());
        let alerts = engine.evaluate_day(&day);
        let passive: Vec<_> = alerts.iter().filter(|a| a.rule == "passivity").collect();
        assert_eq!(passive.len(), 1);
        assert_eq!(passive[0].who, Some(AstronautId::D));
    }

    #[test]
    fn fatigue_needs_a_baseline_first() {
        let mut engine = AlertEngine::new(AlertRules::default());
        let mut day1 = empty_day(3);
        day1.daily[0] = Some(daily(0.3, 0.06, 0.7));
        assert!(engine
            .evaluate_day(&day1)
            .iter()
            .all(|a| a.rule != "fatigue"));
        // Next day mobility collapses.
        let mut day2 = empty_day(4);
        day2.daily[0] = Some(daily(0.3, 0.01, 0.7));
        let alerts = engine.evaluate_day(&day2);
        assert!(alerts
            .iter()
            .any(|a| a.rule == "fatigue" && a.who == Some(AstronautId::A)));
    }

    #[test]
    fn loud_meeting_raises_conflict_warning() {
        let mut day = empty_day(9);
        day.meetings.push(ares_sociometrics::meetings::MeetingObs {
            room: RoomId::Main,
            interval: Interval::new(
                SimTime::from_day_hms(9, 14, 0, 0),
                SimTime::from_day_hms(9, 14, 20, 0),
            ),
            participants: vec![AstronautId::B, AstronautId::E],
            planned: false,
            speech_fraction: 0.8,
            mean_level_db: 76.5,
        });
        let mut engine = AlertEngine::new(AlertRules::default());
        let alerts = engine.evaluate_day(&day);
        assert!(alerts.iter().any(|a| a.rule == "conflict-loudness"));
    }

    #[test]
    fn wear_compliance_nudges() {
        let mut day = empty_day(13);
        day.daily[5] = Some(daily(0.3, 0.05, 0.3));
        let mut engine = AlertEngine::new(AlertRules::default());
        let alerts = engine.evaluate_day(&day);
        assert!(alerts
            .iter()
            .any(|a| a.rule == "wear-compliance" && a.who == Some(AstronautId::F)));
    }

    #[test]
    fn hydration_gap_detection() {
        let mut day = empty_day(6);
        // One long office stay with no kitchen: 07:00–14:00.
        let stays = vec![Stay {
            room: RoomId::Office,
            interval: Interval::new(
                SimTime::from_day_hms(6, 7, 0, 0),
                SimTime::from_day_hms(6, 14, 0, 0),
            ),
        }];
        day.badges.push(ares_sociometrics::pipeline::BadgeDay {
            badge: ares_badge::records::BadgeId(0),
            corr: ares_sociometrics::sync::SyncCorrection::identity(),
            track: Default::default(),
            wear: Default::default(),
            activity: Default::default(),
            speech: Default::default(),
            stays,
            identification: ares_sociometrics::anomaly::Identification {
                carrier: Some(AstronautId::A),
                score: 1.0,
                mismatch: false,
            },
        });
        day.carrier_of[0] = Some(0);
        let mut engine = AlertEngine::new(AlertRules::default());
        let alerts = engine.evaluate_day(&day);
        assert!(alerts
            .iter()
            .any(|a| a.rule == "hydration" && a.who == Some(AstronautId::A)));
    }
}
