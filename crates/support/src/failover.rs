//! Replicated analysis units with heartbeat failover.
//!
//! "Components of the habitat, and hence the system, may fail and thus have
//! to be replicated so that a partial failure or unavailability of some
//! functionality does not hinder the success of the entire mission."
//!
//! The model: a service (say, the localization unit) runs as a *primary*
//! with one or more *backups* in a fixed priority order. Every unit emits
//! heartbeats; a deterministic failure detector promotes the highest-priority
//! live unit when the primary misses its deadline. Promotion is sticky
//! (no flapping): a recovered unit rejoins as a backup.

use ares_simkit::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a replica of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(pub u8);

/// The role a replica currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Serving requests.
    Primary,
    /// Standing by, in priority order.
    Backup,
    /// Declared failed by the detector.
    Down,
}

/// A failover event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailoverEvent {
    /// A replica was declared failed.
    Failed(ReplicaId),
    /// A replica was promoted to primary.
    Promoted(ReplicaId),
    /// A previously failed replica rejoined as backup.
    Rejoined(ReplicaId),
    /// No live replica remains — total service outage. Emitted once at the
    /// start of an outage, not on every detector tick while it lasts.
    ServiceDown,
    /// A primary exists again after a total outage.
    ServiceRestored,
}

/// The failure detector + role manager of one replicated service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedService {
    name: String,
    heartbeat_deadline: SimDuration,
    replicas: Vec<(ReplicaId, Role, SimTime)>, // priority order; last heartbeat
    log: Vec<(SimTime, FailoverEvent)>,
    /// Whether the service is currently in a total outage (no primary and
    /// nothing promotable); gates the one-shot `ServiceDown` event.
    service_down: bool,
}

impl ReplicatedService {
    /// Creates a service with replicas in priority order; the first starts
    /// as primary. `heartbeat_deadline` is the silence span after which a
    /// replica is declared failed.
    ///
    /// # Panics
    ///
    /// Panics if no replicas are given.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        replicas: &[ReplicaId],
        heartbeat_deadline: SimDuration,
        now: SimTime,
    ) -> Self {
        assert!(!replicas.is_empty(), "service needs at least one replica");
        let replicas = replicas
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, if i == 0 { Role::Primary } else { Role::Backup }, now))
            .collect();
        ReplicatedService {
            name: name.into(),
            heartbeat_deadline,
            replicas,
            log: Vec::new(),
            service_down: false,
        }
    }

    /// The service name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current primary, if any replica is alive.
    #[must_use]
    pub fn primary(&self) -> Option<ReplicaId> {
        self.replicas
            .iter()
            .find(|(_, role, _)| *role == Role::Primary)
            .map(|&(id, _, _)| id)
    }

    /// A replica's current role.
    #[must_use]
    pub fn role_of(&self, id: ReplicaId) -> Option<Role> {
        self.replicas
            .iter()
            .find(|&&(r, _, _)| r == id)
            .map(|&(_, role, _)| role)
    }

    /// The failover event log.
    #[must_use]
    pub fn log(&self) -> &[(SimTime, FailoverEvent)] {
        &self.log
    }

    /// Records a heartbeat from a replica. A heartbeat from a `Down` replica
    /// re-admits it as a backup (lowest effective priority is preserved by
    /// its position).
    pub fn heartbeat(&mut self, id: ReplicaId, now: SimTime) {
        let mut rejoined = false;
        for (r, role, last) in &mut self.replicas {
            if *r == id {
                *last = now;
                if *role == Role::Down {
                    *role = Role::Backup;
                    rejoined = true;
                }
            }
        }
        if rejoined {
            self.log.push((now, FailoverEvent::Rejoined(id)));
            // A rejoin never demotes the current primary.
        }
    }

    /// Runs the failure detector at `now`; returns the events raised.
    pub fn tick(&mut self, now: SimTime) -> Vec<FailoverEvent> {
        let mut events = Vec::new();
        // Declare overdue replicas failed.
        for (id, role, last) in &mut self.replicas {
            if *role != Role::Down && now - *last > self.heartbeat_deadline {
                *role = Role::Down;
                events.push(FailoverEvent::Failed(*id));
            }
        }
        // Ensure exactly one primary among the living.
        let has_primary = self
            .replicas
            .iter()
            .any(|(_, role, _)| *role == Role::Primary);
        if !has_primary {
            if let Some((id, role, _)) = self
                .replicas
                .iter_mut()
                .find(|(_, role, _)| *role == Role::Backup)
            {
                *role = Role::Primary;
                events.push(FailoverEvent::Promoted(*id));
            } else if !self.service_down {
                self.service_down = true;
                events.push(FailoverEvent::ServiceDown);
            }
        }
        if self.service_down
            && self
                .replicas
                .iter()
                .any(|(_, role, _)| *role == Role::Primary)
        {
            self.service_down = false;
            events.push(FailoverEvent::ServiceRestored);
        }
        for &e in &events {
            self.log.push((now, e));
        }
        events
    }

    /// Whether the service can serve requests.
    #[must_use]
    pub fn is_available(&self) -> bool {
        self.primary().is_some()
    }
}

/// Replicated checkpoint store shared by a service's replicas.
///
/// The primary offers snapshots on a schedule; backups hold the latest
/// replicated copy. A promoted backup resumes from [`CheckpointVault::latest`]
/// and replays only the records since `taken_at` — the *replay gap* — instead
/// of losing the whole day. Ordering is enforced by the vault: an offer must
/// be **strictly newer** than the held snapshot or it is rejected. A lagging
/// replica (or a replayed replication message) re-offering an old — or
/// equal-time but stale — snapshot must never overwrite the established
/// state the next promotion will restore from.
#[derive(Debug, Clone)]
pub struct CheckpointVault<T> {
    latest: Option<(SimTime, T)>,
    offered: u64,
    rejected: u64,
}

impl<T> Default for CheckpointVault<T> {
    fn default() -> Self {
        CheckpointVault {
            latest: None,
            offered: 0,
            rejected: 0,
        }
    }
}

impl<T: Clone> CheckpointVault<T> {
    /// An empty vault.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Replicates a snapshot taken at `at`. Returns whether the vault
    /// accepted it: offers not strictly newer than [`CheckpointVault::latest`]
    /// are rejected (and counted), so out-of-order replication can never roll
    /// the vault back.
    pub fn offer(&mut self, at: SimTime, snapshot: T) -> bool {
        self.offered += 1;
        if self.latest.as_ref().is_none_or(|&(t, _)| at > t) {
            self.latest = Some((at, snapshot));
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// The newest replicated snapshot, if any.
    #[must_use]
    pub fn latest(&self) -> Option<(SimTime, &T)> {
        self.latest.as_ref().map(|(t, s)| (*t, s))
    }

    /// Snapshots offered over the vault's life.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Offers rejected for being no newer than the held snapshot.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The replay gap a promotion at `now` would incur: time since the last
    /// replicated snapshot, or `None` while the vault is empty.
    #[must_use]
    pub fn replay_gap(&self, now: SimTime) -> Option<SimDuration> {
        self.latest.as_ref().map(|&(t, _)| now - t)
    }
}

/// Closed-form CTMC availability of a `replicas`-way replicated service.
///
/// Each replica is an independent two-state continuous-time Markov chain
/// (up with mean sojourn `mean_up`, down with mean sojourn `mean_down`;
/// failure rate λ = 1/mean_up, repair rate μ = 1/mean_down). Steady-state
/// per-replica availability is a = μ/(λ+μ) = mean_up/(mean_up+mean_down),
/// and the service is up while **any** replica is up:
/// `A = 1 − (1 − a)^replicas`.
#[must_use]
pub fn ctmc_availability(mean_up: SimDuration, mean_down: SimDuration, replicas: u32) -> f64 {
    if replicas == 0 {
        return 0.0;
    }
    let up = mean_up.as_secs_f64();
    let down = mean_down.as_secs_f64();
    if up <= 0.0 {
        return 0.0;
    }
    if down <= 0.0 {
        return 1.0;
    }
    let a = up / (up + down);
    1.0 - (1.0 - a).powi(i32::try_from(replicas).unwrap_or(i32::MAX))
}

/// Availability estimate of one fleet shard's replicated analysis service:
/// a seeded renewal-process drill observed through the real failure
/// detector, against the closed-form CTMC model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardAvailability {
    /// The shard index.
    pub shard: usize,
    /// Replica count.
    pub replicas: u32,
    /// Fraction of detector ticks with a serving primary.
    pub observed: f64,
    /// The CTMC steady-state prediction ([`ctmc_availability`]).
    pub model: f64,
    /// Promotions the detector performed over the drill.
    pub failovers: u64,
    /// Total outages (every replica down simultaneously).
    pub outages: u64,
}

/// Drills one shard's replicated service against seeded exponential up/down
/// cycles and reports observed vs. modelled availability.
///
/// Each replica alternates exponentially-distributed up and down sojourns
/// (inverse-CDF sampling from its own [`SeedTree`] stream, so the drill is
/// bit-deterministic per `(seed, shard, replica)`). Replicas that are up
/// heartbeat every `tick_every` of simulated time; the detector runs on the
/// same cadence with a deadline of 2.5 ticks. The observed availability
/// trails the CTMC model slightly — the detector needs a missed deadline to
/// declare a failure — which is exactly the gap the drill exists to expose.
///
/// [`SeedTree`]: ares_simkit::rng::SeedTree
#[must_use]
pub fn drill_shard_availability(
    seed: u64,
    shard: usize,
    replicas: u32,
    mean_up: SimDuration,
    mean_down: SimDuration,
    horizon: SimDuration,
    tick_every: SimDuration,
) -> ShardAvailability {
    use ares_simkit::rng::SeedTree;
    use rand::Rng;
    let replicas = replicas.clamp(1, 12);
    let tick_every = if tick_every.as_micros() > 0 {
        tick_every
    } else {
        SimDuration::from_secs(30)
    };
    let tree = SeedTree::new(seed).child("fleet-availability");
    let horizon_s = horizon.as_secs_f64().max(tick_every.as_secs_f64());

    // Per-replica alternating up/down renewal schedule over the horizon:
    // the up spans, in order.
    let up_spans: Vec<Vec<(f64, f64)>> = (0..replicas)
        .map(|r| {
            let mut rng = tree.stream_indexed(&format!("shard{shard:03}/replica"), u64::from(r));
            let mut spans = Vec::new();
            let mut t = 0.0f64;
            let mut up = true;
            while t < horizon_s {
                let mean = if up {
                    mean_up.as_secs_f64()
                } else {
                    mean_down.as_secs_f64()
                }
                .max(1e-6);
                let u: f64 = rng.gen();
                let sojourn = -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln();
                if up {
                    spans.push((t, (t + sojourn).min(horizon_s)));
                }
                t += sojourn;
                up = !up;
            }
            spans
        })
        .collect();
    let is_up = |r: usize, at_s: f64| -> bool {
        up_spans[r]
            .iter()
            .take_while(|&&(start, _)| start <= at_s)
            .any(|&(_, end)| at_s < end)
    };

    let ids: Vec<ReplicaId> = (0..replicas).map(|r| ReplicaId(r as u8)).collect();
    let deadline = SimDuration::from_micros(tick_every.as_micros() * 5 / 2);
    let mut svc = ReplicatedService::new(
        format!("fleet-shard{shard:03}"),
        &ids,
        deadline,
        SimTime::from_secs(0),
    );
    let mut ticks = 0u64;
    let mut up_ticks = 0u64;
    let mut now = SimTime::from_secs(0);
    loop {
        now += tick_every;
        if now.as_secs_f64() > horizon_s {
            break;
        }
        let at_s = now.as_secs_f64();
        for (r, &id) in ids.iter().enumerate() {
            if is_up(r, at_s) {
                svc.heartbeat(id, now);
            }
        }
        svc.tick(now);
        ticks += 1;
        if svc.is_available() {
            up_ticks += 1;
        }
    }
    let failovers = svc
        .log()
        .iter()
        .filter(|(_, e)| matches!(e, FailoverEvent::Promoted(_)))
        .count() as u64;
    let outages = svc
        .log()
        .iter()
        .filter(|(_, e)| matches!(e, FailoverEvent::ServiceDown))
        .count() as u64;
    ShardAvailability {
        shard,
        replicas,
        observed: if ticks > 0 {
            up_ticks as f64 / ticks as f64
        } else {
            0.0
        },
        model: ctmc_availability(mean_up, mean_down, replicas),
        failovers,
        outages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn service() -> ReplicatedService {
        ReplicatedService::new(
            "localization",
            &[ReplicaId(0), ReplicaId(1), ReplicaId(2)],
            SimDuration::from_secs(10),
            t(0),
        )
    }

    #[test]
    fn primary_survives_with_heartbeats() {
        let mut s = service();
        for i in 1..20 {
            s.heartbeat(ReplicaId(0), t(i));
            s.heartbeat(ReplicaId(1), t(i));
            s.heartbeat(ReplicaId(2), t(i));
            assert!(s.tick(t(i)).is_empty());
        }
        assert_eq!(s.primary(), Some(ReplicaId(0)));
    }

    #[test]
    fn silent_primary_fails_over_to_next_backup() {
        let mut s = service();
        // Backups keep beating; primary goes silent.
        for i in 1..=15 {
            s.heartbeat(ReplicaId(1), t(i));
            s.heartbeat(ReplicaId(2), t(i));
        }
        let events = s.tick(t(15));
        assert!(events.contains(&FailoverEvent::Failed(ReplicaId(0))));
        assert!(events.contains(&FailoverEvent::Promoted(ReplicaId(1))));
        assert_eq!(s.primary(), Some(ReplicaId(1)));
        assert_eq!(s.role_of(ReplicaId(0)), Some(Role::Down));
    }

    #[test]
    fn cascading_failures_reach_last_replica_then_outage() {
        let mut s = service();
        // Nobody heartbeats: everyone fails at once, nothing promotable.
        let events = s.tick(t(60));
        assert!(events.contains(&FailoverEvent::Failed(ReplicaId(0))));
        assert!(events.contains(&FailoverEvent::Failed(ReplicaId(1))));
        assert!(events.contains(&FailoverEvent::Failed(ReplicaId(2))));
        assert!(events.contains(&FailoverEvent::ServiceDown));
        assert!(!s.is_available());
    }

    #[test]
    fn outage_logged_once_and_restoration_announced() {
        let mut s = service();
        // Nobody heartbeats: total outage at t=60.
        let events = s.tick(t(60));
        assert_eq!(
            events
                .iter()
                .filter(|&&e| e == FailoverEvent::ServiceDown)
                .count(),
            1
        );
        // The detector keeps running during the outage — no log spam.
        for i in 61..=120 {
            assert!(s.tick(t(i)).is_empty(), "tick {i} re-raised the outage");
        }
        assert_eq!(
            s.log()
                .iter()
                .filter(|&&(_, e)| e == FailoverEvent::ServiceDown)
                .count(),
            1,
            "ServiceDown must be one event per outage"
        );
        // A replica recovers: promotion + restoration, exactly once.
        s.heartbeat(ReplicaId(1), t(121));
        let events = s.tick(t(121));
        assert!(events.contains(&FailoverEvent::Promoted(ReplicaId(1))));
        assert!(events.contains(&FailoverEvent::ServiceRestored));
        assert!(s.is_available());
        // A second outage raises ServiceDown again.
        let events = s.tick(t(200));
        assert!(events.contains(&FailoverEvent::ServiceDown));
        assert_eq!(
            s.log()
                .iter()
                .filter(|&&(_, e)| e == FailoverEvent::ServiceDown)
                .count(),
            2
        );
    }

    #[test]
    fn vault_keeps_newest_snapshot_and_measures_replay_gap() {
        let mut vault: CheckpointVault<String> = CheckpointVault::new();
        assert!(vault.latest().is_none());
        assert!(vault.replay_gap(t(10)).is_none());
        assert!(vault.offer(t(10), "early".into()));
        assert!(vault.offer(t(30), "late".into()));
        assert!(!vault.offer(t(20), "stale".into())); // out-of-order replication
        let (at, snap) = vault.latest().expect("non-empty");
        assert_eq!(at, t(30));
        assert_eq!(snap, "late");
        assert_eq!(vault.offered(), 3);
        assert_eq!(vault.rejected(), 1);
        assert_eq!(vault.replay_gap(t(45)), Some(SimDuration::from_secs(15)));
    }

    #[test]
    fn vault_rejects_offers_no_newer_than_latest() {
        // The lagging-replica hazard: after the vault holds t=30, nothing at
        // or before t=30 may replace it — not even an equal-time offer with
        // different (older) content.
        let mut vault: CheckpointVault<&'static str> = CheckpointVault::new();
        assert!(vault.offer(t(30), "established"));
        assert!(!vault.offer(t(30), "lagging-replica"), "equal-time offer");
        assert!(!vault.offer(t(29), "older"), "strictly older offer");
        let (at, snap) = vault.latest().expect("non-empty");
        assert_eq!((at, *snap), (t(30), "established"));
        assert_eq!(vault.rejected(), 2);
        // Strictly newer offers still advance the vault.
        assert!(vault.offer(t(31), "newer"));
        assert_eq!(vault.latest().map(|(a, s)| (a, *s)), Some((t(31), "newer")));
    }

    #[test]
    fn ctmc_availability_closed_form() {
        // a = 0.9 per replica.
        let up = SimDuration::from_secs(900);
        let down = SimDuration::from_secs(100);
        assert!((ctmc_availability(up, down, 1) - 0.9).abs() < 1e-12);
        assert!((ctmc_availability(up, down, 2) - 0.99).abs() < 1e-12);
        assert!((ctmc_availability(up, down, 3) - 0.999).abs() < 1e-12);
        // Degenerate shapes stay in [0, 1].
        assert_eq!(ctmc_availability(up, down, 0), 0.0);
        assert_eq!(ctmc_availability(SimDuration::from_secs(0), down, 2), 0.0);
        assert_eq!(ctmc_availability(up, SimDuration::from_secs(0), 2), 1.0);
    }

    #[test]
    fn shard_drill_is_deterministic_and_tracks_the_model() {
        let drill = || {
            drill_shard_availability(
                42,
                3,
                3,
                SimDuration::from_hours(8),
                SimDuration::from_mins(20),
                SimDuration::from_days(30),
                SimDuration::from_secs(30),
            )
        };
        let a = drill();
        let b = drill();
        assert_eq!(a, b, "drill must be bit-deterministic");
        assert_eq!(a.shard, 3);
        assert_eq!(a.replicas, 3);
        assert!(
            a.observed > 0.9 && a.observed <= 1.0,
            "observed {}",
            a.observed
        );
        assert!(a.model > 0.99, "model {}", a.model);
        // The detector's declare-latency means observed availability can only
        // trail the instantaneous-model ceiling by a small margin.
        assert!(
            a.model - a.observed < 0.05,
            "observed {} too far below model {}",
            a.observed,
            a.model
        );
        // A month with ~3 failures/replica/day must exercise failover.
        assert!(a.failovers > 0);
    }

    #[test]
    fn more_replicas_never_hurt_availability() {
        let up = SimDuration::from_hours(4);
        let down = SimDuration::from_mins(30);
        let horizon = SimDuration::from_days(20);
        let tick = SimDuration::from_secs(30);
        let one = drill_shard_availability(7, 0, 1, up, down, horizon, tick);
        let three = drill_shard_availability(7, 0, 3, up, down, horizon, tick);
        assert!(three.model > one.model);
        assert!(
            three.observed >= one.observed,
            "3-way {} vs 1-way {}",
            three.observed,
            one.observed
        );
    }

    #[test]
    fn recovered_replica_rejoins_without_demoting_new_primary() {
        let mut s = service();
        for i in 1..=15 {
            s.heartbeat(ReplicaId(1), t(i));
            s.heartbeat(ReplicaId(2), t(i));
        }
        s.tick(t(15));
        assert_eq!(s.primary(), Some(ReplicaId(1)));
        // Replica 0 comes back.
        s.heartbeat(ReplicaId(0), t(16));
        s.tick(t(16));
        assert_eq!(s.primary(), Some(ReplicaId(1)), "no flapping");
        assert_eq!(s.role_of(ReplicaId(0)), Some(Role::Backup));
        assert!(s
            .log()
            .iter()
            .any(|&(_, e)| e == FailoverEvent::Rejoined(ReplicaId(0))));
        // If the new primary later dies, the recovered one takes over.
        for i in 17..=40 {
            s.heartbeat(ReplicaId(0), t(i));
            s.heartbeat(ReplicaId(2), t(i));
        }
        let ev = s.tick(t(40));
        assert!(ev.contains(&FailoverEvent::Promoted(ReplicaId(0))));
    }
}
