//! Privacy zones and the sensor duty-cycle governor.
//!
//! "The astronauts may intensify sensor measurements when they are alarmed
//! by anything unusual or temporarily disable some functionalities in
//! privacy-sensitive situations. The habitat system, which is inherently
//! ubiquitous and intruding, could be then perceived as more acceptable by
//! the crew themselves." Every decision is written to an audit log — the
//! paper's trust problem is addressed by making the system's behaviour
//! inspectable.

use ares_habitat::rooms::RoomId;
use ares_simkit::series::{Interval, IntervalSet};
use ares_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// A sensor class whose operation the governor can gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorClass {
    /// Microphone feature extraction.
    Microphone,
    /// Indoor localization (BLE scanning).
    Localization,
    /// Inertial sampling.
    Inertial,
    /// Environmental sampling.
    Environmental,
}

/// Sampling intensity directed by the governor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DutyLevel {
    /// Sensor off.
    Off,
    /// Reduced rate.
    Reduced,
    /// Normal operation.
    Normal,
    /// Boosted ("intensify sensor measurements when alarmed").
    Intensified,
}

/// An audit-log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// When.
    pub at: SimTime,
    /// Who requested it ("system", "crew:A", "mission-control").
    pub actor: String,
    /// What was decided.
    pub decision: String,
}

/// The privacy governor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyGovernor {
    /// Rooms where microphones never run (standing policy).
    mic_forbidden: Vec<RoomId>,
    /// Temporary per-sensor suppression windows.
    suppressed: Vec<(SensorClass, IntervalSet)>,
    /// Temporary intensification windows.
    intensified: Vec<(SensorClass, IntervalSet)>,
    audit: Vec<AuditEntry>,
}

impl Default for PrivacyGovernor {
    fn default() -> Self {
        PrivacyGovernor::icares()
    }
}

impl PrivacyGovernor {
    /// The ICAres-1 standing policy: no audio in the restroom or bedroom,
    /// ever ("video and audio recording in the habitat was prohibited" in
    /// general; feature extraction was allowed except in the most sensitive
    /// spaces).
    #[must_use]
    pub fn icares() -> Self {
        PrivacyGovernor {
            mic_forbidden: vec![RoomId::Restroom, RoomId::Bedroom],
            suppressed: Vec::new(),
            intensified: Vec::new(),
            audit: Vec::new(),
        }
    }

    /// The audit log.
    #[must_use]
    pub fn audit(&self) -> &[AuditEntry] {
        &self.audit
    }

    /// A crew member or the system suppresses a sensor class for a window.
    pub fn suppress(&mut self, actor: impl Into<String>, sensor: SensorClass, window: Interval) {
        let actor = actor.into();
        self.audit.push(AuditEntry {
            at: window.start,
            actor: actor.clone(),
            decision: format!("suppress {sensor:?} until {}", window.end),
        });
        match self.suppressed.iter_mut().find(|(s, _)| *s == sensor) {
            Some((_, set)) => set.insert(window),
            None => {
                let mut set = IntervalSet::new();
                set.insert(window);
                self.suppressed.push((sensor, set));
            }
        }
    }

    /// Intensifies a sensor class for a window ("when alarmed by anything
    /// unusual").
    pub fn intensify(&mut self, actor: impl Into<String>, sensor: SensorClass, window: Interval) {
        let actor = actor.into();
        self.audit.push(AuditEntry {
            at: window.start,
            actor,
            decision: format!("intensify {sensor:?} until {}", window.end),
        });
        match self.intensified.iter_mut().find(|(s, _)| *s == sensor) {
            Some((_, set)) => set.insert(window),
            None => {
                let mut set = IntervalSet::new();
                set.insert(window);
                self.intensified.push((sensor, set));
            }
        }
    }

    /// The duty level of a sensor at an instant in a room. Suppression wins
    /// over intensification; standing room policy wins over everything.
    #[must_use]
    pub fn duty(&self, sensor: SensorClass, room: RoomId, at: SimTime) -> DutyLevel {
        if sensor == SensorClass::Microphone && self.mic_forbidden.contains(&room) {
            return DutyLevel::Off;
        }
        if self
            .suppressed
            .iter()
            .any(|(s, set)| *s == sensor && set.contains(at))
        {
            return DutyLevel::Off;
        }
        if self
            .intensified
            .iter()
            .any(|(s, set)| *s == sensor && set.contains(at))
        {
            return DutyLevel::Intensified;
        }
        DutyLevel::Normal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn standing_policy_silences_restroom_mics() {
        let g = PrivacyGovernor::icares();
        assert_eq!(
            g.duty(SensorClass::Microphone, RoomId::Restroom, t(0)),
            DutyLevel::Off
        );
        assert_eq!(
            g.duty(SensorClass::Microphone, RoomId::Bedroom, t(0)),
            DutyLevel::Off
        );
        assert_eq!(
            g.duty(SensorClass::Microphone, RoomId::Kitchen, t(0)),
            DutyLevel::Normal
        );
        // Localization still works in the restroom (safety).
        assert_eq!(
            g.duty(SensorClass::Localization, RoomId::Restroom, t(0)),
            DutyLevel::Normal
        );
    }

    #[test]
    fn temporary_suppression_expires() {
        let mut g = PrivacyGovernor::icares();
        g.suppress(
            "crew:E",
            SensorClass::Localization,
            Interval::new(t(100), t(200)),
        );
        assert_eq!(
            g.duty(SensorClass::Localization, RoomId::Biolab, t(150)),
            DutyLevel::Off
        );
        assert_eq!(
            g.duty(SensorClass::Localization, RoomId::Biolab, t(250)),
            DutyLevel::Normal
        );
        assert_eq!(g.audit().len(), 1);
        assert_eq!(g.audit()[0].actor, "crew:E");
    }

    #[test]
    fn suppression_beats_intensification() {
        let mut g = PrivacyGovernor::icares();
        let w = Interval::new(t(0), t(100));
        g.intensify("system", SensorClass::Inertial, w);
        g.suppress("crew:A", SensorClass::Inertial, w);
        assert_eq!(
            g.duty(SensorClass::Inertial, RoomId::Office, t(50)),
            DutyLevel::Off
        );
    }

    #[test]
    fn intensification_window_works() {
        let mut g = PrivacyGovernor::icares();
        g.intensify(
            "mission-control",
            SensorClass::Environmental,
            Interval::new(t(10), t(20)),
        );
        assert_eq!(
            g.duty(SensorClass::Environmental, RoomId::Main, t(15)),
            DutyLevel::Intensified
        );
        assert_eq!(
            g.duty(SensorClass::Environmental, RoomId::Main, t(25)),
            DutyLevel::Normal
        );
    }

    #[test]
    fn every_decision_is_audited() {
        let mut g = PrivacyGovernor::icares();
        g.suppress(
            "crew:B",
            SensorClass::Microphone,
            Interval::new(t(0), t(10)),
        );
        g.intensify(
            "system",
            SensorClass::Localization,
            Interval::new(t(5), t(15)),
        );
        assert_eq!(g.audit().len(), 2);
    }
}
