//! The assembled mission-support runtime.
//!
//! Wires the Section VI pieces into one unit that consumes streaming day
//! analyses: alerts flow onto the bus, analysis services are health-checked,
//! telemetry summaries go down the Earth link, and the paper's envisioned
//! "uber-system \[that\] would collect all kinds of information and provide it
//! to specialized system units" becomes a single driveable object.

use crate::alerts::{Alert, AlertEngine, AlertRules};
use crate::bus::{Bus, Message, Topic};
use crate::earthlink::{ConflictPolicy, EarthLink};
use crate::failover::{FailoverEvent, ReplicaId, ReplicatedService};
use crate::privacy::PrivacyGovernor;
use ares_simkit::time::{SimDuration, SimTime};
use ares_sociometrics::pipeline::DayAnalysis;

/// Summary of one day processed by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct DayReport {
    /// The mission day.
    pub day: u32,
    /// Alerts raised.
    pub alerts: Vec<Alert>,
    /// Failover events observed.
    pub failovers: Vec<FailoverEvent>,
    /// Whether the analysis tier stayed available.
    pub available: bool,
}

/// The composed runtime.
#[derive(Debug)]
pub struct SupportRuntime {
    bus: Bus,
    engine: AlertEngine,
    link: EarthLink,
    analysis_tier: ReplicatedService,
    governor: PrivacyGovernor,
    /// Replicas simulated dead (failure injection), with recovery day.
    injected_failures: Vec<(ReplicaId, u32, u32)>,
}

impl SupportRuntime {
    /// Builds the canonical runtime: a 3-replica analysis tier, crew-wins
    /// conflict policy, default alert rules and the ICAres-1 privacy policy.
    #[must_use]
    pub fn icares() -> Self {
        SupportRuntime {
            bus: Bus::new(),
            engine: AlertEngine::new(AlertRules::default()),
            link: EarthLink::new(ConflictPolicy::CrewWins),
            analysis_tier: ReplicatedService::new(
                "analysis-tier",
                &[ReplicaId(0), ReplicaId(1), ReplicaId(2)],
                SimDuration::from_hours(6),
                SimTime::from_day_hms(2, 7, 0, 0),
            ),
            governor: PrivacyGovernor::icares(),
            injected_failures: Vec::new(),
        }
    }

    /// The message bus (subscribe before processing days).
    #[must_use]
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The Earth link (for uplinking commands in scenarios).
    pub fn link_mut(&mut self) -> &mut EarthLink {
        &mut self.link
    }

    /// The privacy governor.
    pub fn governor_mut(&mut self) -> &mut PrivacyGovernor {
        &mut self.governor
    }

    /// Injects a replica failure spanning mission days `from..=to`.
    pub fn inject_failure(&mut self, replica: ReplicaId, from_day: u32, to_day: u32) {
        self.injected_failures.push((replica, from_day, to_day));
    }

    /// Processes one day of pipeline output.
    pub fn process_day(&mut self, day: &DayAnalysis) -> DayReport {
        let noon = SimTime::from_day_hms(day.day, 12, 0, 0);
        // Heartbeats from every replica not currently failure-injected.
        for r in [ReplicaId(0), ReplicaId(1), ReplicaId(2)] {
            let down = self
                .injected_failures
                .iter()
                .any(|&(id, from, to)| id == r && (from..=to).contains(&day.day));
            if !down {
                self.analysis_tier.heartbeat(r, noon);
            }
        }
        let failovers = self.analysis_tier.tick(noon);
        for f in &failovers {
            self.bus.publish(
                Topic::Control,
                Message {
                    from: "analysis-tier".into(),
                    payload: format!("{f:?}"),
                },
            );
        }

        // Alerts.
        let alerts = self.engine.evaluate_day(day);
        for a in &alerts {
            self.bus.publish(
                Topic::Alerts,
                Message {
                    from: a.rule.clone(),
                    payload: a.detail.clone(),
                },
            );
        }

        // Daily telemetry summary to Earth (autonomy: the habitat decides
        // locally; Earth gets digests, not the raw 150 GiB).
        let summary = format!(
            "day {}: {} meetings, {} passages, {} alerts, {} identity anomalies",
            day.day,
            day.meetings.len(),
            day.passages.total(),
            alerts.len(),
            day.swaps.len()
        );
        let evening = SimTime::from_day_hms(day.day, 21, 0, 0);
        self.link.downlink(evening, summary);
        let _ = self
            .link
            .advance(evening + SimDuration::from_mins(25));

        DayReport {
            day: day.day,
            alerts,
            failovers,
            available: self.analysis_tier.is_available(),
        }
    }

    /// Total alerts raised over the runtime's life.
    #[must_use]
    pub fn alert_count(&self) -> usize {
        self.engine.alerts().len()
    }

    /// Telemetry digests received on Earth so far.
    #[must_use]
    pub fn earth_digests(&self) -> usize {
        self.link.received_on_earth().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_sociometrics::occupancy::PassageMatrix;

    fn empty_day(day: u32) -> DayAnalysis {
        DayAnalysis {
            day,
            badges: Vec::new(),
            carrier_of: [None; 6],
            meetings: Vec::new(),
            passages: PassageMatrix::new(),
            daily: [None; 6],
            swaps: Vec::new(),
            private_pairs: Vec::new(),
            climate_sums: [(0.0, 0); 10],
            reference_env: Vec::new(),
        }
    }

    #[test]
    fn runtime_stays_available_through_injected_failures() {
        let mut rt = SupportRuntime::icares();
        rt.inject_failure(ReplicaId(0), 5, 7);
        rt.inject_failure(ReplicaId(1), 6, 6);
        let mut reports = Vec::new();
        for day in 2..=14 {
            reports.push(rt.process_day(&empty_day(day)));
        }
        assert!(reports.iter().all(|r| r.available), "tier must survive");
        // The failover happened and was published.
        let failed_days: Vec<u32> = reports
            .iter()
            .filter(|r| !r.failovers.is_empty())
            .map(|r| r.day)
            .collect();
        assert!(failed_days.contains(&5), "day-5 failure detected");
        assert!(rt.bus().published_count(Topic::Control) > 0);
    }

    #[test]
    fn daily_digests_reach_earth() {
        let mut rt = SupportRuntime::icares();
        for day in 2..=4 {
            rt.process_day(&empty_day(day));
        }
        // Each day's digest is delivered on the next advance; at least the
        // first two days have certainly landed.
        assert!(rt.earth_digests() >= 2, "{} digests", rt.earth_digests());
    }

    #[test]
    fn bus_subscribers_see_alerts() {
        let mut rt = SupportRuntime::icares();
        let feed = rt.bus().subscribe(Topic::Alerts);
        // A day with a daily row triggering wear compliance.
        let mut day = empty_day(3);
        day.daily[0] = Some(ares_sociometrics::pipeline::AstronautDaily {
            walking_fraction: 0.02,
            heard_fraction: 0.3,
            worn_fraction: 0.2,
            active_fraction: 0.8,
            self_talk_h: 0.5,
            worn_h: 3.0,
            walking_h: 0.1,
            mean_accel_var: 0.04,
        });
        let report = rt.process_day(&day);
        assert!(!report.alerts.is_empty());
        assert_eq!(feed.drain().len(), report.alerts.len());
    }
}
