//! The assembled mission-support runtime.
//!
//! Wires the Section VI pieces into one unit that consumes streaming day
//! analyses: alerts flow onto the bus, analysis services are health-checked,
//! telemetry summaries go down the Earth link, and the paper's envisioned
//! "uber-system \[that\] would collect all kinds of information and provide it
//! to specialized system units" becomes a single driveable object.

use crate::alerts::{Alert, AlertEngine, AlertRules};
use crate::bus::{Bus, Message, Topic};
use crate::chaos::{FaultPlan, FaultScheduler};
use crate::earthlink::{ConflictPolicy, EarthLink, TelemetryStatus};
use crate::failover::{CheckpointVault, FailoverEvent, ReplicaId, ReplicatedService};
use crate::privacy::PrivacyGovernor;
use ares_badge::records::{AudioFrame, BadgeId, BeaconScan, ImuSample, SyncSample};
use ares_habitat::beacons::BeaconDeployment;
use ares_habitat::floorplan::FloorPlan;
use ares_habitat::rooms::RoomId;
use ares_simkit::rng::splitmix64;
use ares_simkit::series::Interval;
use ares_simkit::time::{SimDuration, SimTime};
use ares_sociometrics::engine::EngineMetrics;
use ares_sociometrics::pipeline::DayAnalysis;
use ares_sociometrics::streaming::{AnalyzerCheckpoint, LiveEvent, StreamingAnalyzer};

/// Summary of one day processed by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct DayReport {
    /// The mission day.
    pub day: u32,
    /// Alerts raised.
    pub alerts: Vec<Alert>,
    /// Failover events observed.
    pub failovers: Vec<FailoverEvent>,
    /// Whether the analysis tier stayed available.
    pub available: bool,
}

/// The composed runtime.
#[derive(Debug)]
pub struct SupportRuntime {
    bus: Bus,
    engine: AlertEngine,
    link: EarthLink,
    analysis_tier: ReplicatedService,
    governor: PrivacyGovernor,
    /// Replicas simulated dead (failure injection), with recovery day.
    injected_failures: Vec<(ReplicaId, u32, u32)>,
}

impl SupportRuntime {
    /// Builds the canonical runtime: a 3-replica analysis tier, crew-wins
    /// conflict policy, default alert rules and the ICAres-1 privacy policy.
    #[must_use]
    pub fn icares() -> Self {
        SupportRuntime {
            bus: Bus::new(),
            engine: AlertEngine::new(AlertRules::default()),
            link: EarthLink::new(ConflictPolicy::CrewWins),
            analysis_tier: ReplicatedService::new(
                "analysis-tier",
                &[ReplicaId(0), ReplicaId(1), ReplicaId(2)],
                SimDuration::from_hours(6),
                SimTime::from_day_hms(2, 7, 0, 0),
            ),
            governor: PrivacyGovernor::icares(),
            injected_failures: Vec::new(),
        }
    }

    /// The message bus (subscribe before processing days).
    #[must_use]
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The Earth link (for uplinking commands in scenarios).
    pub fn link_mut(&mut self) -> &mut EarthLink {
        &mut self.link
    }

    /// The privacy governor.
    pub fn governor_mut(&mut self) -> &mut PrivacyGovernor {
        &mut self.governor
    }

    /// Injects a replica failure spanning mission days `from..=to`.
    pub fn inject_failure(&mut self, replica: ReplicaId, from_day: u32, to_day: u32) {
        self.injected_failures.push((replica, from_day, to_day));
    }

    /// Processes one day of pipeline output.
    pub fn process_day(&mut self, day: &DayAnalysis) -> DayReport {
        let noon = SimTime::from_day_hms(day.day, 12, 0, 0);
        // Heartbeats from every replica not currently failure-injected.
        for r in [ReplicaId(0), ReplicaId(1), ReplicaId(2)] {
            let down = self
                .injected_failures
                .iter()
                .any(|&(id, from, to)| id == r && (from..=to).contains(&day.day));
            if !down {
                self.analysis_tier.heartbeat(r, noon);
            }
        }
        let failovers = self.analysis_tier.tick(noon);
        for f in &failovers {
            self.bus.publish(
                Topic::Control,
                Message {
                    from: "analysis-tier".into(),
                    payload: format!("{f:?}"),
                },
            );
        }

        // Alerts.
        let alerts = self.engine.evaluate_day(day);
        for a in &alerts {
            self.bus.publish(
                Topic::Alerts,
                Message {
                    from: a.rule.clone(),
                    payload: a.detail.clone(),
                },
            );
        }

        // Daily telemetry summary to Earth (autonomy: the habitat decides
        // locally; Earth gets digests, not the raw 150 GiB).
        let summary = format!(
            "day {}: {} meetings, {} passages, {} alerts, {} identity anomalies",
            day.day,
            day.meetings.len(),
            day.passages.total(),
            alerts.len(),
            day.swaps.len()
        );
        let evening = SimTime::from_day_hms(day.day, 21, 0, 0);
        self.link.downlink(evening, summary);
        let _ = self.link.advance(evening + SimDuration::from_mins(25));

        DayReport {
            day: day.day,
            alerts,
            failovers,
            available: self.analysis_tier.is_available(),
        }
    }

    /// Publishes the mission engine's per-stage metrics on the control topic
    /// — the habitat's own observability of its analysis workload ("fast as
    /// the hardware allows" needs a gauge, not a guess).
    pub fn publish_stage_metrics(&mut self, day: u32, metrics: &EngineMetrics) {
        self.bus.publish(
            Topic::Control,
            Message {
                from: "mission-engine".into(),
                payload: format!("day {day} stage metrics\n{}", metrics.render()),
            },
        );
    }

    /// Total alerts raised over the runtime's life.
    #[must_use]
    pub fn alert_count(&self) -> usize {
        self.engine.alerts().len()
    }

    /// Telemetry digests received on Earth so far.
    #[must_use]
    pub fn earth_digests(&self) -> usize {
        self.link.received_on_earth().len()
    }
}

/// Configuration of a sub-day chaos drill: tick/heartbeat/checkpoint
/// cadence, fleet sizes and telemetry loss rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Mission window the drill covers.
    pub span: Interval,
    /// Driver tick (heartbeats, detector, workload) — minutes, not days.
    pub tick: SimDuration,
    /// Heartbeat silence after which a replica is declared failed.
    pub heartbeat_deadline: SimDuration,
    /// How often the primary replicates an analyzer snapshot.
    pub checkpoint_every: SimDuration,
    /// How often a telemetry digest is sent to Earth.
    pub telemetry_every: SimDuration,
    /// Analysis replicas (priority order `0..n`).
    pub replicas: u8,
    /// Sensor badges generating workload (`0..n`).
    pub badges: u8,
    /// Baseline random loss probability on telemetry attempts.
    pub telemetry_loss: f64,
}

impl ChaosConfig {
    /// The canonical drill: one full mission day, 2-minute ticks, 5-minute
    /// failure detection, 15-minute checkpoints, hourly telemetry, a
    /// 3-replica analysis tier and 4 badges.
    #[must_use]
    pub fn icares_day(day: u32) -> Self {
        ChaosConfig {
            span: Interval::new(
                SimTime::from_day_hms(day, 0, 0, 0),
                SimTime::from_day_hms(day + 1, 0, 0, 0),
            ),
            tick: SimDuration::from_mins(2),
            heartbeat_deadline: SimDuration::from_mins(5),
            checkpoint_every: SimDuration::from_mins(15),
            telemetry_every: SimDuration::from_hours(1),
            replicas: 3,
            badges: 4,
            telemetry_loss: 0.0,
        }
    }
}

/// The reliability scorecard of one chaos drill.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityReport {
    /// Signature of the fault plan that produced this run.
    pub plan_signature: String,
    /// Mission window.
    pub span: Interval,
    /// Driver tick length.
    pub tick: SimDuration,
    /// Detector ticks executed.
    pub ticks: u64,
    /// Ticks with an alive, serving primary.
    pub available_ticks: u64,
    /// Backup promotions performed.
    pub failovers: u64,
    /// Distinct unavailability episodes.
    pub outages: u64,
    /// Total time without a serving primary.
    pub downtime: SimDuration,
    /// Mean time to repair (downtime / outages).
    pub mttr: SimDuration,
    /// End-of-run telemetry ledger (after the post-mission drain).
    pub telemetry: TelemetryStatus,
    /// Checkpoints successfully replicated to the vault.
    pub checkpoints_replicated: u64,
    /// Checkpoint offers lost to bus outages.
    pub checkpoints_dropped: u64,
    /// Promotions that restored from a replicated snapshot.
    pub replays: u64,
    /// Largest promotion-time gap between snapshot and now.
    pub max_replay_gap: SimDuration,
    /// Workload records generated.
    pub records_fed: u64,
    /// Live events in the mission stream (duplicates suppressed).
    pub events: u64,
}

impl ReliabilityReport {
    /// Availability over the window, in percent.
    #[must_use]
    pub fn availability_pct(&self) -> f64 {
        if self.ticks == 0 {
            100.0
        } else {
            self.available_ticks as f64 / self.ticks as f64 * 100.0
        }
    }

    /// Renders the scorecard as a fixed-format text block. Same plan + same
    /// config ⇒ byte-identical output, so artifacts diff cleanly.
    #[must_use]
    pub fn render(&self) -> String {
        let mins = |d: SimDuration| d.as_secs_f64() / 60.0;
        format!(
            "reliability scorecard\n\
             plan:         {}\n\
             span:         {} .. {} ({} ticks @ {:.0} s)\n\
             availability: {:.3}% ({}/{} ticks)\n\
             failover:     {} promotions, {} outages, downtime {:.1} min, MTTR {:.1} min\n\
             checkpoints:  {} replicated, {} dropped, {} replays, max replay gap {:.1} min\n\
             telemetry:    sent {}, delivered {}, duplicates {}, retransmits {}, lost attempts {}, pending {}\n\
             workload:     {} records, {} events\n",
            self.plan_signature,
            self.span.start,
            self.span.end,
            self.ticks,
            self.tick.as_secs_f64(),
            self.availability_pct(),
            self.available_ticks,
            self.ticks,
            self.failovers,
            self.outages,
            mins(self.downtime),
            mins(self.mttr),
            self.checkpoints_replicated,
            self.checkpoints_dropped,
            self.replays,
            mins(self.max_replay_gap),
            self.telemetry.sent,
            self.telemetry.delivered,
            self.telemetry.duplicates,
            self.telemetry.retransmits,
            self.telemetry.lost_attempts,
            self.telemetry.pending,
            self.records_fed,
            self.events,
        )
    }
}

/// One deterministic workload record, kept in the replay log.
#[derive(Debug, Clone)]
enum ChaosRecord {
    Scan(BadgeId, BeaconScan),
    Audio(BadgeId, AudioFrame),
    Imu(BadgeId, ImuSample),
    Sync(BadgeId, SyncSample),
}

/// A chaos drill: the support tier driven at sub-day granularity under a
/// compiled [`FaultPlan`], producing a [`ReliabilityReport`].
///
/// The drill wires together the pieces the day-level runtime treats
/// coarsely: heartbeats every tick, a [`CheckpointVault`] fed on a 15-minute
/// schedule, a promoted backup that *restores the latest snapshot and
/// replays the record log* (bounded, measured gap), and an Earth link whose
/// blackouts, loss windows and random attempt loss come from the same plan.
/// Everything is seeded; running the same plan twice yields byte-identical
/// scorecards.
#[derive(Debug)]
pub struct ChaosMission {
    config: ChaosConfig,
    sched: FaultScheduler,
    plan_signature: String,
    service: ReplicatedService,
    vault: CheckpointVault<AnalyzerCheckpoint>,
    analyzer: StreamingAnalyzer,
    link: EarthLink,
    deployment: BeaconDeployment,
    log: Vec<(SimTime, ChaosRecord)>,
    events: Vec<LiveEvent>,
}

impl ChaosMission {
    /// Builds a drill from a config and a fault plan.
    #[must_use]
    pub fn new(config: ChaosConfig, plan: &FaultPlan) -> Self {
        let sched = FaultScheduler::compile(plan, config.span.end);
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        for iv in sched.blackouts().intervals() {
            link.add_blackout(*iv);
        }
        for iv in sched.link_loss().intervals() {
            link.add_loss_window(*iv);
        }
        link.set_random_loss(config.telemetry_loss, splitmix64(plan.seed() ^ 0x7E1E_CA57));
        let replicas: Vec<ReplicaId> = (0..config.replicas).map(ReplicaId).collect();
        let service = ReplicatedService::new(
            "analysis-tier",
            &replicas,
            config.heartbeat_deadline,
            config.span.start,
        );
        ChaosMission {
            config,
            sched,
            plan_signature: plan.signature(),
            service,
            vault: CheckpointVault::new(),
            analyzer: StreamingAnalyzer::icares(),
            link,
            deployment: BeaconDeployment::icares(&FloorPlan::lunares()),
            log: Vec::new(),
            events: Vec::new(),
        }
    }

    /// The deduplicated mission event stream (valid after [`Self::run`]).
    #[must_use]
    pub fn events(&self) -> &[LiveEvent] {
        &self.events
    }

    /// Deterministic sensor workload for tick `index` at `t`: dead badges
    /// fall silent, sync exchanges pause while the reference badge is out.
    fn workload_at(&self, t: SimTime, index: u64) -> Vec<ChaosRecord> {
        const ROOMS: [RoomId; 4] = [
            RoomId::Office,
            RoomId::Kitchen,
            RoomId::Biolab,
            RoomId::Workshop,
        ];
        let mut out = Vec::new();
        for b in 0..self.config.badges {
            let badge = BadgeId(b);
            if !self.sched.badge_alive(badge, t) {
                continue;
            }
            if index.is_multiple_of(30) && self.sched.reference_available(t) {
                out.push(ChaosRecord::Sync(
                    badge,
                    SyncSample {
                        t_local: t,
                        t_reference: t,
                    },
                ));
            }
            let slot = ((index / 15 + u64::from(b) * 2) % ROOMS.len() as u64) as usize;
            out.push(ChaosRecord::Scan(
                badge,
                BeaconScan {
                    t_local: t,
                    hits: self
                        .deployment
                        .in_room(ROOMS[slot])
                        .map(|bea| (bea.id, -55.0))
                        .collect(),
                },
            ));
            let talking = (index + u64::from(b) * 7) % 45 < 15;
            out.push(ChaosRecord::Audio(
                badge,
                AudioFrame {
                    t_local: t,
                    level_db: if talking { 66.0 } else { 42.0 },
                    voiced: talking,
                    f0_hz: if talking {
                        Some(150.0 + f64::from(b) * 20.0)
                    } else {
                        None
                    },
                },
            ));
            let worn = (index + u64::from(b) * 11) % 240 < 210;
            out.push(ChaosRecord::Imu(
                badge,
                ImuSample {
                    t_local: t,
                    accel_var: if worn { 0.05 } else { 0.0003 },
                    accel_mean: 9.81,
                    step_hz: None,
                },
            ));
        }
        out
    }

    fn ingest(analyzer: &mut StreamingAnalyzer, rec: &ChaosRecord) -> Vec<LiveEvent> {
        match rec {
            ChaosRecord::Scan(b, s) => analyzer.ingest_scan(*b, s),
            ChaosRecord::Audio(b, f) => analyzer.ingest_audio(*b, f),
            ChaosRecord::Imu(b, s) => analyzer.ingest_imu(*b, s),
            ChaosRecord::Sync(b, s) => {
                analyzer.ingest_sync(*b, s);
                Vec::new()
            }
        }
    }

    /// Runs the drill over the configured span and returns the scorecard.
    #[allow(clippy::too_many_lines)]
    pub fn run(&mut self) -> ReliabilityReport {
        let cfg = self.config;
        let mut t = cfg.span.start;
        let mut index = 0u64;
        let (mut ticks, mut available_ticks) = (0u64, 0u64);
        let (mut failovers, mut outages) = (0u64, 0u64);
        let mut downtime = SimDuration::ZERO;
        let mut down_since: Option<SimTime> = None;
        let mut next_checkpoint = cfg.span.start + cfg.checkpoint_every;
        let mut next_telemetry = cfg.span.start + cfg.telemetry_every;
        let (mut checkpoints_replicated, mut checkpoints_dropped) = (0u64, 0u64);
        let mut replays = 0u64;
        let mut max_replay_gap = SimDuration::ZERO;
        let mut records_fed = 0u64;
        while t < cfg.span.end {
            // Heartbeats from replicas that are alive and not suppressed.
            for r in 0..cfg.replicas {
                let id = ReplicaId(r);
                if self.sched.heartbeat_delivered(id, t) {
                    self.service.heartbeat(id, t);
                }
            }
            // Failure detection; a promotion rebuilds the analysis state
            // from the last replicated snapshot plus the record log.
            for ev in self.service.tick(t) {
                if let FailoverEvent::Promoted(_) = ev {
                    failovers += 1;
                    let mut fresh = StreamingAnalyzer::icares();
                    let mut since: Option<SimTime> = None;
                    if let Some((at, ckpt)) = self.vault.latest() {
                        fresh.restore(ckpt);
                        since = Some(at);
                        replays += 1;
                        max_replay_gap = max_replay_gap.max(t - at);
                    }
                    // Events regenerated by the replay that the crashed
                    // primary already emitted are duplicates: skip exactly
                    // that many, keep the rest.
                    let mut skip =
                        (self.events.len() as u64).saturating_sub(fresh.events_emitted());
                    for (rt, rec) in &self.log {
                        if since.is_some_and(|s| *rt <= s) {
                            continue;
                        }
                        for ev in Self::ingest(&mut fresh, rec) {
                            if skip > 0 {
                                skip -= 1;
                            } else {
                                self.events.push(ev);
                            }
                        }
                    }
                    self.analyzer = fresh;
                }
            }
            // Workload: always logged (badges keep sensing), ingested only
            // while an alive primary is serving.
            let serving = self
                .service
                .primary()
                .is_some_and(|p| self.sched.replica_alive(p, t));
            for rec in self.workload_at(t, index) {
                records_fed += 1;
                if serving {
                    let evs = Self::ingest(&mut self.analyzer, &rec);
                    self.events.extend(evs);
                }
                self.log.push((t, rec));
            }
            // Availability bookkeeping.
            ticks += 1;
            if serving {
                available_ticks += 1;
                if let Some(s) = down_since.take() {
                    downtime += t - s;
                }
            } else if down_since.is_none() {
                down_since = Some(t);
                outages += 1;
            }
            // Checkpoint replication (skipped while the bus is down — the
            // vault keeps the older snapshot and the log keeps the records).
            if t >= next_checkpoint {
                next_checkpoint += cfg.checkpoint_every;
                if serving {
                    if self.sched.bus_drop_active(t) {
                        checkpoints_dropped += 1;
                    } else {
                        self.vault.offer(t, self.analyzer.checkpoint(t));
                        checkpoints_replicated += 1;
                        self.log.retain(|(rt, _)| *rt > t);
                    }
                }
            }
            // Hourly telemetry digest over the reliable link.
            if t >= next_telemetry {
                next_telemetry += cfg.telemetry_every;
                let digest = format!("{} records={} events={}", t, records_fed, self.events.len());
                let _ = self.link.send_telemetry(t, digest);
            }
            let _ = self.link.advance(t);
            t += cfg.tick;
            index += 1;
        }
        if let Some(s) = down_since {
            downtime += cfg.span.end - s;
        }
        // Post-mission drain: retransmissions keep going until every digest
        // is acked (bounded — the backoff caps and blackouts end).
        let mut drain = cfg.span.end;
        for _ in 0..96 {
            if self.link.telemetry_status().pending == 0 {
                break;
            }
            drain += SimDuration::from_hours(1);
            let _ = self.link.advance(drain);
        }
        let telemetry = self.link.telemetry_status();
        let mttr = if outages > 0 {
            SimDuration::from_secs_f64(downtime.as_secs_f64() / outages as f64)
        } else {
            SimDuration::ZERO
        };
        ReliabilityReport {
            plan_signature: self.plan_signature.clone(),
            span: cfg.span,
            tick: cfg.tick,
            ticks,
            available_ticks,
            failovers,
            outages,
            downtime,
            mttr,
            telemetry,
            checkpoints_replicated,
            checkpoints_dropped,
            replays,
            max_replay_gap,
            records_fed,
            events: self.events.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_sociometrics::occupancy::PassageMatrix;

    fn empty_day(day: u32) -> DayAnalysis {
        DayAnalysis {
            day,
            badges: Vec::new(),
            carrier_of: [None; 6],
            meetings: Vec::new(),
            passages: PassageMatrix::new(),
            daily: [None; 6],
            swaps: Vec::new(),
            private_pairs: Vec::new(),
            climate_sums: [(0.0, 0); 10],
            reference_env: Vec::new(),
        }
    }

    #[test]
    fn chaos_drill_survives_primary_crash_with_bounded_replay() {
        use crate::chaos::Fault;
        let crash = SimTime::from_day_hms(5, 12, 0, 0);
        let plan = FaultPlan::new(42).with(Fault::ReplicaCrash {
            replica: ReplicaId(0),
            at: crash,
            recover_at: None,
        });
        let mut mission = ChaosMission::new(ChaosConfig::icares_day(5), &plan);
        let report = mission.run();
        assert_eq!(report.failovers, 1, "{}", report.render());
        assert_eq!(report.outages, 1);
        assert!(report.availability_pct() > 99.0, "{}", report.render());
        assert!(report.replays >= 1, "promotion restored a snapshot");
        // Gap bounded by checkpoint cadence + detection deadline + a tick.
        assert!(
            report.max_replay_gap <= SimDuration::from_mins(15 + 5 + 2),
            "gap {:?}",
            report.max_replay_gap
        );
        assert_eq!(report.telemetry.pending, 0);
        assert_eq!(report.telemetry.sent, report.telemetry.delivered);
    }

    #[test]
    fn chaos_scorecard_is_byte_identical_across_runs() {
        let plan = FaultPlan::sweep(
            0xA11CE,
            0.8,
            Interval::new(
                SimTime::from_day_hms(6, 0, 0, 0),
                SimTime::from_day_hms(7, 0, 0, 0),
            ),
        );
        let mut cfg = ChaosConfig::icares_day(6);
        cfg.telemetry_loss = 0.2;
        let a = ChaosMission::new(cfg, &plan).run();
        let b = ChaosMission::new(cfg, &plan).run();
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn runtime_stays_available_through_injected_failures() {
        let mut rt = SupportRuntime::icares();
        rt.inject_failure(ReplicaId(0), 5, 7);
        rt.inject_failure(ReplicaId(1), 6, 6);
        let mut reports = Vec::new();
        for day in 2..=14 {
            reports.push(rt.process_day(&empty_day(day)));
        }
        assert!(reports.iter().all(|r| r.available), "tier must survive");
        // The failover happened and was published.
        let failed_days: Vec<u32> = reports
            .iter()
            .filter(|r| !r.failovers.is_empty())
            .map(|r| r.day)
            .collect();
        assert!(failed_days.contains(&5), "day-5 failure detected");
        assert!(rt.bus().published_count(Topic::Control) > 0);
    }

    #[test]
    fn stage_metrics_land_on_the_control_topic() {
        use ares_sociometrics::engine::Stage;
        let mut rt = SupportRuntime::icares();
        let feed = rt.bus().subscribe(Topic::Control);
        let mut metrics = EngineMetrics::new();
        metrics.record(Stage::Localize, 50_400, 48_000, 1.25);
        rt.publish_stage_metrics(3, &metrics);
        let msgs = feed.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].from, "mission-engine");
        assert!(msgs[0].payload.contains("day 3"));
        assert!(msgs[0].payload.contains("localize"));
    }

    #[test]
    fn daily_digests_reach_earth() {
        let mut rt = SupportRuntime::icares();
        for day in 2..=4 {
            rt.process_day(&empty_day(day));
        }
        // Each day's digest is delivered on the next advance; at least the
        // first two days have certainly landed.
        assert!(rt.earth_digests() >= 2, "{} digests", rt.earth_digests());
    }

    #[test]
    fn bus_subscribers_see_alerts() {
        let mut rt = SupportRuntime::icares();
        let feed = rt.bus().subscribe(Topic::Alerts);
        // A day with a daily row triggering wear compliance.
        let mut day = empty_day(3);
        day.daily[0] = Some(ares_sociometrics::pipeline::AstronautDaily {
            walking_fraction: 0.02,
            heard_fraction: 0.3,
            worn_fraction: 0.2,
            active_fraction: 0.8,
            self_talk_h: 0.5,
            worn_h: 3.0,
            walking_h: 0.1,
            mean_accel_var: 0.04,
        });
        let report = rt.process_day(&day);
        assert!(!report.alerts.is_empty());
        assert_eq!(feed.drain().len(), report.alerts.len());
    }
}
