//! Multi-tenant streaming ingest: the analyzer as a long-running service.
//!
//! The paper's Section VI support system is always on: telemetry from every
//! badge in every habitat keeps arriving, and analysis must keep up without
//! Earth in the loop. This module is the front door. An [`IngestServer`]
//! runs one OS thread per *shard*; every tenant (one habitat/mission) is
//! pinned to exactly one shard so cross-badge analysis (meetings, company
//! time) always sees the whole crew. Producers hand records to
//! [`IngestServer::submit`], which routes them onto a bounded SPSC queue with
//! an explicit [`BackpressurePolicy`]: block the producer, or shed the record
//! and count the loss per [`RecordKind`] — drops are typed, surfaced on the
//! support bus ([`Topic::Ingest`]) and in the mission report, never silent.
//!
//! ## Recovery protocol
//!
//! Each shard simulates a replicated analysis service, exactly as the chaos
//! drills do: [`ReplicatedService`] detects failures from heartbeats, a
//! [`CheckpointVault`] holds the latest replicated [`ShardCheckpoint`], and a
//! per-shard write-ahead log records every ingested entry *before* it is
//! applied. The data path is:
//!
//! 1. every entry is appended to the WAL under a monotone sequence number;
//! 2. if a live primary exists, the entry is applied to the live state and
//!    the primary's cursor advances to that sequence number;
//! 3. on the checkpoint cadence, a serving primary snapshots all tenant
//!    state plus its cursor into the vault (unless a `BusDrop` fault has the
//!    replication link down), and the WAL is truncated up to the cursor;
//! 4. when [`FaultPlan`] faults kill the primary, the failure detector
//!    promotes a backup, which restores the vault's latest checkpoint and
//!    replays every WAL entry past the checkpoint cursor.
//!
//! Because entries reach the WAL before they reach the analyzer, application
//! is deterministic, and checkpoint restore is exact, the recovered state is
//! **byte-identical** to an unfaulted run — the same bit-determinism
//! contract the batch engine holds at any worker count, now held across
//! crash-and-recover. `tests/ingest_service.rs` and the `ingest_soak` bench
//! binary assert it end to end.

use crate::bus::{Bus, Message, Topic};
use crate::chaos::{FaultPlan, FaultScheduler};
use crate::failover::{CheckpointVault, FailoverEvent, ReplicaId, ReplicatedService};
use ares_badge::records::{
    AudioFrame, BadgeId, BeaconScan, EnvSample, ImuSample, IrContact, ProximityObs, SyncSample,
};
use ares_badge::telemetry::TelemetryStore;
use ares_simkit::series::Interval;
use ares_simkit::time::{SimDuration, SimTime};
use ares_sociometrics::engine::{analyze_day_stores, EngineMetrics, MissionContext};
use ares_sociometrics::pipeline::MissionAnalysis;
use ares_sociometrics::report::IngestShardRow;
use ares_sociometrics::streaming::{AnalyzerCheckpoint, CheckpointCadence, StreamingAnalyzer};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One tenant of the ingest service: a habitat/mission whose badges form a
/// single analysis domain. All of a tenant's telemetry lands on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

/// One telemetry record from one badge, as it arrives at the front door.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryRecord {
    /// A BLE beacon scan.
    Scan(BeaconScan),
    /// A microphone feature frame.
    Audio(AudioFrame),
    /// An inertial feature window.
    Imu(ImuSample),
    /// An environmental sample.
    Env(EnvSample),
    /// An inter-badge proximity observation.
    Proximity(ProximityObs),
    /// An infrared face-to-face contact.
    Ir(IrContact),
    /// A time-sync exchange with the reference badge.
    Sync(SyncSample),
}

impl TelemetryRecord {
    /// The badge-local timestamp carried by the record.
    #[must_use]
    pub fn t_local(&self) -> SimTime {
        match self {
            TelemetryRecord::Scan(r) => r.t_local,
            TelemetryRecord::Audio(r) => r.t_local,
            TelemetryRecord::Imu(r) => r.t_local,
            TelemetryRecord::Env(r) => r.t_local,
            TelemetryRecord::Proximity(r) => r.t_local,
            TelemetryRecord::Ir(r) => r.t_local,
            TelemetryRecord::Sync(r) => r.t_local,
        }
    }

    /// The record's sensor family (the key of the typed drop counters).
    #[must_use]
    pub fn kind(&self) -> RecordKind {
        match self {
            TelemetryRecord::Scan(_) => RecordKind::Scan,
            TelemetryRecord::Audio(_) => RecordKind::Audio,
            TelemetryRecord::Imu(_) => RecordKind::Imu,
            TelemetryRecord::Env(_) => RecordKind::Env,
            TelemetryRecord::Proximity(_) => RecordKind::Proximity,
            TelemetryRecord::Ir(_) => RecordKind::Ir,
            TelemetryRecord::Sync(_) => RecordKind::Sync,
        }
    }
}

/// The seven telemetry families, for typed shed counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecordKind {
    /// BLE beacon scans.
    Scan,
    /// Microphone feature frames.
    Audio,
    /// Inertial windows.
    Imu,
    /// Environmental samples.
    Env,
    /// Proximity observations.
    Proximity,
    /// Infrared contacts.
    Ir,
    /// Time-sync exchanges.
    Sync,
}

impl RecordKind {
    /// All families, in counter order.
    pub const ALL: [RecordKind; 7] = [
        RecordKind::Scan,
        RecordKind::Audio,
        RecordKind::Imu,
        RecordKind::Env,
        RecordKind::Proximity,
        RecordKind::Ir,
        RecordKind::Sync,
    ];

    /// Stable lowercase label for reports and bus payloads.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RecordKind::Scan => "scan",
            RecordKind::Audio => "audio",
            RecordKind::Imu => "imu",
            RecordKind::Env => "env",
            RecordKind::Proximity => "proximity",
            RecordKind::Ir => "ir",
            RecordKind::Sync => "sync",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// What a producer experiences when a shard's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// The producer blocks until the shard drains a slot. Lossless; the
    /// badge uplink slows instead of the habitat losing telemetry.
    Block,
    /// The record is dropped and counted per [`RecordKind`]; the producer
    /// keeps going. Lossy but never stalls a real-time source.
    Shed,
}

/// Configuration of one [`IngestServer`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Number of shard threads.
    pub shards: usize,
    /// Simulated analysis replicas per shard (primary + backups).
    pub replicas_per_shard: u8,
    /// Bounded capacity of each shard's telemetry queue.
    pub queue_capacity: usize,
    /// What happens to producers when a queue is full.
    pub policy: BackpressurePolicy,
    /// The service span; the shard clock starts at `span.start`.
    pub span: Interval,
    /// Checkpoint cadence of each shard's primary.
    pub checkpoint_every: SimDuration,
    /// Heartbeat deadline of the per-shard failure detector.
    pub heartbeat_deadline: SimDuration,
    /// Publish a [`Topic::Ingest`] shed notice every this many drops.
    pub drop_publish_every: u64,
}

impl IngestConfig {
    /// The ICARES defaults for serving one mission day: two shards, three
    /// replicas each, a 15-minute checkpoint cadence and a 5-minute
    /// failure-detector deadline (the drill settings of `ChaosMission`).
    #[must_use]
    pub fn icares_day(day: u32) -> Self {
        let start = SimTime::from_day_hms(day, 0, 0, 0);
        IngestConfig {
            shards: 2,
            replicas_per_shard: 3,
            queue_capacity: 1024,
            policy: BackpressurePolicy::Block,
            span: Interval::new(start, start + SimDuration::from_hours(24)),
            checkpoint_every: SimDuration::from_mins(15),
            heartbeat_deadline: SimDuration::from_mins(5),
            drop_publish_every: 256,
        }
    }

    /// The shard a tenant is pinned to.
    #[must_use]
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        tenant.0 as usize % self.shards
    }

    /// The global [`ReplicaId`] of a shard's `local`-th replica. Fault plans
    /// target these ids: `replica(0, 0)` is shard 0's initial primary.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range for the configured replica count.
    #[must_use]
    pub fn replica(&self, shard: usize, local: u8) -> ReplicaId {
        assert!(
            local < self.replicas_per_shard,
            "replica index out of range"
        );
        ReplicaId(u8::try_from(shard).expect("shard fits u8") * self.replicas_per_shard + local)
    }

    fn replica_set(&self, shard: usize) -> Vec<ReplicaId> {
        (0..self.replicas_per_shard)
            .map(|i| self.replica(shard, i))
            .collect()
    }
}

/// Per-tenant state replicated in a [`ShardCheckpoint`].
#[derive(Debug, Clone)]
pub struct TenantCheckpoint {
    analyzer: AnalyzerCheckpoint,
    day_stores: Vec<TelemetryStore>,
    analysis: MissionAnalysis,
    records: u64,
    days: u64,
}

/// Everything a promoted backup needs to resume a shard: all tenant state
/// plus the WAL cursor the snapshot covers.
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    taken_at: SimTime,
    cursor: u64,
    tenants: Vec<(TenantId, TenantCheckpoint)>,
}

impl ShardCheckpoint {
    /// When the snapshot was taken.
    #[must_use]
    pub fn taken_at(&self) -> SimTime {
        self.taken_at
    }

    /// The WAL sequence number the snapshot covers: replay starts after it.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

/// A shard's message queue entries.
#[derive(Debug)]
enum ShardMsg {
    Record {
        tenant: TenantId,
        badge: BadgeId,
        record: TelemetryRecord,
    },
    DayEnd {
        tenant: TenantId,
        day: u32,
        at: SimTime,
    },
    /// Test hook: the shard acks on `ack`, then parks until `parked`
    /// disconnects, letting tests fill the bounded queue deterministically.
    Pause {
        ack: Sender<()>,
        parked: Receiver<()>,
    },
    Shutdown,
}

/// A WAL entry: the data-plane payload of a [`ShardMsg`], sequence-numbered.
#[derive(Clone)]
enum WalEntry {
    Record {
        tenant: TenantId,
        badge: BadgeId,
        record: TelemetryRecord,
    },
    DayEnd {
        tenant: TenantId,
        day: u32,
    },
}

/// Live (unreplicated) per-tenant state owned by a shard's primary.
struct TenantLive {
    analyzer: StreamingAnalyzer,
    day_stores: BTreeMap<BadgeId, TelemetryStore>,
    analysis: MissionAnalysis,
    records: u64,
    days: u64,
}

impl TenantLive {
    fn fresh(ctx: &MissionContext) -> Self {
        TenantLive {
            analyzer: StreamingAnalyzer::with_context(ctx.clone()),
            day_stores: BTreeMap::new(),
            analysis: MissionAnalysis::new(&ctx.plan),
            records: 0,
            days: 0,
        }
    }

    fn checkpoint(&self, now: SimTime) -> TenantCheckpoint {
        TenantCheckpoint {
            analyzer: self.analyzer.checkpoint(now),
            day_stores: self.day_stores.values().cloned().collect(),
            analysis: self.analysis.clone(),
            records: self.records,
            days: self.days,
        }
    }

    fn restore(ctx: &MissionContext, ckpt: &TenantCheckpoint) -> Self {
        let mut analyzer = StreamingAnalyzer::with_context(ctx.clone());
        analyzer.restore(&ckpt.analyzer);
        TenantLive {
            analyzer,
            day_stores: ckpt
                .day_stores
                .iter()
                .map(|s| (s.badge, s.clone()))
                .collect(),
            analysis: ckpt.analysis.clone(),
            records: ckpt.records,
            days: ckpt.days,
        }
    }
}

/// Shared per-shard observability counters (producer + consumer side). Depth
/// counts only data messages (records and day ends, not control traffic) and
/// is signed: the producer increments *after* a successful send, so the
/// consumer's decrement can transiently run first and push the counter below
/// zero — reads clamp at zero instead of wrapping.
#[derive(Debug)]
struct ShardStats {
    dropped: [AtomicU64; 7],
    queue_depth: AtomicI64,
    queue_peak: AtomicUsize,
}

impl ShardStats {
    fn new() -> Self {
        ShardStats {
            dropped: std::array::from_fn(|_| AtomicU64::new(0)),
            queue_depth: AtomicI64::new(0),
            queue_peak: AtomicUsize::new(0),
        }
    }

    fn enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        if depth > 0 {
            self.queue_peak
                .fetch_max(usize::try_from(depth).expect("positive"), Ordering::Relaxed);
        }
    }

    fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn depth(&self) -> usize {
        usize::try_from(self.queue_depth.load(Ordering::Relaxed).max(0)).expect("clamped")
    }

    fn dropped_total(&self) -> u64 {
        self.dropped.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Final per-tenant results of an ingest run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The accumulated mission analysis — the byte-identity artifact.
    pub analysis: MissionAnalysis,
    /// Telemetry records applied for this tenant.
    pub records: u64,
    /// Live events the streaming analyzer emitted.
    pub events: u64,
    /// Mission days folded into `analysis`.
    pub days: u64,
}

/// Final per-shard results of an ingest run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The shard index.
    pub shard: usize,
    /// WAL entries appended (records + day ends).
    pub wal_appended: u64,
    /// Failovers: backups promoted after a primary loss.
    pub failovers: u64,
    /// Recoveries that restored from a vault checkpoint.
    pub replays: u64,
    /// WAL entries re-applied across all recoveries.
    pub wal_replayed: u64,
    /// The widest checkpoint-to-promotion gap closed by WAL replay.
    pub max_replay_gap: SimDuration,
    /// Checkpoints accepted by the vault.
    pub checkpoints: u64,
    /// Checkpoints lost to `BusDrop` replication outages.
    pub checkpoints_dropped: u64,
    /// Checkpoint offers the vault rejected as stale.
    pub checkpoints_rejected: u64,
    /// Records shed at the front door, per family label.
    pub dropped: Vec<(&'static str, u64)>,
    /// High-water mark of the shard's bounded queue.
    pub queue_peak: usize,
    /// Per-tenant results, sorted by tenant id.
    pub tenants: Vec<(TenantId, TenantReport)>,
    /// Engine metrics for all day analyses this shard ran (replays included).
    pub metrics: EngineMetrics,
    /// The failure detector's event log.
    pub failover_log: Vec<(SimTime, FailoverEvent)>,
}

/// The collected outcome of [`IngestServer::finish`].
#[derive(Debug, Clone)]
pub struct IngestRunReport {
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
}

impl IngestRunReport {
    /// Looks up one tenant's report.
    #[must_use]
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantReport> {
        self.shards
            .iter()
            .flat_map(|s| &s.tenants)
            .find(|(t, _)| *t == tenant)
            .map(|(_, r)| r)
    }

    /// Total records applied across all shards and tenants.
    #[must_use]
    pub fn records_applied(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| &s.tenants)
            .map(|(_, r)| r.records)
            .sum()
    }

    /// Total records shed at the front door.
    #[must_use]
    pub fn records_dropped(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| &s.dropped)
            .map(|&(_, n)| n)
            .sum()
    }

    /// Total failovers survived.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.shards.iter().map(|s| s.failovers).sum()
    }

    /// Rows for [`ares_sociometrics::report::ingest_section`] — the bridge
    /// from the ingest plane into the mission report.
    #[must_use]
    pub fn report_rows(&self) -> Vec<IngestShardRow> {
        self.shards
            .iter()
            .map(|s| IngestShardRow {
                shard: s.shard,
                queue_depth: 0,
                ingested: s.tenants.iter().map(|(_, r)| r.records).sum(),
                dropped: s
                    .dropped
                    .iter()
                    .map(|&(label, n)| (label.to_string(), n))
                    .collect(),
                queue_peak: s.queue_peak,
                failovers: s.failovers,
                checkpoints: s.checkpoints,
            })
            .collect()
    }
}

/// Guard returned by [`IngestServer::pause_shard`]; dropping it resumes the
/// shard.
#[derive(Debug)]
pub struct PauseGuard {
    _tx: Sender<()>,
}

/// The multi-tenant ingest front door. See the module docs for the
/// recovery protocol.
#[derive(Debug)]
pub struct IngestServer {
    config: IngestConfig,
    txs: Vec<Sender<ShardMsg>>,
    handles: Vec<JoinHandle<ShardReport>>,
    stats: Vec<Arc<ShardStats>>,
    bus: Bus,
}

impl IngestServer {
    /// Spawns one worker thread per shard and starts serving. Faults in
    /// `plan` are compiled per shard and drive the failure simulation.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero shards, replicas, or queue capacity.
    #[must_use]
    pub fn spawn(config: IngestConfig, ctx: &MissionContext, bus: Bus, plan: &FaultPlan) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.replicas_per_shard > 0, "need at least one replica");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let horizon = config.span.end + SimDuration::from_hours(24);
        let mut txs = Vec::with_capacity(config.shards);
        let mut handles = Vec::with_capacity(config.shards);
        let mut stats = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = bounded(config.queue_capacity);
            let shard_stats = Arc::new(ShardStats::new());
            let worker = ShardWorker::new(
                shard,
                &config,
                ctx.clone(),
                bus.clone(),
                FaultScheduler::compile(plan, horizon),
                rx,
                Arc::clone(&shard_stats),
            );
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ingest-shard-{shard}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard thread"),
            );
            txs.push(tx);
            stats.push(shard_stats);
        }
        IngestServer {
            config,
            txs,
            handles,
            stats,
            bus,
        }
    }

    /// Offers one record. Returns whether it was enqueued: under
    /// [`BackpressurePolicy::Block`] this blocks until the shard has room
    /// and always returns `true`; under [`BackpressurePolicy::Shed`] a full
    /// queue drops the record, bumps the typed counter, and returns `false`.
    pub fn submit(&self, tenant: TenantId, badge: BadgeId, record: TelemetryRecord) -> bool {
        let shard = self.config.shard_of(tenant);
        let kind = record.kind();
        let msg = ShardMsg::Record {
            tenant,
            badge,
            record,
        };
        match self.config.policy {
            BackpressurePolicy::Block => {
                assert!(
                    self.txs[shard].send(msg).is_ok(),
                    "shard {shard} thread gone"
                );
                self.stats[shard].enqueued();
                true
            }
            BackpressurePolicy::Shed => match self.txs[shard].try_send(msg) {
                Ok(()) => {
                    self.stats[shard].enqueued();
                    true
                }
                Err(TrySendError::Full(_)) => {
                    let stats = &self.stats[shard];
                    let n = stats.dropped[kind.index()].fetch_add(1, Ordering::Relaxed) + 1;
                    let total = stats.dropped_total();
                    if (total - 1).is_multiple_of(self.config.drop_publish_every) {
                        self.bus.publish(
                            Topic::Ingest,
                            Message {
                                from: format!("ingest/shard{shard}"),
                                payload: format!(
                                    "{{\"shed\": \"{}\", \"kind_dropped\": {n}, \
                                     \"shard_dropped\": {total}}}",
                                    kind.label()
                                ),
                            },
                        );
                    }
                    false
                }
                Err(TrySendError::Disconnected(_)) => {
                    panic!("shard {shard} thread gone")
                }
            },
        }
    }

    /// Marks the end of `tenant`'s mission day `day` at time `at`: the shard
    /// runs the seven-stage day analysis and folds it into the tenant's
    /// `MissionAnalysis`. Day ends are never shed — this always blocks.
    pub fn end_day(&self, tenant: TenantId, day: u32, at: SimTime) {
        let shard = self.config.shard_of(tenant);
        assert!(
            self.txs[shard]
                .send(ShardMsg::DayEnd { tenant, day, at })
                .is_ok(),
            "shard {shard} thread gone"
        );
        self.stats[shard].enqueued();
    }

    /// Parks a shard until the returned guard is dropped. Test hook: with a
    /// shard parked, the bounded queue fills deterministically and both
    /// backpressure policies can be observed without racing the consumer.
    /// Returns only once the shard has actually parked (it drains anything
    /// queued ahead of the pause first).
    #[must_use]
    pub fn pause_shard(&self, shard: usize) -> PauseGuard {
        let (ack_tx, ack_rx) = bounded(1);
        let (tx, rx) = bounded(1);
        assert!(
            self.txs[shard]
                .send(ShardMsg::Pause {
                    ack: ack_tx,
                    parked: rx,
                })
                .is_ok(),
            "shard {shard} thread gone"
        );
        ack_rx.recv().expect("shard acked the pause");
        PauseGuard { _tx: tx }
    }

    /// Current depth of a shard's bounded queue (enqueued, not yet consumed).
    #[must_use]
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.stats[shard].depth()
    }

    /// Records shed so far on a shard, per family.
    #[must_use]
    pub fn dropped(&self, shard: usize) -> Vec<(&'static str, u64)> {
        RecordKind::ALL
            .into_iter()
            .map(|k| {
                (
                    k.label(),
                    self.stats[shard].dropped[k.index()].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Shuts every shard down, joins the workers, and returns the collected
    /// run report.
    ///
    /// # Panics
    ///
    /// Panics if a shard thread panicked.
    #[must_use]
    pub fn finish(self) -> IngestRunReport {
        for (shard, tx) in self.txs.iter().enumerate() {
            assert!(
                tx.send(ShardMsg::Shutdown).is_ok(),
                "shard {shard} thread gone"
            );
        }
        drop(self.txs);
        let shards = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect();
        IngestRunReport { shards }
    }
}

/// The state owned by one shard thread.
struct ShardWorker {
    shard: usize,
    ctx: MissionContext,
    bus: Bus,
    sched: FaultScheduler,
    rx: Receiver<ShardMsg>,
    stats: Arc<ShardStats>,
    replicas: Vec<ReplicaId>,
    service: ReplicatedService,
    vault: CheckpointVault<ShardCheckpoint>,
    cadence: CheckpointCadence,
    wal: Vec<(u64, WalEntry)>,
    seq: u64,
    cursor: u64,
    clock: SimTime,
    live: BTreeMap<TenantId, TenantLive>,
    metrics: EngineMetrics,
    failovers: u64,
    replays: u64,
    wal_replayed: u64,
    max_replay_gap: SimDuration,
    checkpoints: u64,
    checkpoints_dropped: u64,
}

impl ShardWorker {
    fn new(
        shard: usize,
        config: &IngestConfig,
        ctx: MissionContext,
        bus: Bus,
        sched: FaultScheduler,
        rx: Receiver<ShardMsg>,
        stats: Arc<ShardStats>,
    ) -> Self {
        let start = config.span.start;
        let replicas = config.replica_set(shard);
        ShardWorker {
            shard,
            ctx,
            bus,
            sched,
            rx,
            stats,
            service: ReplicatedService::new(
                format!("ingest-shard-{shard}"),
                &replicas,
                config.heartbeat_deadline,
                start,
            ),
            replicas,
            vault: CheckpointVault::new(),
            cadence: CheckpointCadence::new(start, config.checkpoint_every),
            wal: Vec::new(),
            seq: 0,
            cursor: 0,
            clock: start,
            live: BTreeMap::new(),
            metrics: EngineMetrics::new(),
            failovers: 0,
            replays: 0,
            wal_replayed: 0,
            max_replay_gap: SimDuration::ZERO,
            checkpoints: 0,
            checkpoints_dropped: 0,
        }
    }

    fn run(mut self) -> ShardReport {
        loop {
            let Ok(msg) = self.rx.recv() else { break };
            match msg {
                ShardMsg::Record {
                    tenant,
                    badge,
                    record,
                } => {
                    self.stats.dequeued();
                    self.advance(record.t_local());
                    self.append_and_apply(WalEntry::Record {
                        tenant,
                        badge,
                        record,
                    });
                }
                ShardMsg::DayEnd { tenant, day, at } => {
                    self.stats.dequeued();
                    self.advance(at);
                    self.append_and_apply(WalEntry::DayEnd { tenant, day });
                }
                ShardMsg::Pause { ack, parked } => {
                    let _ = ack.send(());
                    // Blocks until the guard (the sender) is dropped.
                    let _ = parked.recv();
                }
                ShardMsg::Shutdown => break,
            }
        }
        self.into_report()
    }

    /// Advances the shard clock monotonically and runs the control plane:
    /// heartbeats from scheduler-alive replicas, failure detection, and —
    /// on a promotion — recovery from the vault plus WAL replay.
    fn advance(&mut self, t: SimTime) {
        self.clock = self.clock.max(t);
        for i in 0..self.replicas.len() {
            let rid = self.replicas[i];
            if self.sched.heartbeat_delivered(rid, self.clock) {
                self.service.heartbeat(rid, self.clock);
            }
        }
        for ev in self.service.tick(self.clock) {
            match ev {
                FailoverEvent::Promoted(p) => {
                    self.failovers += 1;
                    self.recover();
                    self.publish_control(&format!(
                        "{{\"promoted\": {}, \"at\": \"{}\"}}",
                        p.0, self.clock
                    ));
                }
                FailoverEvent::ServiceDown => {
                    self.publish_control(&format!("{{\"service_down\": \"{}\"}}", self.clock));
                }
                _ => {}
            }
        }
    }

    /// Rebuilds the live state as a freshly promoted backup would: restore
    /// the vault's latest checkpoint (or start empty) and replay every WAL
    /// entry past its cursor.
    fn recover(&mut self) {
        self.live.clear();
        self.cursor = 0;
        if let Some((at, ckpt)) = self.vault.latest() {
            self.cursor = ckpt.cursor;
            for (tenant, tckpt) in &ckpt.tenants {
                self.live
                    .insert(*tenant, TenantLive::restore(&self.ctx, tckpt));
            }
            self.replays += 1;
            let gap = self.clock - at;
            if gap > self.max_replay_gap {
                self.max_replay_gap = gap;
            }
        }
        let cursor = self.cursor;
        let tail: Vec<(u64, WalEntry)> = self
            .wal
            .iter()
            .filter(|&&(s, _)| s > cursor)
            .cloned()
            .collect();
        for (s, entry) in tail {
            self.apply(&entry);
            self.cursor = s;
            self.wal_replayed += 1;
        }
    }

    /// WAL-appends an entry, then — if a live primary is serving — applies
    /// it and advances the cursor, and takes any due checkpoint.
    fn append_and_apply(&mut self, entry: WalEntry) {
        self.seq += 1;
        self.wal.push((self.seq, entry.clone()));
        let serving = self
            .service
            .primary()
            .is_some_and(|p| self.sched.replica_alive(p, self.clock));
        if !serving {
            return;
        }
        self.apply(&entry);
        self.cursor = self.seq;
        if self.cadence.due(self.clock) {
            self.take_checkpoint();
        }
    }

    /// The deterministic data plane: exactly this function runs both live
    /// and during replay, so recovered state cannot diverge.
    fn apply(&mut self, entry: &WalEntry) {
        match entry {
            WalEntry::Record {
                tenant,
                badge,
                record,
            } => {
                let live = self
                    .live
                    .entry(*tenant)
                    .or_insert_with(|| TenantLive::fresh(&self.ctx));
                let store = live
                    .day_stores
                    .entry(*badge)
                    .or_insert_with(|| TelemetryStore::new(*badge));
                match record {
                    TelemetryRecord::Scan(r) => {
                        store.push_scan(r.clone());
                        let _ = live.analyzer.ingest_scan(*badge, r);
                    }
                    TelemetryRecord::Audio(r) => {
                        store.push_audio(*r);
                        let _ = live.analyzer.ingest_audio(*badge, r);
                    }
                    TelemetryRecord::Imu(r) => {
                        store.push_imu(*r);
                        let _ = live.analyzer.ingest_imu(*badge, r);
                    }
                    TelemetryRecord::Env(r) => store.push_env(*r),
                    TelemetryRecord::Proximity(r) => store.push_proximity(*r),
                    TelemetryRecord::Ir(r) => store.push_ir(*r),
                    TelemetryRecord::Sync(r) => {
                        store.push_sync(*r);
                        live.analyzer.ingest_sync(*badge, r);
                    }
                }
                live.records += 1;
            }
            WalEntry::DayEnd { tenant, day } => {
                let live = self
                    .live
                    .entry(*tenant)
                    .or_insert_with(|| TenantLive::fresh(&self.ctx));
                let stores: Vec<TelemetryStore> = live.day_stores.values().cloned().collect();
                let analysis = analyze_day_stores(&self.ctx, *day, &stores, &mut self.metrics);
                live.analysis.absorb(analysis);
                live.day_stores.clear();
                live.days += 1;
            }
        }
    }

    fn take_checkpoint(&mut self) {
        if self.sched.bus_drop_active(self.clock) {
            // Replication link down: the snapshot never reaches the vault.
            self.checkpoints_dropped += 1;
            return;
        }
        let snapshot = ShardCheckpoint {
            taken_at: self.clock,
            cursor: self.cursor,
            tenants: self
                .live
                .iter()
                .map(|(t, l)| (*t, l.checkpoint(self.clock)))
                .collect(),
        };
        let cursor = self.cursor;
        if self.vault.offer(self.clock, snapshot) {
            self.checkpoints += 1;
            self.wal.retain(|&(s, _)| s > cursor);
        }
    }

    fn publish_control(&self, payload: &str) {
        self.bus.publish(
            Topic::Ingest,
            Message {
                from: format!("ingest/shard{}", self.shard),
                payload: payload.to_string(),
            },
        );
    }

    fn into_report(self) -> ShardReport {
        let dropped = RecordKind::ALL
            .into_iter()
            .map(|k| {
                (
                    k.label(),
                    self.stats.dropped[k.index()].load(Ordering::Relaxed),
                )
            })
            .collect();
        ShardReport {
            shard: self.shard,
            wal_appended: self.seq,
            failovers: self.failovers,
            replays: self.replays,
            wal_replayed: self.wal_replayed,
            max_replay_gap: self.max_replay_gap,
            checkpoints: self.checkpoints,
            checkpoints_dropped: self.checkpoints_dropped,
            checkpoints_rejected: self.vault.rejected(),
            dropped,
            queue_peak: self.stats.queue_peak.load(Ordering::Relaxed),
            tenants: self
                .live
                .into_iter()
                .map(|(t, l)| {
                    (
                        t,
                        TenantReport {
                            analysis: l.analysis,
                            records: l.records,
                            events: l.analyzer.events_emitted(),
                            days: l.days,
                        },
                    )
                })
                .collect(),
            metrics: self.metrics,
            failover_log: self.service.log().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sync_at(day: u32, h: u32, m: u32, s: u32) -> TelemetryRecord {
        let t = SimTime::from_day_hms(day, h, m, s);
        TelemetryRecord::Sync(SyncSample {
            t_local: t,
            t_reference: t,
        })
    }

    fn config(shards: usize, capacity: usize, policy: BackpressurePolicy) -> IngestConfig {
        IngestConfig {
            shards,
            queue_capacity: capacity,
            policy,
            ..IngestConfig::icares_day(1)
        }
    }

    #[test]
    fn tenants_pin_to_shards_and_replica_ids_are_global() {
        let cfg = config(2, 16, BackpressurePolicy::Block);
        assert_eq!(cfg.shard_of(TenantId(0)), 0);
        assert_eq!(cfg.shard_of(TenantId(1)), 1);
        assert_eq!(cfg.shard_of(TenantId(2)), 0);
        // Replica ids never collide across shards: fault plans can target
        // exactly one shard's primary.
        assert_eq!(cfg.replica(0, 0), ReplicaId(0));
        assert_eq!(cfg.replica(0, 2), ReplicaId(2));
        assert_eq!(cfg.replica(1, 0), ReplicaId(3));
        assert_eq!(cfg.replica(1, 2), ReplicaId(5));
    }

    #[test]
    fn record_kinds_cover_every_record() {
        let t = SimTime::from_day_hms(1, 8, 0, 0);
        let records = [
            TelemetryRecord::Scan(BeaconScan {
                t_local: t,
                hits: Vec::new(),
            }),
            TelemetryRecord::Audio(AudioFrame {
                t_local: t,
                level_db: 40.0,
                voiced: false,
                f0_hz: None,
            }),
            TelemetryRecord::Imu(ImuSample {
                t_local: t,
                accel_var: 0.1,
                accel_mean: 9.8,
                step_hz: None,
            }),
            TelemetryRecord::Env(EnvSample {
                t_local: t,
                temperature_c: 21.0,
                pressure_hpa: 1013.0,
                light_lux: 300.0,
            }),
            TelemetryRecord::Proximity(ProximityObs {
                t_local: t,
                other: BadgeId(1),
                rssi: -60.0,
            }),
            TelemetryRecord::Ir(IrContact {
                t_local: t,
                other: BadgeId(1),
            }),
            sync_at(1, 8, 0, 0),
        ];
        let kinds: Vec<RecordKind> = records.iter().map(TelemetryRecord::kind).collect();
        assert_eq!(kinds, RecordKind::ALL.to_vec());
        for r in &records {
            assert_eq!(r.t_local(), t);
        }
    }

    #[test]
    fn shed_policy_drops_typed_counts_and_publishes_on_the_bus() {
        let ctx = MissionContext::icares();
        let bus = Bus::new();
        let shed_watch = bus.subscribe(Topic::Ingest);
        let mut cfg = config(1, 4, BackpressurePolicy::Shed);
        cfg.drop_publish_every = 3;
        let server = IngestServer::spawn(cfg, &ctx, bus, &FaultPlan::new(1));
        let pause = server.pause_shard(0);
        // With the shard parked the bounded queue fills deterministically:
        // four fit, the rest shed.
        let mut accepted = 0;
        for i in 0..10u32 {
            if server.submit(TenantId(0), BadgeId(0), sync_at(1, 8, 0, i)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(server.queue_depth(0), 4);
        let dropped = server.dropped(0);
        assert!(dropped.contains(&("sync", 6)), "typed counter: {dropped:?}");
        assert_eq!(
            shed_watch.drain().len(),
            2,
            "drops 1 and 4 publish at cadence 3"
        );
        drop(pause);
        let report = server.finish();
        assert_eq!(report.records_applied(), 4);
        assert_eq!(report.records_dropped(), 6);
        assert_eq!(report.shards[0].queue_peak, 4);
        let rows = report.report_rows();
        assert_eq!(rows[0].dropped_total(), 6);
        assert_eq!(rows[0].queue_peak, 4);
    }

    #[test]
    fn block_policy_is_lossless_even_through_a_full_queue() {
        let ctx = MissionContext::icares();
        let cfg = config(1, 2, BackpressurePolicy::Block);
        let server = std::sync::Arc::new(IngestServer::spawn(
            cfg,
            &ctx,
            Bus::new(),
            &FaultPlan::new(1),
        ));
        let pause = server.pause_shard(0);
        let producer = {
            let server = std::sync::Arc::clone(&server);
            std::thread::spawn(move || {
                // Far more than capacity 2: the producer must block on the
                // parked shard, then drain completely once it resumes.
                for i in 0..50u32 {
                    assert!(server.submit(TenantId(0), BadgeId(0), sync_at(1, 9, 0, i)));
                }
            })
        };
        drop(pause);
        producer.join().expect("producer");
        let server = std::sync::Arc::into_inner(server).expect("sole owner");
        let report = server.finish();
        assert_eq!(report.records_applied(), 50, "nothing lost under Block");
        assert_eq!(report.records_dropped(), 0);
        let tenant = report.tenant(TenantId(0)).expect("tenant served");
        assert_eq!(tenant.records, 50);
    }

    #[test]
    fn day_end_folds_an_analysis_and_checkpoints_follow_cadence() {
        let ctx = MissionContext::icares();
        let cfg = config(1, 64, BackpressurePolicy::Block);
        let server = IngestServer::spawn(cfg, &ctx, Bus::new(), &FaultPlan::new(1));
        // One record per minute for two hours: the 15-minute cadence should
        // accept several checkpoints along the way.
        for m in 0..120u32 {
            let _ = server.submit(TenantId(0), BadgeId(0), sync_at(1, 8 + m / 60, m % 60, 0));
        }
        server.end_day(TenantId(0), 1, SimTime::from_day_hms(2, 0, 0, 0));
        let report = server.finish();
        let shard = &report.shards[0];
        assert!(shard.checkpoints >= 7, "cadence ran: {}", shard.checkpoints);
        assert_eq!(shard.checkpoints_dropped, 0);
        assert_eq!(shard.failovers, 0, "no faults, no failovers");
        let tenant = report.tenant(TenantId(0)).expect("tenant served");
        assert_eq!(tenant.days, 1);
        assert_eq!(tenant.records, 120);
    }
}
