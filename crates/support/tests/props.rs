//! Property tests for the support runtime's protocols.

use ares_simkit::series::Interval;
use ares_simkit::time::{SimDuration, SimTime};
use ares_support::earthlink::{Command, ConflictPolicy, Delivery, EarthLink, ONE_WAY_DELAY};
#[allow(unused_imports)]
use ares_support::failover::Role as _RoleCheck;
use ares_support::failover::{CheckpointVault, FailoverEvent, ReplicaId, ReplicatedService, Role};
use ares_support::privacy::{DutyLevel, PrivacyGovernor, SensorClass};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn failover_always_keeps_at_most_one_primary(
        script in prop::collection::vec((0u8..4, 0i64..2_000), 1..80),
    ) {
        // script: (replica that heartbeats [3 = nobody], at time offset)
        let mut svc = ReplicatedService::new(
            "svc",
            &[ReplicaId(0), ReplicaId(1), ReplicaId(2)],
            SimDuration::from_secs(60),
            SimTime::EPOCH,
        );
        let mut t = SimTime::EPOCH;
        for &(who, dt) in &script {
            t += SimDuration::from_secs(dt);
            if who < 3 {
                svc.heartbeat(ReplicaId(who), t);
            }
            svc.tick(t);
            let primaries = [ReplicaId(0), ReplicaId(1), ReplicaId(2)]
                .iter()
                .filter(|&&r| svc.role_of(r) == Some(Role::Primary))
                .count();
            prop_assert!(primaries <= 1, "split brain at {t}");
            // If anyone is alive, someone must be primary.
            let alive = [ReplicaId(0), ReplicaId(1), ReplicaId(2)]
                .iter()
                .filter(|&&r| svc.role_of(r) != Some(Role::Down))
                .count();
            if alive > 0 {
                prop_assert_eq!(primaries, 1, "no primary despite {} alive", alive);
            }
        }
    }

    #[test]
    fn failover_promotion_is_deterministic_under_interleavings(
        script in prop::collection::vec((0u8..4, 0i64..2_000), 1..80),
    ) {
        // The same heartbeat/tick interleaving must produce the same role
        // assignments and the same event log, run after run — promotions
        // follow priority order, never iteration luck.
        let run = || {
            let mut svc = ReplicatedService::new(
                "svc",
                &[ReplicaId(0), ReplicaId(1), ReplicaId(2)],
                SimDuration::from_secs(60),
                SimTime::EPOCH,
            );
            let mut t = SimTime::EPOCH;
            for &(who, dt) in &script {
                t += SimDuration::from_secs(dt);
                if who < 3 {
                    svc.heartbeat(ReplicaId(who), t);
                }
                svc.tick(t);
            }
            let roles: Vec<_> = [ReplicaId(0), ReplicaId(1), ReplicaId(2)]
                .iter()
                .map(|&r| svc.role_of(r))
                .collect();
            (svc.log().to_vec(), roles, svc.primary())
        };
        let (log_a, roles_a, primary_a) = run();
        let (log_b, roles_b, primary_b) = run();
        prop_assert_eq!(log_a.clone(), log_b);
        prop_assert_eq!(roles_a, roles_b);
        prop_assert_eq!(primary_a, primary_b);
        // Whenever a promotion happened, it promoted the highest-priority
        // replica that was not Down at that instant — replay the log and
        // check each promotion against the set of replicas declared failed
        // and not yet rejoined.
        let mut down = std::collections::BTreeSet::new();
        for (at, ev) in &log_a {
            match ev {
                FailoverEvent::Failed(r) => { down.insert(*r); }
                FailoverEvent::Rejoined(r) => { down.remove(r); }
                FailoverEvent::Promoted(p) => {
                    for r in [ReplicaId(0), ReplicaId(1), ReplicaId(2)] {
                        if r == *p { break; }
                        prop_assert!(
                            down.contains(&r),
                            "at {at}: promoted {p:?} while higher-priority {r:?} was up"
                        );
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn failover_log_promotions_follow_failures(
        gaps in prop::collection::vec(30i64..600, 1..20),
    ) {
        let mut svc = ReplicatedService::new(
            "svc",
            &[ReplicaId(0), ReplicaId(1)],
            SimDuration::from_secs(60),
            SimTime::EPOCH,
        );
        let mut t = SimTime::EPOCH;
        for &g in &gaps {
            t += SimDuration::from_secs(g);
            svc.heartbeat(ReplicaId(1), t); // only the backup stays alive
            svc.tick(t);
        }
        // If replica 0 was declared failed, replica 1 must have been promoted
        // at the same instant or later, never before.
        let log = svc.log();
        let failed_at = log.iter().find(|(_, e)| *e == FailoverEvent::Failed(ReplicaId(0)));
        let promoted_at = log.iter().find(|(_, e)| *e == FailoverEvent::Promoted(ReplicaId(1)));
        if let (Some((tf, _)), Some((tp, _))) = (failed_at, promoted_at) {
            prop_assert!(tp >= tf);
        }
    }

    #[test]
    fn vault_latest_is_the_first_offer_at_the_running_max_time(
        offers in prop::collection::vec(0i64..5_000, 1..60),
    ) {
        // Offers arrive in arbitrary (possibly regressing) timestamp order, as
        // from a lagging replica. The vault must always hold the *first* offer
        // made at the running-max timestamp: later equal-time or older offers
        // are rejected, never overwrite.
        let mut vault: CheckpointVault<usize> = CheckpointVault::new();
        let mut expect: Option<(i64, usize)> = None;
        let mut rejected = 0u64;
        for (i, &s) in offers.iter().enumerate() {
            let accepted = vault.offer(SimTime::from_secs(s), i);
            let newer = expect.is_none_or(|(t, _)| s > t);
            prop_assert_eq!(accepted, newer, "offer {} at t={}", i, s);
            if newer {
                expect = Some((s, i));
            } else {
                rejected += 1;
            }
            let (at, &snap) = vault.latest().expect("offered at least once");
            let (et, ei) = expect.expect("tracked");
            prop_assert_eq!(at, SimTime::from_secs(et));
            prop_assert_eq!(snap, ei);
        }
        prop_assert_eq!(vault.offered(), offers.len() as u64);
        prop_assert_eq!(vault.rejected(), rejected);
    }

    #[test]
    fn earthlink_never_delivers_early_and_preserves_everything(
        sends in prop::collection::vec(0i64..10_000, 1..40),
        advances in prop::collection::vec(0i64..40_000, 1..40),
    ) {
        let mut link = EarthLink::new(ConflictPolicy::CrewWins);
        for (i, &s) in sends.iter().enumerate() {
            link.uplink(
                SimTime::from_secs(s),
                Command { id: i as u64, directive: String::new(), based_on_version: 0 },
            );
        }
        let mut sorted = advances.clone();
        sorted.sort_unstable();
        let mut delivered = 0usize;
        for &a in &sorted {
            let now = SimTime::from_secs(a);
            delivered += link.advance(now).len();
            // Deliveries recorded so far all have timestamps ≤ now.
            for (at, _) in link.deliveries() {
                prop_assert!(*at <= now);
            }
        }
        // Nothing delivered before its 20-minute flight time.
        for (at, d) in link.deliveries() {
            let id = match d {
                Delivery::Applied(c) => c.id,
                Delivery::Conflict { command, .. } => command.id,
            };
            let sent = SimTime::from_secs(sends[id as usize]);
            prop_assert!(*at >= sent + ONE_WAY_DELAY);
        }
        // Conservation: delivered + still queued == sent.
        let last = SimTime::from_secs(1_000_000);
        delivered += link.advance(last).len();
        prop_assert_eq!(delivered, sends.len());
    }

    #[test]
    fn privacy_duty_is_deterministic_and_conservative(
        windows in prop::collection::vec((0i64..5_000, 1i64..2_000, prop::bool::ANY), 0..12),
        probe in 0i64..8_000,
    ) {
        let mut g = PrivacyGovernor::icares();
        for &(start, len, suppress) in &windows {
            let w = Interval::new(SimTime::from_secs(start), SimTime::from_secs(start + len));
            if suppress {
                g.suppress("prop", SensorClass::Localization, w);
            } else {
                g.intensify("prop", SensorClass::Localization, w);
            }
        }
        let t = SimTime::from_secs(probe);
        let duty = g.duty(SensorClass::Localization, ares_habitat::rooms::RoomId::Main, t);
        let suppressed_now = windows.iter().any(|&(s, l, sup)| sup && (s..s + l).contains(&probe));
        if suppressed_now {
            prop_assert_eq!(duty, DutyLevel::Off, "suppression must win");
        } else {
            prop_assert_ne!(duty, DutyLevel::Off);
        }
        prop_assert_eq!(g.audit().len(), windows.len());
    }
}
