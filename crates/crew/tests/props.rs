//! Property tests for the crew substrate.

use ares_crew::conversation::{self, ConversationSpec, Participant};
use ares_crew::incidents::IncidentScript;
use ares_crew::roster::{AstronautId, Roster};
use ares_crew::schedule::{Activity, Schedule, MISSION_DAYS, SLOTS_PER_DAY};
use ares_crew::truth::{AstronautTruth, PathPoint, VoiceSource};
use ares_simkit::geometry::Point2;
use ares_simkit::rng::SeedTree;
use ares_simkit::series::Interval;
use ares_simkit::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_slots_partition_every_day(day in 1u32..=14) {
        // Slot intervals tile the 14-hour day exactly, in order.
        let mut cursor = SimTime::from_day_hms(day, 7, 0, 0);
        for slot in 0..SLOTS_PER_DAY {
            let iv = Schedule::slot_interval(day, slot);
            prop_assert_eq!(iv.start, cursor);
            cursor = iv.end;
        }
        prop_assert_eq!(cursor, SimTime::from_day_hms(day, 21, 0, 0));
    }

    #[test]
    fn slot_lookup_agrees_with_intervals(day in 1u32..=14, secs in 0i64..(14 * 3600)) {
        let t = SimTime::from_day_hms(day, 7, 0, 0) + SimDuration::from_secs(secs);
        let (d, slot) = Schedule::slot_at(t).expect("inside daytime");
        prop_assert_eq!(d, day);
        prop_assert!(Schedule::slot_interval(day, slot).contains(t));
    }

    #[test]
    fn group_slots_are_common_to_the_whole_crew(day in 1u32..=14, slot in 0usize..SLOTS_PER_DAY) {
        let s = Schedule::icares();
        let acts: Vec<Activity> = AstronautId::ALL
            .iter()
            .map(|&a| s.activity(day, slot, a))
            .collect();
        // If anyone has a meal/briefing, the slot is a meal/briefing slot:
        // either everyone shares it or the exception is an EVA member.
        if acts.iter().any(|a| a.is_group()) {
            for (&a, act) in AstronautId::ALL.iter().zip(&acts) {
                let eva = Schedule::eva_pair(day).is_some_and(|p| p.contains(&a));
                prop_assert!(
                    act.is_group() || eva,
                    "day {day} slot {slot}: {a} has {act:?} during a group slot"
                );
            }
        }
    }

    #[test]
    fn affinity_matrix_is_a_valid_kernel(x in 0usize..6, y in 0usize..6) {
        let r = Roster::icares();
        let (a, b) = (AstronautId::ALL[x], AstronautId::ALL[y]);
        let v = r.affinity(a, b);
        prop_assert!((0.0..=1.5).contains(&v));
        prop_assert_eq!(v, r.affinity(b, a));
        if a == b {
            prop_assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn conversations_respect_window_and_speakers(
        mins in 2i64..40,
        active in 0.05f64..0.9,
        n_speakers in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let roster = Roster::icares();
        let spec = ConversationSpec {
            participants: roster.members()[..n_speakers]
                .iter()
                .map(Participant::from_member)
                .collect(),
            window: Interval::new(SimTime::EPOCH, SimTime::EPOCH + SimDuration::from_mins(mins)),
            active_fraction: active,
            level_adjust_db: 0.0,
        };
        let mut rng = SeedTree::new(seed).stream("prop-conv");
        let mut out = Vec::new();
        let voiced = conversation::generate(&spec, &mut rng, &mut out);
        prop_assert!(voiced <= spec.window.duration());
        let allowed: Vec<VoiceSource> = spec.participants.iter().map(|p| p.source).collect();
        for s in &out {
            prop_assert!(s.interval.start >= spec.window.start);
            prop_assert!(s.interval.end <= spec.window.end);
            prop_assert!(allowed.contains(&s.source));
            prop_assert!(s.f0_hz >= 60.0);
        }
        // Utterances never overlap (single conversational floor).
        for w in out.windows(2) {
            prop_assert!(w[1].interval.start >= w[0].interval.end);
        }
    }

    #[test]
    fn incident_mapping_is_a_permutation_each_day(day in 1u32..=MISSION_DAYS) {
        let script = IncidentScript::icares();
        let owners: Vec<AstronautId> = AstronautId::ALL
            .iter()
            .map(|&w| script.worn_badge_owner(w, day))
            .collect();
        // No two wearers claim the same badge.
        let mut sorted = owners.clone();
        sorted.sort();
        sorted.dedup();
        // F wears C's badge from day 7, so C's own mapping collides — but C
        // is dead then, making the *live* mapping injective.
        let live: Vec<AstronautId> = AstronautId::ALL
            .iter()
            .filter(|&&w| script.is_aboard(w, SimTime::from_day_hms(day, 12, 0, 0)))
            .map(|&w| script.worn_badge_owner(w, day))
            .collect();
        let mut live_sorted = live.clone();
        live_sorted.sort();
        live_sorted.dedup();
        prop_assert_eq!(live_sorted.len(), live.len(), "badge conflict on day {}", day);
    }

    #[test]
    fn talk_mood_is_bounded_and_only_dips(day in 1u32..=MISSION_DAYS) {
        let script = IncidentScript::icares();
        let m = script.talk_mood(day);
        prop_assert!((0.0..=1.0).contains(&m));
        if day != 11 && day != 12 {
            prop_assert_eq!(m, 1.0);
        }
    }

    #[test]
    fn path_cursor_is_bit_identical_to_binary_search_lookups(
        waypoints in prop::collection::vec((0i64..100_000, -50.0f64..50.0, -50.0f64..50.0, -4.0f64..4.0), 0..40),
        mut query_ts in prop::collection::vec(-1_000i64..110_000, 1..200),
    ) {
        // A synthetic trajectory with arbitrary waypoint spacing (including
        // duplicate timestamps, which `Series::push` collapses).
        let mut sorted = waypoints.clone();
        sorted.sort_by_key(|&(t, ..)| t);
        let mut truth = AstronautTruth::default();
        for &(t, x, y, facing) in &sorted {
            truth.path.push(
                SimTime::from_micros(t),
                PathPoint { pos: Point2::new(x, y), facing },
            );
        }
        // The cursor contract covers non-decreasing query times; interpolated
        // positions and facing vectors must match the binary-search originals
        // to the bit.
        query_ts.sort_unstable();
        let mut cur = truth.path_cursor();
        for &q in &query_ts {
            let t = SimTime::from_micros(q);
            let expect = truth.position(t);
            let got = cur.position(t);
            prop_assert_eq!(
                got.map(|p| (p.x.to_bits(), p.y.to_bits())),
                expect.map(|p| (p.x.to_bits(), p.y.to_bits()))
            );
        }
        let mut cur = truth.path_cursor();
        for &q in &query_ts {
            let t = SimTime::from_micros(q);
            let expect = truth.facing(t);
            let got = cur.facing(t);
            prop_assert_eq!(
                got.map(|v| (v.x.to_bits(), v.y.to_bits())),
                expect.map(|v| (v.x.to_bits(), v.y.to_bits()))
            );
        }
    }
}
