//! Typed crew specification — the human half of a scenario spec.
//!
//! [`CrewSpec`] and [`ScheduleSpec`] describe a six-astronaut crew and its
//! strict slot plan as plain data, so the scenario generator can vary
//! personalities, affinities, work rotations and EVA pairings without
//! touching the behaviour simulator. The canonical ICAres-1 crew is
//! [`CrewSpec::icares`] / [`ScheduleSpec::icares`];
//! [`Roster::from_spec`](crate::roster::Roster::from_spec) and
//! [`Schedule::from_spec`](crate::schedule::Schedule::from_spec) rebuild the
//! historical roster and plan from them byte-identically.
//!
//! The spec keeps the mission *doctrine* fixed — the day frame (meal,
//! briefing and break slots), the 14-day span, the EVA slot block — and
//! exposes only the degrees of freedom the generator is allowed to sample:
//! behavioural profiles, the affinity matrix, work-room rotations, the
//! exercise slot and the EVA calendar.

use crate::roster::{AstronautId, Role, VoiceRegister};
use ares_habitat::rooms::RoomId;
use serde::{Deserialize, Serialize};

/// One crew member as data. Mirrors
/// [`CrewMember`](crate::roster::CrewMember) field-for-field, minus the
/// derived F0 standard deviation (always `0.12 · voice_f0_hz`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberSpec {
    /// The astronaut this entry describes.
    pub id: AstronautId,
    /// Mission role.
    pub role: Role,
    /// Vocal register.
    pub register: VoiceRegister,
    /// Relative rate of discretionary walking.
    pub mobility: f64,
    /// Relative share of speaking time in conversations.
    pub talkativeness: f64,
    /// Propensity to seek/keep company.
    pub sociability: f64,
    /// Mean fundamental voice frequency (Hz).
    pub voice_f0_hz: f64,
    /// Typical conversational loudness at 1 m (dB SPL).
    pub voice_level_db: f64,
    /// Physically impaired (central stations, cautious movement).
    pub impaired: bool,
    /// Uses a text-to-speech screen reader during solo desk work.
    pub uses_screen_reader: bool,
}

/// The crew as data: six members in [`AstronautId::ALL`] order plus the
/// 6×6 row-major pairwise affinity matrix (diagonal zero, symmetric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrewSpec {
    /// The six members, indexed like [`AstronautId::ALL`].
    pub members: Vec<MemberSpec>,
    /// Row-major 6×6 affinity table; entry `x.index() * 6 + y.index()`.
    pub affinity: Vec<f64>,
}

impl CrewSpec {
    /// The canonical ICAres-1 crew: the paper's profiles for astronauts A–F
    /// and the affinity rule calibrated to its pairwise-meeting findings
    /// (A–F strongest at 1.30, D–E weakest at 0.35, C and B sociable with
    /// everyone).
    #[must_use]
    pub fn icares() -> Self {
        use AstronautId as Id;
        let member =
            |id: Id, role, register, mobility, talk, soc, f0: f64, level: f64| MemberSpec {
                id,
                role,
                register,
                mobility,
                talkativeness: talk,
                sociability: soc,
                voice_f0_hz: f0,
                voice_level_db: level,
                impaired: id == Id::A,
                uses_screen_reader: id == Id::A,
            };
        let members = vec![
            member(
                Id::A,
                Role::Biologist,
                VoiceRegister::Female,
                0.33,
                0.62,
                0.78,
                205.0,
                66.0,
            ),
            member(
                Id::B,
                Role::Commander,
                VoiceRegister::Female,
                0.35,
                0.58,
                1.00,
                215.0,
                68.0,
            ),
            member(
                Id::C,
                Role::Scientist,
                VoiceRegister::Male,
                1.00,
                0.82,
                0.88,
                125.0,
                70.0,
            ),
            member(
                Id::D,
                Role::Engineer,
                VoiceRegister::Female,
                0.66,
                0.70,
                0.93,
                200.0,
                67.0,
            ),
            member(
                Id::E,
                Role::StructuralMaterialScientist,
                VoiceRegister::Male,
                0.52,
                0.55,
                0.70,
                115.0,
                65.5,
            ),
            member(
                Id::F,
                Role::ChiefMedicalOfficer,
                VoiceRegister::Male,
                0.80,
                0.74,
                0.86,
                130.0,
                69.0,
            ),
        ];
        // The historical closed-form affinity rule, tabulated.
        let mut affinity = vec![0.0; 36];
        for x in Id::ALL {
            for y in Id::ALL {
                if x == y {
                    continue;
                }
                let pair = |a, b| (x == a && y == b) || (x == b && y == a);
                affinity[x.index() * 6 + y.index()] = if pair(Id::A, Id::F) {
                    1.30
                } else if pair(Id::D, Id::E) {
                    0.35
                } else if x == Id::C || y == Id::C {
                    0.72
                } else if x == Id::B || y == Id::B {
                    0.66
                } else {
                    0.55
                };
            }
        }
        CrewSpec { members, affinity }
    }
}

impl Default for CrewSpec {
    fn default() -> Self {
        CrewSpec::icares()
    }
}

/// The schedule's sampled degrees of freedom: work rotations, exercise slot
/// and the EVA calendar. The day frame (meals at slots 0/11/23, briefings at
/// 2/27, breaks at 7/18) and the EVA block (slots 14–17) are doctrine and
/// stay fixed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSpec {
    /// Three-room work rotation per astronaut, indexed like
    /// [`AstronautId::ALL`]; the rotation advances every 4-slot block.
    pub work_rooms: [[RoomId; 3]; 6],
    /// Slot of the staggered exercise session (must not hit a frame slot).
    pub exercise_slot: usize,
    /// EVA calendar: `(day, pair)` entries, at most one per day.
    pub eva_days: Vec<(u32, [AstronautId; 2])>,
}

impl ScheduleSpec {
    /// The canonical ICAres-1 plan parameters.
    #[must_use]
    pub fn icares() -> Self {
        use crate::schedule::{Schedule, MISSION_DAYS};
        ScheduleSpec {
            work_rooms: [
                [RoomId::Biolab, RoomId::Office, RoomId::Office],
                [RoomId::Office, RoomId::Office, RoomId::Workshop],
                [RoomId::Biolab, RoomId::Office, RoomId::Storage],
                [RoomId::Office, RoomId::Workshop, RoomId::Workshop],
                [RoomId::Biolab, RoomId::Workshop, RoomId::Storage],
                [RoomId::Biolab, RoomId::Office, RoomId::Workshop],
            ],
            exercise_slot: 20,
            eva_days: (1..=MISSION_DAYS)
                .filter_map(|day| Schedule::eva_pair(day).map(|pair| (day, pair)))
                .collect(),
        }
    }

    /// The EVA pair scheduled for `day`, if any.
    #[must_use]
    pub fn eva_pair_on(&self, day: u32) -> Option<[AstronautId; 2]> {
        self.eva_days
            .iter()
            .find(|&&(d, _)| d == day)
            .map(|&(_, pair)| pair)
    }
}

impl Default for ScheduleSpec {
    fn default() -> Self {
        ScheduleSpec::icares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icares_crew_spec_matches_the_paper_profiles() {
        let s = CrewSpec::icares();
        assert_eq!(s.members.len(), 6);
        for (i, m) in s.members.iter().enumerate() {
            assert_eq!(m.id.index(), i);
        }
        assert_eq!(s.affinity.len(), 36);
        let aff = |x: AstronautId, y: AstronautId| s.affinity[x.index() * 6 + y.index()];
        assert_eq!(aff(AstronautId::A, AstronautId::F), 1.30);
        assert_eq!(aff(AstronautId::D, AstronautId::E), 0.35);
        for x in AstronautId::ALL {
            assert_eq!(aff(x, x), 0.0);
            for y in AstronautId::ALL {
                assert_eq!(aff(x, y), aff(y, x), "affinity symmetric {x}{y}");
            }
        }
    }

    #[test]
    fn icares_schedule_spec_pins_the_eva_calendar() {
        let s = ScheduleSpec::icares();
        assert_eq!(s.eva_days.len(), 7);
        assert_eq!(s.eva_pair_on(3), Some([AstronautId::C, AstronautId::D]));
        assert_eq!(s.eva_pair_on(4), None);
        assert_eq!(s.exercise_slot, 20);
    }

    #[test]
    fn specs_round_trip_through_serde() {
        let c = CrewSpec::icares();
        assert_eq!(CrewSpec::from_value(&c.to_value()).expect("crew"), c);
        let s = ScheduleSpec::icares();
        assert_eq!(ScheduleSpec::from_value(&s.to_value()).expect("sched"), s);
    }
}
