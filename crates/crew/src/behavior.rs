//! The agent-based behaviour simulator.
//!
//! Given the roster, schedule, incident script and floor plan, this module
//! constructs the full mission ground truth: per-astronaut trajectories
//! (waypoint paths through the habitat), badge wear states, walking
//! intervals, all speech, and the meeting ledger.
//!
//! The generator is slot-structured: for every 30-minute slot it plans group
//! meetings (meals, briefings), errands (the hydration dashes to the kitchen
//! that dominate the paper's Fig. 2), pairwise chats (driven by the affinity
//! matrix, so A–F accumulate hours more private conversation than D–E), and
//! fills the rest with workstation movement. Scripted incidents modulate it:
//! C's trace ends at the day-4 death, followed by the quiet consolation
//! meeting; conversation collapses on the day-11 food shortage and day-12
//! reprimand; and talk decays gently across the mission (the paper's Fig. 6
//! trend).

use crate::conversation::{self, ConversationSpec, Participant};
use crate::incidents::IncidentScript;
use crate::roster::{AstronautId, Roster};
use crate::schedule::{Activity, Schedule, MISSION_DAYS, SLOTS_PER_DAY};
use crate::truth::{
    AstronautTruth, MissionTruth, PathPoint, SpeechSegment, TruthMeeting, WearState,
};
use ares_habitat::floorplan::FloorPlan;
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::{Point2, Vec2};
use ares_simkit::rng::SeedTree;
use ares_simkit::series::{Interval, IntervalSet, Series};
use ares_simkit::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

/// Where the badge charging station (and the reference badge) stands: the
/// east end of the main hall.
pub const CHARGING_STATION: Point2 = Point2::new(30.0, -5.2);

/// Tunable parameters of the behaviour simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorConfig {
    /// Master random seed.
    pub seed: u64,
    /// Nominal walking speed (m/s).
    pub walk_speed_mps: f64,
    /// Walking speed of the impaired astronaut (m/s).
    pub impaired_walk_speed_mps: f64,
    /// Base mean workstation dwell (s); divided by mobility.
    pub station_dwell_base_s: f64,
    /// Probability per work slot of a kitchen/storage errand when working in
    /// the office or workshop (the "forgot about breaks, rushed to hydrate"
    /// pattern).
    pub errand_prob_focus: f64,
    /// Errand probability from other rooms.
    pub errand_prob_other: f64,
    /// Probability per slot of a restroom visit.
    pub restroom_prob: f64,
    /// Mean pairwise chat episodes per shared work slot at affinity 1.
    pub chat_rate: f64,
    /// Per-day decay of conversational activity after day 2.
    pub talk_decay_per_day: f64,
    /// Voluntary badge-non-wear probability on day 2 (grows linearly).
    pub nowear_base: f64,
    /// Daily growth of the non-wear probability (the 80 % → 50 % decline).
    pub nowear_slope: f64,
    /// Probability of forgetting the badge on the charger for the first hour.
    pub forgot_dock_prob: f64,
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        BehaviorConfig {
            seed: 0xA2E5,
            walk_speed_mps: 1.2,
            impaired_walk_speed_mps: 1.05,
            station_dwell_base_s: 240.0,
            errand_prob_focus: 0.32,
            errand_prob_other: 0.22,
            restroom_prob: 0.09,
            chat_rate: 1.5,
            talk_decay_per_day: 0.045,
            nowear_base: 0.12,
            nowear_slope: 0.045,
            forgot_dock_prob: 0.10,
        }
    }
}

impl BehaviorConfig {
    /// Conversation multiplier for a day: mission-long decay times the
    /// incident mood.
    #[must_use]
    pub fn talk_factor(&self, day: u32, incidents: &IncidentScript) -> f64 {
        let decay = (1.0 - self.talk_decay_per_day * (day.saturating_sub(2)) as f64).max(0.35);
        decay * incidents.talk_mood(day)
    }

    /// Mobility multiplier per day: calm day 3, hectic days 5–7 (covering the
    /// deceased C's tasks).
    #[must_use]
    pub fn mobility_factor(&self, day: u32) -> f64 {
        match day {
            3 => 0.78,
            5..=7 => 1.15,
            _ => 1.0,
        }
    }

    /// Voluntary non-wear probability for a day.
    #[must_use]
    pub fn nowear_prob(&self, day: u32) -> f64 {
        (self.nowear_base + self.nowear_slope * (day.saturating_sub(2)) as f64).min(0.6)
    }
}

/// Builds one astronaut's traces incrementally.
#[derive(Debug)]
struct TraceBuilder {
    path: Vec<(SimTime, PathPoint)>,
    wear: Vec<(SimTime, WearState)>,
    walking: Vec<Interval>,
    on_duty: Vec<Interval>,
    t: SimTime,
    pos: Point2,
    facing: f64,
    speed: f64,
}

impl TraceBuilder {
    fn new(start: SimTime, pos: Point2, speed: f64) -> Self {
        TraceBuilder {
            path: vec![(start, PathPoint { pos, facing: 0.0 })],
            wear: vec![(start, WearState::Docked)],
            walking: Vec::new(),
            on_duty: Vec::new(),
            t: start,
            pos,
            facing: 0.0,
            speed,
        }
    }

    fn set_wear(&mut self, state: WearState) {
        if self.wear.last().map(|w| w.1) != Some(state) {
            self.wear.push((self.t, state));
        }
    }

    fn dwell_until(&mut self, until: SimTime, facing: f64) {
        if until > self.t {
            self.facing = facing;
            self.path.push((
                self.t,
                PathPoint {
                    pos: self.pos,
                    facing,
                },
            ));
            self.t = until;
        }
    }

    /// Walks through the waypoints at this builder's speed; returns arrival.
    fn walk(&mut self, waypoints: &[Point2]) -> SimTime {
        let start = self.t;
        let mut prev = self.pos;
        for &w in waypoints {
            let d = prev.distance(w);
            if d < 0.05 {
                continue;
            }
            let facing = (w - prev).angle();
            self.path.push((self.t, PathPoint { pos: prev, facing }));
            self.t += SimDuration::from_secs_f64(d / self.speed);
            self.path.push((self.t, PathPoint { pos: w, facing }));
            prev = w;
            self.facing = facing;
        }
        self.pos = prev;
        if self.t > start {
            self.walking.push(Interval::new(start, self.t));
        }
        self.t
    }

    fn finish(self) -> AstronautTruth {
        let mut path = Series::new();
        for (t, p) in self.path {
            path.push(t, p);
        }
        let mut wear = Series::new();
        for (t, w) in self.wear {
            wear.push(t, w);
        }
        AstronautTruth {
            path,
            wear,
            walking: IntervalSet::from_intervals(self.walking),
            on_duty: IntervalSet::from_intervals(self.on_duty),
        }
    }
}

/// A planned gathering within a slot.
#[derive(Debug)]
struct MeetingPlan {
    room: RoomId,
    window: Interval,
    seats: Vec<(AstronautId, Point2, f64)>,
    active_fraction: f64,
    level_adj: f64,
    planned: bool,
    arrivals: Vec<SimTime>,
}

/// An exclusive engagement of one astronaut within a slot.
#[derive(Debug, Clone, Copy)]
enum Action {
    Meeting(usize),
    Errand(Point2),
    Listen,
}

#[derive(Debug, Clone, Copy)]
struct Engagement {
    window: Interval,
    action: Action,
}

/// The behaviour simulator.
#[derive(Debug)]
pub struct BehaviorSim<'a> {
    roster: &'a Roster,
    schedule: &'a Schedule,
    incidents: &'a IncidentScript,
    plan: &'a FloorPlan,
    config: BehaviorConfig,
}

impl<'a> BehaviorSim<'a> {
    /// Creates a simulator over the given mission configuration.
    #[must_use]
    pub fn new(
        roster: &'a Roster,
        schedule: &'a Schedule,
        incidents: &'a IncidentScript,
        plan: &'a FloorPlan,
        config: BehaviorConfig,
    ) -> Self {
        BehaviorSim {
            roster,
            schedule,
            incidents,
            plan,
            config,
        }
    }

    /// Runs the full mission and returns the ground truth.
    #[must_use]
    pub fn generate(&self) -> MissionTruth {
        self.generate_through(MISSION_DAYS)
    }

    /// Runs the mission only through `last_day` (clamped to the mission
    /// span) and returns the ground truth for days `1..=last_day`.
    ///
    /// Behaviour is simulated strictly day by day from a single stream, so
    /// the prefix generated here is bit-identical to the same days of
    /// [`Self::generate`] — fleet-scale runs that only record a few days per
    /// habitat use this to skip simulating the rest of the mission.
    #[must_use]
    pub fn generate_through(&self, last_day: u32) -> MissionTruth {
        let last_day = last_day.clamp(1, MISSION_DAYS);
        let mut rng = SeedTree::new(self.config.seed)
            .child("crew")
            .stream("behavior");
        let mut builders: Vec<TraceBuilder> = AstronautId::ALL
            .iter()
            .map(|&id| {
                let speed = if self.roster.member(id).profile.impaired {
                    self.config.impaired_walk_speed_mps
                } else {
                    self.config.walk_speed_mps
                };
                TraceBuilder::new(SimTime::from_day_hms(1, 6, 55, 0), self.bed_of(id), speed)
            })
            .collect();
        let mut speech: Vec<SpeechSegment> = Vec::new();
        let mut meetings: Vec<TruthMeeting> = Vec::new();

        for day in 1..=last_day {
            self.simulate_day(day, &mut builders, &mut speech, &mut meetings, &mut rng);
        }

        speech.sort_by_key(|s| s.interval.start);
        meetings.sort_by_key(|m| m.interval.start);
        MissionTruth {
            astronauts: builders.into_iter().map(TraceBuilder::finish).collect(),
            speech,
            meetings,
        }
    }

    /// Per-astronaut-day badge failures: `(forgot on charger until lunch,
    /// battery dead from dinner)`. Deterministic per seed.
    fn wear_failures(&self, day: u32, id: AstronautId) -> (bool, bool) {
        let mut r = SeedTree::new(self.config.seed)
            .child("crew")
            .stream_indexed("wearfail", u64::from(day) * 8 + id.index() as u64);
        (r.gen::<f64>() < 0.10, r.gen::<f64>() < 0.12)
    }

    fn bed_of(&self, id: AstronautId) -> Point2 {
        let (min, _) = self.plan.room_polygon(RoomId::Bedroom).bounds();
        Point2::new(min.x + 0.7 + 0.45 * id.index() as f64, min.y + 3.4)
    }

    fn aboard_at(&self, t: SimTime) -> Vec<AstronautId> {
        AstronautId::ALL
            .iter()
            .copied()
            .filter(|&a| self.incidents.is_aboard(a, t))
            .collect()
    }

    fn simulate_day(
        &self,
        day: u32,
        builders: &mut [TraceBuilder],
        speech: &mut Vec<SpeechSegment>,
        meetings: &mut Vec<TruthMeeting>,
        rng: &mut StdRng,
    ) {
        let day_start = SimTime::from_day_hms(day, 7, 0, 0);
        let day_end = SimTime::from_day_hms(day, 21, 0, 0);
        let death = AstronautId::ALL
            .iter()
            .copied()
            .find_map(|a| self.incidents.death_of(a).map(|t| (a, t)))
            .filter(|(_, t)| t.mission_day() == day);

        // Morning: wake, dress, pick up badges.
        for &id in &self.aboard_at(day_start) {
            let b = &mut builders[id.index()];
            b.dwell_until(day_start, 0.0);
            b.on_duty.push(Interval::new(
                day_start,
                death
                    .filter(|(who, _)| *who == id)
                    .map_or(day_end, |(_, t)| t + SimDuration::from_mins(5)),
            ));
            if day >= 2 {
                if rng.gen::<f64>() < self.config.forgot_dock_prob {
                    // Forgets the badge on the charger until after briefing.
                    // (It becomes Worn lazily at slot 3.)
                } else {
                    b.set_wear(WearState::Worn);
                }
            }
        }

        let drill = self.incidents.spe_drill_on(day);
        let mut slot = 0usize;
        while slot < SLOTS_PER_DAY {
            if let Some((who, at)) = death {
                let death_slot =
                    ((at - day_start).as_micros() / crate::schedule::SLOT.as_micros()) as usize;
                if slot == death_slot {
                    self.simulate_death_block(day, slot, who, at, builders, speech, meetings, rng);
                    slot = death_slot + 2;
                    continue;
                }
            }
            if let Some((at, shelter)) = drill {
                let drill_slot =
                    ((at - day_start).as_micros() / crate::schedule::SLOT.as_micros()) as usize;
                if slot == drill_slot {
                    self.simulate_spe_drill_block(
                        day, slot, at, shelter, builders, speech, meetings, rng,
                    );
                    slot = drill_slot + 2;
                    continue;
                }
            }
            self.simulate_slot(day, slot, builders, speech, meetings, rng);
            slot += 1;
        }

        // Evening: dock badges, go to bed.
        for &id in &self.aboard_at(day_end) {
            let b = &mut builders[id.index()];
            b.dwell_until(day_end, b.facing);
            b.set_wear(WearState::Docked);
            let bed = self.bed_of(id);
            let wp = self.route_points(b.pos, bed);
            b.walk(&wp);
            b.dwell_until(SimTime::from_day_hms(day + 1, 6, 55, 0), 0.0);
        }
        // The deceased stay off-path; their builder simply stops advancing.
    }

    #[allow(clippy::too_many_arguments)]
    fn simulate_death_block(
        &self,
        day: u32,
        slot: usize,
        who: AstronautId,
        at: SimTime,
        builders: &mut [TraceBuilder],
        speech: &mut Vec<SpeechSegment>,
        meetings: &mut Vec<TruthMeeting>,
        rng: &mut StdRng,
    ) {
        let window = Interval::new(
            Schedule::slot_interval(day, slot).start,
            Schedule::slot_interval(day, slot + 1).end,
        );
        // The dying astronaut walks to the airlock and leaves.
        {
            let b = &mut builders[who.index()];
            b.dwell_until(at, b.facing);
            b.set_wear(WearState::Docked); // the crew dock C's badge
            let airlock = self.plan.room_center(RoomId::Airlock);
            let wp = self.route_points(b.pos, airlock);
            b.walk(&wp);
            b.dwell_until(at + SimDuration::from_mins(5), 0.0);
        }
        // The rest work in shock until 15:15, then gather in the kitchen for
        // the unplanned, hushed consolation meeting 15:20–16:00.
        let gather = at + SimDuration::from_mins(20);
        let survivors: Vec<AstronautId> = self
            .aboard_at(gather)
            .into_iter()
            .filter(|&a| a != who)
            .collect();
        let mut meeting = self.make_meeting(
            RoomId::Kitchen,
            Interval::new(gather, window.end),
            &survivors,
            0.24,
            -7.5,
            false,
            rng,
        );
        for &id in &survivors {
            let b = &mut builders[id.index()];
            let room = self.effective_activity(day, slot, id, rng).room();
            self.filler(b, room, at + SimDuration::from_mins(15), rng, id);
            let seat = meeting
                .seats
                .iter()
                .find(|(a, _, _)| *a == id)
                .map(|&(_, p, f)| (p, f))
                .expect("seat assigned");
            let wp = self.route_points(b.pos, seat.0);
            let arrival = b.walk(&wp);
            meeting.arrivals.push(arrival);
            b.dwell_until(window.end, seat.1);
        }
        self.emit_meeting(meeting, speech, meetings, rng);
    }

    /// The SPE storm-shelter drill: the alert sounds at `at`; every aboard
    /// astronaut reacts within the 60-second alert budget (a 10–55 s
    /// acknowledge-and-drop-tools delay) and walks straight to the shelter,
    /// where the crew holds a terse muster until the two-slot window ends.
    #[allow(clippy::too_many_arguments)]
    fn simulate_spe_drill_block(
        &self,
        day: u32,
        slot: usize,
        at: SimTime,
        shelter: RoomId,
        builders: &mut [TraceBuilder],
        speech: &mut Vec<SpeechSegment>,
        meetings: &mut Vec<TruthMeeting>,
        rng: &mut StdRng,
    ) {
        let window = Interval::new(
            Schedule::slot_interval(day, slot).start,
            Schedule::slot_interval(day, slot + 1).end,
        );
        let crew = self.aboard_at(at);
        let mut meeting = self.make_meeting(
            shelter,
            Interval::new(at, window.end),
            &crew,
            0.30,
            -4.0,
            false,
            rng,
        );
        for &id in &crew {
            let b = &mut builders[id.index()];
            let room = self.effective_activity(day, slot, id, rng).room();
            // Normal work until the alert sounds.
            self.filler(b, room, at, rng, id);
            // Reaction delay: acknowledge, drop tools — strictly inside the
            // 60 s alert budget.
            let react = 10.0 + 45.0 * rng.gen::<f64>();
            b.dwell_until(at + SimDuration::from_secs_f64(react), b.facing);
            let seat = meeting
                .seats
                .iter()
                .find(|(a, _, _)| *a == id)
                .map(|&(_, p, f)| (p, f))
                .expect("seat assigned");
            let wp = self.route_points(b.pos, seat.0);
            let arrival = b.walk(&wp);
            meeting.arrivals.push(arrival);
            b.dwell_until(window.end, seat.1);
        }
        self.emit_meeting(meeting, speech, meetings, rng);
    }

    /// The activity actually performed, which may override the schedule:
    /// focused office/workshop workers often skip their breaks (the paper's
    /// "absorbed in work, forgot about breaks" finding).
    fn effective_activity(
        &self,
        day: u32,
        slot: usize,
        id: AstronautId,
        rng: &mut StdRng,
    ) -> Activity {
        let scheduled = self.schedule.activity(day, slot, id);
        if scheduled == Activity::Break && slot > 0 && slot + 1 < SLOTS_PER_DAY {
            let before = self.schedule.activity(day, slot - 1, id);
            let focus = matches!(
                before,
                Activity::Work(RoomId::Office) | Activity::Work(RoomId::Workshop)
            );
            if focus && rng.gen::<f64>() < 0.65 {
                return before; // keeps working through the break
            }
        }
        scheduled
    }

    #[allow(clippy::too_many_arguments)]
    fn simulate_slot(
        &self,
        day: u32,
        slot: usize,
        builders: &mut [TraceBuilder],
        speech: &mut Vec<SpeechSegment>,
        meetings: &mut Vec<TruthMeeting>,
        rng: &mut StdRng,
    ) {
        let window = Schedule::slot_interval(day, slot);
        let aboard = self.aboard_at(window.start);
        let talk = self.config.talk_factor(day, self.incidents);
        let mobility_day = self.config.mobility_factor(day);

        let activities: Vec<(AstronautId, Activity)> = aboard
            .iter()
            .map(|&a| (a, self.effective_activity(day, slot, a, rng)))
            .collect();

        let mut plans: Vec<MeetingPlan> = Vec::new();
        let mut engagements: Vec<Vec<Engagement>> = vec![Vec::new(); 6];
        let mut busy: Vec<Vec<Interval>> = vec![Vec::new(); 6];

        // 1. Group meetings: meals in the kitchen, briefings in the hall.
        for (group_act, room) in [
            (Activity::Meal, RoomId::Kitchen),
            (Activity::Briefing, RoomId::Main),
        ] {
            let attendees: Vec<AstronautId> = activities
                .iter()
                .filter(|&&(_, act)| act == group_act)
                .map(|&(a, _)| a)
                .collect();
            if attendees.len() < 2 {
                continue;
            }
            let active = (0.65 * talk).clamp(0.04, 0.85);
            let plan = self.make_meeting(room, window, &attendees, active, 0.0, true, rng);
            let idx = plans.len();
            for &a in &attendees {
                engagements[a.index()].push(Engagement {
                    window,
                    action: Action::Meeting(idx),
                });
                busy[a.index()].push(window);
            }
            plans.push(plan);
        }

        // Break gatherings: sociable astronauts drift to the kitchen.
        {
            let breakers: Vec<AstronautId> = activities
                .iter()
                .filter(|&&(a, act)| {
                    act == Activity::Break
                        && rng.gen::<f64>() < 0.35 + 0.5 * self.roster.member(a).profile.sociability
                })
                .map(|&(a, _)| a)
                .collect();
            if breakers.len() >= 2 {
                let active = (0.58 * talk).clamp(0.04, 0.85);
                let plan =
                    self.make_meeting(RoomId::Kitchen, window, &breakers, active, 0.0, false, rng);
                let idx = plans.len();
                for &a in &breakers {
                    engagements[a.index()].push(Engagement {
                        window,
                        action: Action::Meeting(idx),
                    });
                    busy[a.index()].push(window);
                }
                plans.push(plan);
            }
        }

        // 2. Errands and restroom trips for everyone not in a meeting.
        for &(id, act) in &activities {
            if !busy[id.index()].is_empty() {
                continue;
            }
            let profile = &self.roster.member(id).profile;
            let room = act.room();
            if matches!(act, Activity::Work(_)) {
                let p_err = if matches!(room, RoomId::Office | RoomId::Workshop) {
                    self.config.errand_prob_focus
                } else {
                    self.config.errand_prob_other
                } * (0.2 + 1.5 * profile.mobility)
                    * mobility_day;
                if rng.gen::<f64>() < p_err {
                    let target_room = if rng.gen::<f64>() < 0.78 {
                        RoomId::Kitchen
                    } else {
                        RoomId::Storage
                    };
                    let dur = SimDuration::from_secs(rng.gen_range(25..75));
                    if let Some(iv) = reserve(&mut busy[id.index()], window, dur, rng) {
                        engagements[id.index()].push(Engagement {
                            window: iv,
                            action: Action::Errand(self.sample_station(
                                target_room,
                                profile.impaired,
                                rng,
                            )),
                        });
                    }
                }
            }
            // The commander's supervision rounds: brief visits to wherever
            // the others are working — what makes B "the person who was the
            // most central and available to the others".
            if self.roster.member(id).role == crate::roster::Role::Commander
                && matches!(act, Activity::Work(_))
                && rng.gen::<f64>() < 0.22
            {
                let other_rooms: Vec<RoomId> = activities
                    .iter()
                    .filter(|&&(o, a2)| o != id && matches!(a2, Activity::Work(_)))
                    .map(|&(_, a2)| a2.room())
                    .collect();
                if !other_rooms.is_empty() {
                    let room2 = other_rooms[rng.gen_range(0..other_rooms.len())];
                    let dur = SimDuration::from_secs(rng.gen_range(200..420));
                    if let Some(iv) = reserve(&mut busy[id.index()], window, dur, rng) {
                        engagements[id.index()].push(Engagement {
                            window: iv,
                            action: Action::Errand(self.sample_station(room2, false, rng)),
                        });
                    }
                }
            }
            if act.badge_worn() && rng.gen::<f64>() < self.config.restroom_prob {
                let dur = SimDuration::from_secs(rng.gen_range(150..420));
                if let Some(iv) = reserve(&mut busy[id.index()], window, dur, rng) {
                    engagements[id.index()].push(Engagement {
                        window: iv,
                        action: Action::Errand(self.sample_station(RoomId::Restroom, false, rng)),
                    });
                }
            }
        }

        // 3. Pairwise chats among co-located workers.
        let mut by_room: std::collections::BTreeMap<RoomId, Vec<AstronautId>> = Default::default();
        for &(id, act) in &activities {
            if matches!(act, Activity::Work(_)) {
                by_room.entry(act.room()).or_default().push(id);
            }
        }
        for (room, group) in &by_room {
            if *room == RoomId::Hangar {
                continue;
            }
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    let (x, y) = (group[i], group[j]);
                    let rate = self.config.chat_rate * self.roster.affinity(x, y) * talk;
                    let n = sample_poisson(rate, rng);
                    for _ in 0..n {
                        let dur = SimDuration::from_secs(rng.gen_range(60..300));
                        let Some(iv) =
                            reserve_pair(&mut busy, x.index(), y.index(), window, dur, rng)
                        else {
                            continue;
                        };
                        let active = (0.68 * talk.max(0.25)).clamp(0.04, 0.85);
                        let plan = self.make_meeting(*room, iv, &[x, y], active, 0.0, false, rng);
                        let idx = plans.len();
                        for a in [x, y] {
                            engagements[a.index()].push(Engagement {
                                window: iv,
                                action: Action::Meeting(idx),
                            });
                        }
                        plans.push(plan);
                    }
                }
            }
        }

        // 4. A's screen reader during desk work.
        for &(id, act) in &activities {
            let profile = &self.roster.member(id).profile;
            if profile.uses_screen_reader && matches!(act, Activity::Work(_)) {
                let n = sample_poisson(1.1, rng);
                for _ in 0..n {
                    let dur = SimDuration::from_secs(rng.gen_range(30..120));
                    if let Some(iv) = reserve(&mut busy[id.index()], window, dur, rng) {
                        engagements[id.index()].push(Engagement {
                            window: iv,
                            action: Action::Listen,
                        });
                        conversation::generate_screen_reader(id, iv, rng, speech);
                    }
                }
            }
        }

        // 5. Execute every astronaut's slot.
        for &(id, act) in &activities {
            let room = act.room();
            let b = &mut builders[id.index()];
            // Wear state for the slot.
            if day >= 2 {
                // Occasional whole-morning charger-forgetting and early
                // battery deaths keep badges "active" for only ~84 % of
                // daytime, as in the deployment.
                let (morning_dock, evening_dead) = self.wear_failures(day, id);
                if !act.badge_worn() || (morning_dock && slot < 11) || (evening_dead && slot >= 23)
                {
                    b.set_wear(WearState::Docked);
                } else if rng.gen::<f64>() < self.config.nowear_prob(day)
                    && matches!(act, Activity::Work(_))
                {
                    // Takes the badge off at the bench on arrival.
                    let bench = self.sample_station(room, false, rng);
                    b.set_wear(WearState::LeftAt(bench));
                } else {
                    b.set_wear(WearState::Worn);
                }
            }
            let mut engs = std::mem::take(&mut engagements[id.index()]);
            engs.sort_by_key(|e| e.window.start);
            for eng in &engs {
                self.filler(b, room, eng.window.start, rng, id);
                match eng.action {
                    Action::Meeting(idx) => {
                        let seat = plans[idx]
                            .seats
                            .iter()
                            .find(|(a, _, _)| *a == id)
                            .map(|&(_, p, f)| (p, f))
                            .expect("seat assigned");
                        let wp = self.route_points(b.pos, seat.0);
                        let arrival = b.walk(&wp);
                        plans[idx].arrivals.push(arrival);
                        b.dwell_until(eng.window.end.max(b.t), seat.1);
                    }
                    Action::Errand(target) => {
                        let wp = self.route_points(b.pos, target);
                        b.walk(&wp);
                        b.dwell_until(eng.window.end.max(b.t), b.facing);
                    }
                    Action::Listen => {
                        b.dwell_until(eng.window.end.max(b.t), b.facing);
                    }
                }
            }
            self.filler(b, room, window.end, rng, id);
        }

        // 6. Emit meeting conversations and ledger entries.
        for plan in plans {
            self.emit_meeting(plan, speech, meetings, rng);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_meeting(
        &self,
        room: RoomId,
        window: Interval,
        attendees: &[AstronautId],
        active_fraction: f64,
        level_adj: f64,
        planned: bool,
        rng: &mut StdRng,
    ) -> MeetingPlan {
        let center = if room == RoomId::Kitchen {
            // The kitchen table.
            let c = self.plan.room_center(room);
            Point2::new(c.x, c.y - 0.4)
        } else {
            self.plan.room_center(room)
        };
        let n = attendees.len().max(1);
        let radius = if n <= 2 { 0.55 } else { 1.2 };
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let seats = attendees
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let theta = phase + std::f64::consts::TAU * i as f64 / n as f64;
                let seat = center + Vec2::from_angle(theta) * radius;
                let seat = self.plan.room_polygon(room).clamp_inside(seat);
                let facing = (center - seat).angle();
                (a, seat, facing)
            })
            .collect();
        MeetingPlan {
            room,
            window,
            seats,
            active_fraction,
            level_adj,
            planned,
            arrivals: Vec::new(),
        }
    }

    fn emit_meeting(
        &self,
        plan: MeetingPlan,
        speech: &mut Vec<SpeechSegment>,
        meetings: &mut Vec<TruthMeeting>,
        rng: &mut StdRng,
    ) {
        let settled = plan
            .arrivals
            .iter()
            .copied()
            .max()
            .unwrap_or(plan.window.start)
            + SimDuration::from_secs(15);
        let conv_end = plan.window.end - SimDuration::from_secs(10);
        let participants: Vec<AstronautId> = plan.seats.iter().map(|&(a, _, _)| a).collect();
        let mut mean_level = 0.0;
        if settled < conv_end && participants.len() >= 2 {
            let spec = ConversationSpec {
                participants: participants
                    .iter()
                    .map(|&a| Participant::from_member(self.roster.member(a)))
                    .collect(),
                window: Interval::new(settled, conv_end),
                active_fraction: plan.active_fraction,
                level_adjust_db: plan.level_adj,
            };
            conversation::generate(&spec, rng, speech);
            mean_level = spec
                .participants
                .iter()
                .map(|p| p.level_db + plan.level_adj)
                .sum::<f64>()
                / spec.participants.len() as f64;
        }
        meetings.push(TruthMeeting {
            room: plan.room,
            interval: plan.window,
            participants,
            planned: plan.planned,
            level_db: mean_level,
        });
    }

    /// Fills the time until `until` with workstation movement in `room`.
    fn filler(
        &self,
        b: &mut TraceBuilder,
        room: RoomId,
        until: SimTime,
        rng: &mut StdRng,
        id: AstronautId,
    ) {
        let profile = &self.roster.member(id).profile;
        let mean_dwell = self.config.station_dwell_base_s / (0.15 + 3.2 * profile.mobility);
        loop {
            let remaining = until - b.t;
            if remaining < SimDuration::from_secs(12) {
                b.dwell_until(until.max(b.t), b.facing);
                return;
            }
            // Move into (or within) the room to a workstation; restless
            // astronauts change stations far more often.
            let in_room = self.plan.room_at(b.pos) == Some(room);
            if !in_room || rng.gen::<f64>() < 0.10 + 0.95 * profile.mobility {
                // Restless astronauts roam the whole room; cautious ones pick
                // the nearest of two candidate stations.
                let c1 = self.sample_station(room, profile.impaired, rng);
                let c2 = self.sample_station(room, profile.impaired, rng);
                let (near, far) = if b.pos.distance(c1) <= b.pos.distance(c2) {
                    (c1, c2)
                } else {
                    (c2, c1)
                };
                let station = if rng.gen::<f64>() < profile.mobility {
                    far
                } else {
                    near
                };
                // The most restless astronauts pace via a detour point.
                if rng.gen::<f64>() < (profile.mobility - 0.55).max(0.0) {
                    let detour = self.sample_station(room, profile.impaired, rng);
                    let wp = self.route_points(b.pos, detour);
                    b.walk(&wp);
                }
                let wp = self.route_points(b.pos, station);
                b.walk(&wp);
            }
            if b.t >= until {
                return;
            }
            let dwell = SimDuration::from_secs_f64(
                (mean_dwell * (0.35 + 1.3 * rng.gen::<f64>())).clamp(20.0, 1500.0),
            )
            .min(until - b.t);
            b.dwell_until(b.t + dwell, rng.gen_range(0.0..std::f64::consts::TAU));
        }
    }

    /// A workstation point inside a room. The impaired astronaut keeps to the
    /// middle, away from corners — the Fig. 3 heatmap signature.
    fn sample_station(&self, room: RoomId, impaired: bool, rng: &mut StdRng) -> Point2 {
        let poly = self.plan.room_polygon(room);
        let (min, max) = poly.bounds();
        let margin = 0.45;
        let p = Point2::new(
            rng.gen_range(min.x + margin..max.x - margin),
            rng.gen_range(min.y + margin..max.y - margin),
        );
        let p = if impaired {
            let c = poly.centroid();
            c + (p - c) * 0.42
        } else {
            p
        };
        poly.clamp_inside(p)
    }

    /// Door-aware waypoints from a position to a target.
    fn route_points(&self, from: Point2, to: Point2) -> Vec<Point2> {
        let (Some(fr), Some(tr)) = (self.plan.room_at(from), self.plan.room_at(to)) else {
            return vec![to];
        };
        let Some(route) = self.plan.route(fr, tr) else {
            return vec![to];
        };
        let mut pts = Vec::new();
        for pair in route.windows(2) {
            let door = self
                .plan
                .door_between(pair[0], pair[1])
                .expect("adjacent rooms share a door");
            for room in [pair[0], pair[1]] {
                let c = self.plan.room_center(room);
                let dir = (c - door.center).normalized();
                pts.push(door.center + dir * 0.35);
            }
        }
        pts.push(to);
        pts
    }
}

fn sample_poisson(rate: f64, rng: &mut StdRng) -> u64 {
    if rate <= 0.0 {
        return 0;
    }
    Poisson::new(rate).map_or(0, |d| d.sample(rng) as u64)
}

fn overlaps_any(busy: &[Interval], iv: Interval) -> bool {
    busy.iter().any(|b| b.overlaps(&iv))
}

/// Reserves a window of `dur` within `window` avoiding existing busy
/// intervals, with a buffer margin at both slot ends.
fn reserve(
    busy: &mut Vec<Interval>,
    window: Interval,
    dur: SimDuration,
    rng: &mut StdRng,
) -> Option<Interval> {
    let margin = SimDuration::from_secs(90);
    let lo = window.start + margin;
    let hi = window.end - margin - dur;
    if hi <= lo {
        return None;
    }
    for _ in 0..8 {
        let span = (hi - lo).as_micros();
        let start = lo + SimDuration::from_micros(rng.gen_range(0..span.max(1)));
        let iv = Interval::new(start, start + dur);
        if !overlaps_any(busy, iv) {
            busy.push(iv);
            return Some(iv);
        }
    }
    None
}

/// Reserves a joint window for two astronauts.
fn reserve_pair(
    busy: &mut [Vec<Interval>],
    a: usize,
    b: usize,
    window: Interval,
    dur: SimDuration,
    rng: &mut StdRng,
) -> Option<Interval> {
    let margin = SimDuration::from_secs(90);
    let lo = window.start + margin;
    let hi = window.end - margin - dur;
    if hi <= lo {
        return None;
    }
    for _ in 0..8 {
        let span = (hi - lo).as_micros();
        let start = lo + SimDuration::from_micros(rng.gen_range(0..span.max(1)));
        let iv = Interval::new(start, start + dur);
        if !overlaps_any(&busy[a], iv) && !overlaps_any(&busy[b], iv) {
            busy[a].push(iv);
            busy[b].push(iv);
            return Some(iv);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_truth() -> MissionTruth {
        // Full mission is exercised in integration tests; here a fast config.
        let roster = Roster::icares();
        let schedule = Schedule::icares();
        let incidents = IncidentScript::icares();
        let plan = FloorPlan::lunares();
        let sim = BehaviorSim::new(
            &roster,
            &schedule,
            &incidents,
            &plan,
            BehaviorConfig::default(),
        );
        sim.generate()
    }

    #[test]
    fn generates_consistent_mission() {
        let truth = small_truth();
        assert_eq!(truth.astronauts.len(), 6);
        for id in AstronautId::ALL {
            let a = truth.of(id);
            assert!(!a.path.is_empty(), "{id} has a path");
            assert!(!a.on_duty.is_empty());
        }
        assert!(!truth.speech.is_empty());
        assert!(!truth.meetings.is_empty());
    }

    #[test]
    fn determinism_same_seed_same_truth() {
        let a = small_truth();
        let b = small_truth();
        assert_eq!(a.speech.len(), b.speech.len());
        assert_eq!(a.meetings.len(), b.meetings.len());
        assert_eq!(
            a.of(AstronautId::D).path.len(),
            b.of(AstronautId::D).path.len()
        );
    }

    #[test]
    fn c_disappears_after_death() {
        let truth = small_truth();
        let c = truth.of(AstronautId::C);
        let death = SimTime::from_day_hms(4, 15, 0, 0);
        // On duty ends shortly after death.
        assert!(c.on_duty.contains(death - SimDuration::from_hours(1)));
        assert!(!c.on_duty.contains(death + SimDuration::from_hours(1)));
        // No speech from C after the death.
        for s in &truth.speech {
            if s.source == crate::truth::VoiceSource::Astronaut(AstronautId::C) {
                assert!(s.interval.start < death + SimDuration::from_mins(6));
            }
        }
    }

    #[test]
    fn consolation_meeting_exists_and_is_quiet() {
        let truth = small_truth();
        let death = SimTime::from_day_hms(4, 15, 0, 0);
        let consolation = truth
            .meetings
            .iter()
            .find(|m| {
                !m.planned
                    && m.room == RoomId::Kitchen
                    && m.participants.len() == 5
                    && m.interval.start > death
                    && m.interval.start < death + SimDuration::from_mins(30)
            })
            .expect("consolation meeting recorded");
        // Quieter than a lunch meeting.
        let lunch = truth
            .meetings
            .iter()
            .find(|m| {
                m.planned
                    && m.room == RoomId::Kitchen
                    && m.interval.start == SimTime::from_day_hms(4, 12, 30, 0)
            })
            .expect("day-4 lunch recorded");
        assert!(lunch.level_db - consolation.level_db > 5.0);
    }

    #[test]
    fn spe_drill_musters_the_crew_within_the_alert_budget() {
        let roster = Roster::icares();
        let schedule = Schedule::icares();
        let at = SimTime::from_day_hms(2, 10, 5, 0);
        let shelter = RoomId::Storage;
        let incidents = IncidentScript::icares()
            .with(crate::incidents::Incident::SpeShelterDrill { at, shelter });
        let plan = FloorPlan::lunares();
        let sim = BehaviorSim::new(
            &roster,
            &schedule,
            &incidents,
            &plan,
            BehaviorConfig::default(),
        );
        let truth = sim.generate_through(2);
        // The muster meeting is recorded: unplanned, in the shelter, whole
        // crew, starting at the alert.
        let muster = truth
            .meetings
            .iter()
            .find(|m| !m.planned && m.room == shelter && m.interval.start == at)
            .expect("drill muster recorded");
        assert_eq!(muster.participants.len(), 6);
        // Every astronaut starts moving within the 60 s alert budget and is
        // sheltered before the window closes.
        let budget = SimDuration::from_secs(60);
        for id in AstronautId::ALL {
            let a = truth.of(id);
            assert!(
                a.walking
                    .intervals()
                    .iter()
                    .any(|w| w.start > at && w.start < at + budget),
                "{id} must start moving within 60 s of the alert"
            );
            let settled = a.path.at(muster.interval.end - SimDuration::from_mins(1));
            let pos = settled.expect("path sample").value.pos;
            assert_eq!(plan.room_at(pos), Some(shelter), "{id} sheltered");
        }
        // No drill in the canonical script: day 2 is bit-identical without it.
        let canonical = IncidentScript::icares();
        let base = BehaviorSim::new(
            &roster,
            &schedule,
            &canonical,
            &plan,
            BehaviorConfig::default(),
        );
        let t0 = base.generate_through(1);
        let t1 = sim.generate_through(1);
        assert_eq!(t0.speech.len(), t1.speech.len());
        assert_eq!(t0.meetings.len(), t1.meetings.len());
    }

    #[test]
    fn positions_stay_on_the_floor_plan() {
        let truth = small_truth();
        let plan = FloorPlan::lunares();
        for id in AstronautId::ALL {
            for s in truth.of(id).path.iter().step_by(97) {
                assert!(
                    plan.room_at(s.value.pos).is_some(),
                    "{id} off-plan at {} ({})",
                    s.t,
                    s.value.pos
                );
            }
        }
    }

    #[test]
    fn badges_worn_less_late_in_the_mission() {
        let truth = small_truth();
        let worn_frac = |day: u32| {
            let lo = SimTime::from_day_hms(day, 7, 0, 0);
            let hi = SimTime::from_day_hms(day, 21, 0, 0);
            let mut worn = 0.0;
            let mut total = 0.0;
            for id in [AstronautId::A, AstronautId::B, AstronautId::D] {
                let a = truth.of(id);
                let mut t = lo;
                while t < hi {
                    total += 1.0;
                    if a.wear_state(t).is_worn() {
                        worn += 1.0;
                    }
                    t += SimDuration::from_mins(5);
                }
            }
            worn / total
        };
        let early = worn_frac(2);
        let late = worn_frac(14);
        assert!(early > late + 0.12, "wear must decline: {early} vs {late}");
        assert!(early > 0.6, "early wear {early}");
    }

    #[test]
    fn af_chat_exceeds_de_chat() {
        use crate::truth::VoiceSource;
        let truth = small_truth();
        // Sum the durations of two-person unplanned meetings per pair.
        let pair_time = |x: AstronautId, y: AstronautId| -> f64 {
            truth
                .meetings
                .iter()
                .filter(|m| {
                    !m.planned
                        && m.participants.len() == 2
                        && m.participants.contains(&x)
                        && m.participants.contains(&y)
                })
                .map(|m| m.interval.duration().as_hours_f64())
                .sum()
        };
        let af = pair_time(AstronautId::A, AstronautId::F);
        let de = pair_time(AstronautId::D, AstronautId::E);
        assert!(
            af > de + 2.0,
            "A–F ({af:.1} h) must far exceed D–E ({de:.1} h)"
        );
        let _ = VoiceSource::Astronaut(AstronautId::A);
    }

    #[test]
    fn talk_collapses_on_shortage_day() {
        let truth = small_truth();
        let day_speech = |day: u32| -> f64 {
            let lo = SimTime::from_day_hms(day, 7, 0, 0);
            let hi = SimTime::from_day_hms(day, 21, 0, 0);
            truth
                .speech_in(lo, hi)
                .map(|s| s.interval.duration().as_hours_f64())
                .sum()
        };
        assert!(
            day_speech(11) < 0.45 * day_speech(3),
            "day-11 speech {} vs day-3 {}",
            day_speech(11),
            day_speech(3)
        );
    }

    #[test]
    fn c_walks_most_among_crew_early() {
        let truth = small_truth();
        let frac = |id: AstronautId| {
            let lo = SimTime::from_day_hms(2, 7, 0, 0);
            let hi = SimTime::from_day_hms(4, 14, 0, 0);
            truth
                .of(id)
                .walking
                .clip(lo, hi)
                .total_duration()
                .as_secs_f64()
        };
        let c = frac(AstronautId::C);
        let a = frac(AstronautId::A);
        assert!(c > 1.5 * a, "C ({c}) should out-walk A ({a})");
    }
}
