//! The scripted incidents of ICAres-1.
//!
//! "First, one of the astronauts … was visually impaired … Another astronaut,
//! astronaut C, left the habitat on the fourth day of the mission as
//! virtually dead. … Finally, on the eleventh day of the experiment, an
//! extreme shortage of resources was announced … On the twelfth day … delayed
//! instructions from the mission control contradicted the course of action
//! already taken by the crew."
//!
//! Two further events matter to the *sensing system* rather than the mission:
//! astronaut A accidentally swapped badges with B for one day (the badges
//! were identified only by e-ink numbers A could not read), and F re-used the
//! badge that had belonged to the deceased C.

use crate::roster::AstronautId;
use ares_habitat::rooms::RoomId;
use ares_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// A scripted mission incident.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Incident {
    /// Astronaut "dies" and leaves the mission at the given instant; the crew
    /// holds an unplanned, quiet consolation meeting shortly after.
    Death {
        /// Who leaves.
        who: AstronautId,
        /// Instant of the emulated death.
        at: SimTime,
    },
    /// Extreme resource shortage announced for the whole day: meagre rations
    /// ("under 500 kcal per day"), depressed conversation.
    FoodShortage {
        /// Affected mission day.
        day: u32,
    },
    /// Mission control reprimands the crew (the day-12 delayed-command
    /// conflict); conversation stays depressed, stress surges.
    Reprimand {
        /// Affected mission day.
        day: u32,
    },
    /// Two astronauts wear each other's badges for one whole day.
    BadgeSwap {
        /// Affected mission day.
        day: u32,
        /// The two who swapped.
        pair: [AstronautId; 2],
    },
    /// From this day on, `wearer` uses the badge previously assigned to
    /// `previous_owner`.
    BadgeReuse {
        /// First day of re-use.
        from_day: u32,
        /// Who wears the badge now.
        wearer: AstronautId,
        /// Whose badge it originally was.
        previous_owner: AstronautId,
    },
    /// A solar-particle-event storm-shelter drill: the alert sounds at `at`
    /// and the whole crew must reach the designated shelter room, each
    /// astronaut starting to move within the 60-second alert budget. Used by
    /// generated scenarios to exercise emergency mustering; not part of the
    /// canonical ICAres-1 script.
    SpeShelterDrill {
        /// Instant the alert sounds (within a slot whose index is ≤ 26).
        at: SimTime,
        /// Designated storm-shelter room.
        shelter: RoomId,
    },
    /// A badge fails outright; the wearer switches to one of the six spare
    /// units ("we also provided them with 6 redundant backup badges, in case
    /// their assigned ones failed").
    BadgeFailure {
        /// First day on the backup.
        from_day: u32,
        /// Whose badge failed.
        wearer: AstronautId,
        /// Index of the backup unit taken (0–5, mapping to physical units
        /// 6–11).
        backup_index: u8,
    },
}

/// Which physical unit class an astronaut carries on a day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitSlot {
    /// The primary unit originally assigned to the given astronaut.
    PrimaryOf(AstronautId),
    /// A backup unit by index (0–5).
    Backup(u8),
}

/// The ICAres-1 incident script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentScript {
    incidents: Vec<Incident>,
}

impl IncidentScript {
    /// The canonical script.
    #[must_use]
    pub fn icares() -> Self {
        IncidentScript {
            incidents: vec![
                Incident::Death {
                    who: AstronautId::C,
                    at: SimTime::from_day_hms(4, 15, 0, 0),
                },
                Incident::FoodShortage { day: 11 },
                Incident::Reprimand { day: 12 },
                Incident::BadgeSwap {
                    day: 6,
                    pair: [AstronautId::A, AstronautId::B],
                },
                Incident::BadgeReuse {
                    from_day: 7,
                    wearer: AstronautId::F,
                    previous_owner: AstronautId::C,
                },
            ],
        }
    }

    /// An empty script (for baseline simulations without incidents).
    #[must_use]
    pub fn none() -> Self {
        IncidentScript {
            incidents: Vec::new(),
        }
    }

    /// All incidents.
    #[must_use]
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Adds an incident (builder-style).
    #[must_use]
    pub fn with(mut self, incident: Incident) -> Self {
        self.incidents.push(incident);
        self
    }

    /// The instant `who` leaves the mission, if scripted.
    #[must_use]
    pub fn death_of(&self, who: AstronautId) -> Option<SimTime> {
        self.incidents.iter().find_map(|i| match i {
            Incident::Death { who: w, at } if *w == who => Some(*at),
            _ => None,
        })
    }

    /// The SPE storm-shelter drill scheduled on `day`, if any: the alert
    /// instant and the designated shelter room.
    #[must_use]
    pub fn spe_drill_on(&self, day: u32) -> Option<(SimTime, RoomId)> {
        self.incidents.iter().find_map(|i| match i {
            Incident::SpeShelterDrill { at, shelter } if at.mission_day() == day => {
                Some((*at, *shelter))
            }
            _ => None,
        })
    }

    /// Whether `who` is still aboard at instant `t`.
    #[must_use]
    pub fn is_aboard(&self, who: AstronautId, t: SimTime) -> bool {
        self.death_of(who).is_none_or(|d| t < d)
    }

    /// Mood multiplier applied to conversational activity on a day:
    /// 1.0 normally, strongly depressed on shortage/reprimand days.
    #[must_use]
    pub fn talk_mood(&self, day: u32) -> f64 {
        let mut m = 1.0f64;
        for i in &self.incidents {
            match i {
                Incident::FoodShortage { day: d } if *d == day => m = m.min(0.22),
                Incident::Reprimand { day: d } if *d == day => m = m.min(0.30),
                _ => {}
            }
        }
        m
    }

    /// The physical unit slot `who` carries on `day`: a backup when their
    /// badge failed, otherwise the primary given by
    /// [`worn_badge_owner`](Self::worn_badge_owner).
    #[must_use]
    pub fn worn_unit_slot(&self, who: AstronautId, day: u32) -> UnitSlot {
        for i in &self.incidents {
            if let Incident::BadgeFailure {
                from_day,
                wearer,
                backup_index,
            } = *i
            {
                if wearer == who && day >= from_day {
                    return UnitSlot::Backup(backup_index);
                }
            }
        }
        UnitSlot::PrimaryOf(self.worn_badge_owner(who, day))
    }

    /// The badge-identity mapping for a day: which astronaut's *assigned*
    /// badge `who` is actually wearing. Identity mix-ups are what the
    /// pipeline's anomaly stage must detect and repair.
    #[must_use]
    pub fn worn_badge_owner(&self, who: AstronautId, day: u32) -> AstronautId {
        for i in &self.incidents {
            match *i {
                Incident::BadgeSwap { day: d, pair } if d == day => {
                    if pair[0] == who {
                        return pair[1];
                    }
                    if pair[1] == who {
                        return pair[0];
                    }
                }
                Incident::BadgeReuse {
                    from_day,
                    wearer,
                    previous_owner,
                } if wearer == who && day >= from_day => {
                    return previous_owner;
                }
                _ => {}
            }
        }
        who
    }
}

impl Default for IncidentScript {
    fn default() -> Self {
        IncidentScript::icares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_dies_on_day_four() {
        let s = IncidentScript::icares();
        let d = s.death_of(AstronautId::C).unwrap();
        assert_eq!(d.mission_day(), 4);
        assert!(s.is_aboard(AstronautId::C, SimTime::from_day_hms(4, 12, 0, 0)));
        assert!(!s.is_aboard(AstronautId::C, SimTime::from_day_hms(4, 15, 30, 0)));
        assert!(s.is_aboard(AstronautId::A, SimTime::from_day_hms(14, 20, 0, 0)));
    }

    #[test]
    fn mood_depressed_on_days_11_and_12() {
        let s = IncidentScript::icares();
        assert_eq!(s.talk_mood(5), 1.0);
        assert!(s.talk_mood(11) < 0.3);
        assert!(s.talk_mood(12) < 0.4);
    }

    #[test]
    fn badge_swap_day_six_only() {
        let s = IncidentScript::icares();
        assert_eq!(s.worn_badge_owner(AstronautId::A, 6), AstronautId::B);
        assert_eq!(s.worn_badge_owner(AstronautId::B, 6), AstronautId::A);
        assert_eq!(s.worn_badge_owner(AstronautId::A, 5), AstronautId::A);
        assert_eq!(s.worn_badge_owner(AstronautId::A, 7), AstronautId::A);
    }

    #[test]
    fn f_reuses_cs_badge_from_day_seven() {
        let s = IncidentScript::icares();
        assert_eq!(s.worn_badge_owner(AstronautId::F, 6), AstronautId::F);
        for day in 7..=14 {
            assert_eq!(s.worn_badge_owner(AstronautId::F, day), AstronautId::C);
        }
    }

    #[test]
    fn empty_script_is_neutral() {
        let s = IncidentScript::none();
        assert!(s.death_of(AstronautId::C).is_none());
        assert_eq!(s.talk_mood(11), 1.0);
        assert_eq!(s.worn_badge_owner(AstronautId::F, 10), AstronautId::F);
    }

    #[test]
    fn builder_adds_incidents() {
        let s = IncidentScript::none().with(Incident::FoodShortage { day: 3 });
        assert!(s.talk_mood(3) < 0.5);
    }

    #[test]
    fn spe_drill_lookup_by_day() {
        let at = SimTime::from_day_hms(9, 10, 12, 0);
        let s = IncidentScript::none().with(Incident::SpeShelterDrill {
            at,
            shelter: RoomId::Storage,
        });
        assert_eq!(s.spe_drill_on(9), Some((at, RoomId::Storage)));
        assert_eq!(s.spe_drill_on(8), None);
        // The canonical script carries no drill.
        assert_eq!(IncidentScript::icares().spe_drill_on(9), None);
    }
}
