//! Conversation synthesis: turn-taking speech segments for meetings and
//! chats.
//!
//! A conversation is modeled as an alternating renewal process: utterances of
//! a few seconds, drawn from the participants in proportion to their
//! talkativeness, separated by gaps sized so that the voiced fraction of the
//! conversation window matches a target `active_fraction`. Each utterance
//! carries a per-utterance fundamental frequency (sampled around the
//! speaker's mean F0) and a sound level at 1 m — exactly the features the
//! badge microphone model extracts.

use crate::roster::CrewMember;
use crate::truth::{SpeechSegment, VoiceSource};
use ares_simkit::series::Interval;
use ares_simkit::time::SimDuration;
use rand::Rng;
use rand_distr::{Distribution, Exp, Normal};

/// One speaking participant of a conversation.
#[derive(Debug, Clone, Copy)]
pub struct Participant {
    /// The voice identity.
    pub source: VoiceSource,
    /// Relative propensity to take the floor.
    pub talk_weight: f64,
    /// Mean fundamental frequency (Hz).
    pub f0_hz: f64,
    /// Per-utterance F0 standard deviation (Hz).
    pub f0_sd_hz: f64,
    /// Conversational level at 1 m (dB SPL).
    pub level_db: f64,
}

impl Participant {
    /// Builds a participant from a crew member's profile.
    #[must_use]
    pub fn from_member(m: &CrewMember) -> Self {
        Participant {
            source: VoiceSource::Astronaut(m.id),
            talk_weight: m.profile.talkativeness,
            f0_hz: m.profile.voice_f0_hz,
            f0_sd_hz: m.profile.voice_f0_sd_hz,
            level_db: m.profile.voice_level_db,
        }
    }

    /// The screen-reader voice co-located with an astronaut: flat F0, steady
    /// level.
    #[must_use]
    pub fn screen_reader(owner: crate::roster::AstronautId) -> Self {
        Participant {
            source: VoiceSource::ScreenReader(owner),
            talk_weight: 1.0,
            f0_hz: 150.0,
            f0_sd_hz: 0.8, // synthetic voices barely modulate
            level_db: 62.0,
        }
    }
}

/// Specification of one conversation window.
#[derive(Debug, Clone)]
pub struct ConversationSpec {
    /// Who takes part.
    pub participants: Vec<Participant>,
    /// The conversation window.
    pub window: Interval,
    /// Target voiced fraction of the window, in `(0, 1)`.
    pub active_fraction: f64,
    /// Adjustment to everyone's level (negative for hushed meetings such as
    /// the day-4 consolation gathering).
    pub level_adjust_db: f64,
}

/// Mean utterance length used by the synthesis.
pub const MEAN_UTTERANCE: SimDuration = SimDuration::from_millis(3_800);

/// Generates the speech segments of a conversation, appending to `out`.
///
/// Returns the total voiced duration produced.
///
/// # Panics
///
/// Panics if there are no participants or `active_fraction` is outside
/// `(0, 1)`.
pub fn generate(
    spec: &ConversationSpec,
    rng: &mut impl Rng,
    out: &mut Vec<SpeechSegment>,
) -> SimDuration {
    assert!(!spec.participants.is_empty(), "conversation needs speakers");
    assert!(
        spec.active_fraction > 0.0 && spec.active_fraction < 1.0,
        "active fraction must be in (0,1)"
    );
    let total_weight: f64 = spec.participants.iter().map(|p| p.talk_weight).sum();
    let mean_utt = MEAN_UTTERANCE.as_secs_f64();
    let mean_gap = mean_utt * (1.0 - spec.active_fraction) / spec.active_fraction;
    let gap_dist = Exp::new(1.0 / mean_gap.max(1e-3)).expect("positive rate");
    let utt_dist = Normal::new(mean_utt, mean_utt * 0.45).expect("positive sd");

    let mut voiced = SimDuration::ZERO;
    let mut t = spec.window.start;
    // Lead-in gap so conversations do not all start on the slot boundary.
    t += SimDuration::from_secs_f64(gap_dist.sample(rng) * 0.5);
    while t < spec.window.end {
        // Pick the speaker by weight.
        let mut pick = rng.gen::<f64>() * total_weight;
        let mut speaker = &spec.participants[0];
        for p in &spec.participants {
            pick -= p.talk_weight;
            if pick <= 0.0 {
                speaker = p;
                break;
            }
        }
        let dur = SimDuration::from_secs_f64(utt_dist.sample(rng).clamp(0.8, 12.0));
        let end = (t + dur).min(spec.window.end);
        if end <= t {
            break;
        }
        let f0 = Normal::new(speaker.f0_hz, speaker.f0_sd_hz)
            .expect("positive sd")
            .sample(rng)
            .max(60.0);
        let level = speaker.level_db + spec.level_adjust_db + rng.gen_range(-1.5..1.5);
        out.push(SpeechSegment {
            source: speaker.source,
            interval: Interval::new(t, end),
            level_db: level,
            f0_hz: f0,
        });
        voiced += end - t;
        t = end + SimDuration::from_secs_f64(gap_dist.sample(rng));
    }
    voiced
}

/// Generates a solo screen-reader session: long synthetic utterances with
/// brief pauses, at a flat F0.
pub fn generate_screen_reader(
    owner: crate::roster::AstronautId,
    window: Interval,
    rng: &mut impl Rng,
    out: &mut Vec<SpeechSegment>,
) -> SimDuration {
    let spec = ConversationSpec {
        participants: vec![Participant::screen_reader(owner)],
        window,
        active_fraction: 0.6,
        level_adjust_db: 0.0,
    };
    generate(&spec, rng, out)
}

/// Convenience: the voiced fraction of a window achieved by a set of
/// segments restricted to that window.
#[must_use]
pub fn voiced_fraction(segments: &[SpeechSegment], window: Interval) -> f64 {
    let mut voiced = SimDuration::ZERO;
    for s in segments {
        if let Some(iv) = s.interval.intersect(&window) {
            voiced += iv.duration();
        }
    }
    voiced / window.duration()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::{AstronautId, Roster};
    use ares_simkit::rng::SeedTree;
    use ares_simkit::time::SimTime;

    fn window(mins: i64) -> Interval {
        Interval::new(
            SimTime::EPOCH,
            SimTime::EPOCH + SimDuration::from_mins(mins),
        )
    }

    fn crew_spec(active: f64) -> ConversationSpec {
        let roster = Roster::icares();
        ConversationSpec {
            participants: roster
                .members()
                .iter()
                .map(Participant::from_member)
                .collect(),
            window: window(30),
            active_fraction: active,
            level_adjust_db: 0.0,
        }
    }

    #[test]
    fn voiced_fraction_tracks_target() {
        let mut rng = SeedTree::new(11).stream("conv");
        for target in [0.25, 0.5, 0.7] {
            let spec = crew_spec(target);
            let mut out = Vec::new();
            generate(&spec, &mut rng, &mut out);
            let f = voiced_fraction(&out, spec.window);
            assert!((f - target).abs() < 0.12, "target {target}, got {f}");
        }
    }

    #[test]
    fn talkative_speakers_dominate() {
        let mut rng = SeedTree::new(5).stream("conv2");
        // A long window so the floor-share estimate concentrates: C's talk
        // weight (0.82) over E's (0.55) gives an expected time ratio ≈1.49,
        // and over eight hours the sampling noise cannot erase it.
        let mut spec = crew_spec(0.6);
        spec.window = window(480);
        let mut out = Vec::new();
        generate(&spec, &mut rng, &mut out);
        let talk_time = |id: AstronautId| -> f64 {
            out.iter()
                .filter(|s| s.source == VoiceSource::Astronaut(id))
                .map(|s| s.interval.duration().as_secs_f64())
                .sum()
        };
        assert!(
            talk_time(AstronautId::C) > 1.3 * talk_time(AstronautId::E),
            "C {:.0} s vs E {:.0} s",
            talk_time(AstronautId::C),
            talk_time(AstronautId::E)
        );
    }

    #[test]
    fn segments_stay_inside_window_and_ordered() {
        let mut rng = SeedTree::new(7).stream("conv3");
        let spec = crew_spec(0.5);
        let mut out = Vec::new();
        generate(&spec, &mut rng, &mut out);
        assert!(!out.is_empty());
        let mut prev_end = spec.window.start;
        for s in &out {
            assert!(s.interval.start >= prev_end, "overlapping utterances");
            assert!(s.interval.end <= spec.window.end);
            prev_end = s.interval.start; // only starts must be ordered
        }
    }

    #[test]
    fn f0_reflects_register() {
        let mut rng = SeedTree::new(9).stream("conv4");
        let spec = crew_spec(0.6);
        let mut out = Vec::new();
        generate(&spec, &mut rng, &mut out);
        // Per-utterance F0 is Gaussian with a ±12 % spread, so single
        // utterances legitimately cross the register boundary (B at 215 Hz
        // hits <165 Hz at ≈2σ). The register claim is about the voice, not
        // each draw: the per-speaker mean must sit clearly on its side.
        let mean_f0 = |id: AstronautId| -> f64 {
            let f0s: Vec<f64> = out
                .iter()
                .filter(|s| s.source == VoiceSource::Astronaut(id))
                .map(|s| s.f0_hz)
                .collect();
            assert!(!f0s.is_empty(), "{id:?} never spoke");
            f0s.iter().sum::<f64>() / f0s.len() as f64
        };
        let b = mean_f0(AstronautId::B);
        let e = mean_f0(AstronautId::E);
        assert!(b > 180.0, "B is female register, mean {b:.1}");
        assert!(e < 140.0, "E is male register, mean {e:.1}");
    }

    #[test]
    fn level_adjust_hushes_the_room() {
        let mut rng = SeedTree::new(13).stream("conv5");
        let mut quiet = crew_spec(0.4);
        quiet.level_adjust_db = -9.0;
        let mut out_q = Vec::new();
        generate(&quiet, &mut rng, &mut out_q);
        let loud = crew_spec(0.4);
        let mut out_l = Vec::new();
        generate(&loud, &mut rng, &mut out_l);
        let mean = |v: &[SpeechSegment]| v.iter().map(|s| s.level_db).sum::<f64>() / v.len() as f64;
        assert!(mean(&out_l) - mean(&out_q) > 6.0);
    }

    #[test]
    fn screen_reader_is_flat_pitched() {
        let mut rng = SeedTree::new(17).stream("sr");
        let mut out = Vec::new();
        generate_screen_reader(AstronautId::A, window(10), &mut rng, &mut out);
        assert!(!out.is_empty());
        let f0s: Vec<f64> = out.iter().map(|s| s.f0_hz).collect();
        let mean = f0s.iter().sum::<f64>() / f0s.len() as f64;
        let sd = (f0s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / f0s.len() as f64).sqrt();
        assert!(sd < 3.0, "synthetic voice must be flat, sd {sd}");
        assert!(out.iter().all(|s| s.source.is_synthetic()));
    }
}
