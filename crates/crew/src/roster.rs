//! The ICAres-1 crew: identities, roles and behavioural profiles.
//!
//! The mission had an international crew of six — three women and three men —
//! identified in the paper only as astronauts A through F. The paper's
//! qualitative descriptions pin down each profile:
//!
//! * **A** — visually impaired, no left hand; tended to stay in the middle of
//!   rooms, walked least, close to F; used a screen reader that read texts
//!   aloud (which confused the original conversation analysis).
//! * **B** — Mission Commander; most central and available to the others;
//!   much paperwork in the office; walked little.
//! * **C** — "an energetic conversationalist"; highest talking and walking
//!   fractions; left the habitat "virtually dead" on day 4.
//! * **D** — energetic, walked a lot; the most passive *speaker* during group
//!   meetings.
//! * **E** — reserved; lowest speech and company scores.
//! * **F** — energetic, talkative; especially close to A; re-used C's badge
//!   after the death incident.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An astronaut of the ICAres-1 crew.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AstronautId {
    /// The physically impaired astronaut.
    A,
    /// Mission Commander.
    B,
    /// The astronaut who "dies" on day 4.
    C,
    /// Energetic walker, passive speaker.
    D,
    /// The reserved astronaut.
    E,
    /// Energetic and talkative, close to A.
    F,
}

impl AstronautId {
    /// All six crew members.
    pub const ALL: [AstronautId; 6] = [
        AstronautId::A,
        AstronautId::B,
        AstronautId::C,
        AstronautId::D,
        AstronautId::E,
        AstronautId::F,
    ];

    /// Dense index 0..6.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The single-letter label used in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AstronautId::A => "A",
            AstronautId::B => "B",
            AstronautId::C => "C",
            AstronautId::D => "D",
            AstronautId::E => "E",
            AstronautId::F => "F",
        }
    }
}

impl fmt::Display for AstronautId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Mission role, from the paper's crew description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Leads the mission; paperwork-heavy.
    Commander,
    /// Medical doctor of the crew.
    ChiefMedicalOfficer,
    /// Materials engineering.
    StructuralMaterialScientist,
    /// Runs the biolab experiments.
    Biologist,
    /// Keeps the habitat systems running.
    Engineer,
    /// Runs analytical-lab and rover work.
    Scientist,
}

/// Vocal register, used by the microphone model and the speech pipeline's
/// male/female classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VoiceRegister {
    /// Typical female fundamental frequency (~165–255 Hz).
    Female,
    /// Typical male fundamental frequency (~85–155 Hz).
    Male,
}

/// Behavioural profile driving the agent simulation.
///
/// All rates are relative propensities calibrated so the *pipeline-measured*
/// statistics reproduce the orderings of the paper's Table I and Figs. 4 & 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonalityProfile {
    /// Relative rate of discretionary walking (errands, workstation changes).
    pub mobility: f64,
    /// Relative share of speaking time taken in conversations.
    pub talkativeness: f64,
    /// Propensity to seek/keep company (joins optional gatherings).
    pub sociability: f64,
    /// Mean fundamental voice frequency (Hz).
    pub voice_f0_hz: f64,
    /// Standard deviation of F0 across utterances (Hz); near zero only for
    /// synthetic voices.
    pub voice_f0_sd_hz: f64,
    /// Typical conversational loudness at 1 m (dB SPL).
    pub voice_level_db: f64,
    /// Physically impaired: stays central in rooms, avoids corners, moves
    /// cautiously.
    pub impaired: bool,
    /// Uses a text-to-speech screen reader during solo desk work.
    pub uses_screen_reader: bool,
}

/// One crew member: identity, role and profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrewMember {
    /// The astronaut.
    pub id: AstronautId,
    /// Mission role.
    pub role: Role,
    /// Vocal register (3 female / 3 male in ICAres-1).
    pub register: VoiceRegister,
    /// Behavioural profile.
    pub profile: PersonalityProfile,
}

/// The full crew roster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roster {
    members: Vec<CrewMember>,
}

impl Roster {
    /// The canonical ICAres-1 roster.
    #[must_use]
    pub fn icares() -> Self {
        use AstronautId as Id;
        let member =
            |id: Id, role, register, mobility, talk, soc, f0: f64, level: f64| CrewMember {
                id,
                role,
                register,
                profile: PersonalityProfile {
                    mobility,
                    talkativeness: talk,
                    sociability: soc,
                    voice_f0_hz: f0,
                    voice_f0_sd_hz: f0 * 0.12,
                    voice_level_db: level,
                    impaired: id == Id::A,
                    uses_screen_reader: id == Id::A,
                },
            };
        Roster {
            members: vec![
                // Orderings target Table I: walking C>F>D>E>B>A,
                // talking C>F>A≈D>B>E, company B>D>F>A>E.
                member(
                    Id::A,
                    Role::Biologist,
                    VoiceRegister::Female,
                    0.33,
                    0.62,
                    0.78,
                    205.0,
                    66.0,
                ),
                member(
                    Id::B,
                    Role::Commander,
                    VoiceRegister::Female,
                    0.35,
                    0.58,
                    1.00,
                    215.0,
                    68.0,
                ),
                member(
                    Id::C,
                    Role::Scientist,
                    VoiceRegister::Male,
                    1.00,
                    0.82,
                    0.88,
                    125.0,
                    70.0,
                ),
                member(
                    Id::D,
                    Role::Engineer,
                    VoiceRegister::Female,
                    0.66,
                    0.70,
                    0.93,
                    200.0,
                    67.0,
                ),
                member(
                    Id::E,
                    Role::StructuralMaterialScientist,
                    VoiceRegister::Male,
                    0.52,
                    0.55,
                    0.70,
                    115.0,
                    65.5,
                ),
                member(
                    Id::F,
                    Role::ChiefMedicalOfficer,
                    VoiceRegister::Male,
                    0.80,
                    0.74,
                    0.86,
                    130.0,
                    69.0,
                ),
            ],
        }
    }

    /// All members in [`AstronautId::ALL`] order.
    #[must_use]
    pub fn members(&self) -> &[CrewMember] {
        &self.members
    }

    /// Looks up one member.
    #[must_use]
    pub fn member(&self, id: AstronautId) -> &CrewMember {
        &self.members[id.index()]
    }

    /// Number of crew members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the roster is empty (never, for the canonical roster).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Pairwise affinity (relative propensity, A–F's bond exceeding 1) of two astronauts to
    /// seek each other's company and chat privately.
    ///
    /// Calibrated to the paper's findings: "A and F talked privately with
    /// each other for about 5 h more than D and E during the mission."
    #[must_use]
    pub fn affinity(&self, x: AstronautId, y: AstronautId) -> f64 {
        use AstronautId as Id;
        if x == y {
            return 0.0;
        }
        let pair = |a, b| (x == a && y == b) || (x == b && y == a);
        if pair(Id::A, Id::F) {
            1.30
        } else if pair(Id::D, Id::E) {
            0.35
        } else if x == Id::C || y == Id::C {
            0.72 // C, "an energetic conversationalist", chats with everyone
        } else if x == Id::B || y == Id::B {
            0.66 // the commander keeps company with everyone
        } else {
            0.55
        }
    }
}

impl Default for Roster {
    fn default() -> Self {
        Roster::icares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_six_with_dense_indices() {
        let r = Roster::icares();
        assert_eq!(r.len(), 6);
        for (i, m) in r.members().iter().enumerate() {
            assert_eq!(m.id.index(), i);
        }
    }

    #[test]
    fn gender_balance_is_three_three() {
        let r = Roster::icares();
        let f = r
            .members()
            .iter()
            .filter(|m| m.register == VoiceRegister::Female)
            .count();
        assert_eq!(f, 3);
    }

    #[test]
    fn registers_are_separable_by_f0() {
        let r = Roster::icares();
        for m in r.members() {
            match m.register {
                VoiceRegister::Female => assert!(m.profile.voice_f0_hz > 165.0),
                VoiceRegister::Male => assert!(m.profile.voice_f0_hz < 155.0),
            }
        }
    }

    #[test]
    fn paper_orderings_encoded() {
        use AstronautId as Id;
        let r = Roster::icares();
        let mob = |id: Id| r.member(id).profile.mobility;
        assert!(mob(Id::C) > mob(Id::F) && mob(Id::F) > mob(Id::D));
        assert!(mob(Id::D) > mob(Id::E));
        // A's lowest *measured* walking comes from the impairment behaviour
        // (central stations, short hops), not from raw mobility alone.
        assert!(r.member(Id::A).profile.impaired);
        let talk = |id: Id| r.member(id).profile.talkativeness;
        assert!(talk(Id::C) > talk(Id::F) && talk(Id::F) > talk(Id::A));
        assert!(talk(Id::B) > talk(Id::E));
        let soc = |id: Id| r.member(id).profile.sociability;
        assert!(soc(Id::B) >= soc(Id::D) && soc(Id::D) >= soc(Id::F));
    }

    #[test]
    fn affinity_is_symmetric_and_af_strongest() {
        use AstronautId as Id;
        let r = Roster::icares();
        for x in Id::ALL {
            for y in Id::ALL {
                assert_eq!(r.affinity(x, y), r.affinity(y, x));
            }
            assert_eq!(r.affinity(x, x), 0.0);
        }
        assert!(r.affinity(Id::A, Id::F) > r.affinity(Id::D, Id::E) + 0.5);
    }

    #[test]
    fn a_is_impaired_with_screen_reader() {
        let r = Roster::icares();
        assert!(r.member(AstronautId::A).profile.impaired);
        assert!(r.member(AstronautId::A).profile.uses_screen_reader);
        assert!(!r.member(AstronautId::B).profile.impaired);
    }
}
