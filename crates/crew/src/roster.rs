//! The ICAres-1 crew: identities, roles and behavioural profiles.
//!
//! The mission had an international crew of six — three women and three men —
//! identified in the paper only as astronauts A through F. The paper's
//! qualitative descriptions pin down each profile:
//!
//! * **A** — visually impaired, no left hand; tended to stay in the middle of
//!   rooms, walked least, close to F; used a screen reader that read texts
//!   aloud (which confused the original conversation analysis).
//! * **B** — Mission Commander; most central and available to the others;
//!   much paperwork in the office; walked little.
//! * **C** — "an energetic conversationalist"; highest talking and walking
//!   fractions; left the habitat "virtually dead" on day 4.
//! * **D** — energetic, walked a lot; the most passive *speaker* during group
//!   meetings.
//! * **E** — reserved; lowest speech and company scores.
//! * **F** — energetic, talkative; especially close to A; re-used C's badge
//!   after the death incident.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An astronaut of the ICAres-1 crew.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AstronautId {
    /// The physically impaired astronaut.
    A,
    /// Mission Commander.
    B,
    /// The astronaut who "dies" on day 4.
    C,
    /// Energetic walker, passive speaker.
    D,
    /// The reserved astronaut.
    E,
    /// Energetic and talkative, close to A.
    F,
}

impl AstronautId {
    /// All six crew members.
    pub const ALL: [AstronautId; 6] = [
        AstronautId::A,
        AstronautId::B,
        AstronautId::C,
        AstronautId::D,
        AstronautId::E,
        AstronautId::F,
    ];

    /// Dense index 0..6.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The single-letter label used in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AstronautId::A => "A",
            AstronautId::B => "B",
            AstronautId::C => "C",
            AstronautId::D => "D",
            AstronautId::E => "E",
            AstronautId::F => "F",
        }
    }
}

impl fmt::Display for AstronautId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Mission role, from the paper's crew description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Leads the mission; paperwork-heavy.
    Commander,
    /// Medical doctor of the crew.
    ChiefMedicalOfficer,
    /// Materials engineering.
    StructuralMaterialScientist,
    /// Runs the biolab experiments.
    Biologist,
    /// Keeps the habitat systems running.
    Engineer,
    /// Runs analytical-lab and rover work.
    Scientist,
}

/// Vocal register, used by the microphone model and the speech pipeline's
/// male/female classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VoiceRegister {
    /// Typical female fundamental frequency (~165–255 Hz).
    Female,
    /// Typical male fundamental frequency (~85–155 Hz).
    Male,
}

/// Behavioural profile driving the agent simulation.
///
/// All rates are relative propensities calibrated so the *pipeline-measured*
/// statistics reproduce the orderings of the paper's Table I and Figs. 4 & 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonalityProfile {
    /// Relative rate of discretionary walking (errands, workstation changes).
    pub mobility: f64,
    /// Relative share of speaking time taken in conversations.
    pub talkativeness: f64,
    /// Propensity to seek/keep company (joins optional gatherings).
    pub sociability: f64,
    /// Mean fundamental voice frequency (Hz).
    pub voice_f0_hz: f64,
    /// Standard deviation of F0 across utterances (Hz); near zero only for
    /// synthetic voices.
    pub voice_f0_sd_hz: f64,
    /// Typical conversational loudness at 1 m (dB SPL).
    pub voice_level_db: f64,
    /// Physically impaired: stays central in rooms, avoids corners, moves
    /// cautiously.
    pub impaired: bool,
    /// Uses a text-to-speech screen reader during solo desk work.
    pub uses_screen_reader: bool,
}

/// One crew member: identity, role and profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrewMember {
    /// The astronaut.
    pub id: AstronautId,
    /// Mission role.
    pub role: Role,
    /// Vocal register (3 female / 3 male in ICAres-1).
    pub register: VoiceRegister,
    /// Behavioural profile.
    pub profile: PersonalityProfile,
}

/// The full crew roster, with its stored pairwise affinity matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roster {
    members: Vec<CrewMember>,
    /// Row-major 6×6 table; entry `x.index() * 6 + y.index()`.
    affinity: Vec<f64>,
}

impl Roster {
    /// The canonical ICAres-1 roster — the paper's crew, built from
    /// [`CrewSpec::icares`](crate::spec::CrewSpec::icares).
    ///
    /// Orderings target Table I: walking C>F>D>E>B>A, talking C>F>A≈D>B>E,
    /// company B>D>F>A>E.
    #[must_use]
    pub fn icares() -> Self {
        Roster::from_spec(&crate::spec::CrewSpec::icares())
    }

    /// Builds a roster from a crew spec: six members in
    /// [`AstronautId::ALL`] order plus the affinity table. The F0 standard
    /// deviation is derived as `0.12 · voice_f0_hz` (synthetic voices set it
    /// to ~0 elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if the spec does not hold exactly six members in id order or
    /// a 36-entry affinity table — generated specs are validated upstream.
    #[must_use]
    pub fn from_spec(spec: &crate::spec::CrewSpec) -> Self {
        assert_eq!(spec.members.len(), 6, "crew spec must hold six members");
        assert_eq!(spec.affinity.len(), 36, "affinity must be a 6×6 table");
        let members = spec
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| {
                assert_eq!(m.id.index(), i, "members must be in AstronautId order");
                CrewMember {
                    id: m.id,
                    role: m.role,
                    register: m.register,
                    profile: PersonalityProfile {
                        mobility: m.mobility,
                        talkativeness: m.talkativeness,
                        sociability: m.sociability,
                        voice_f0_hz: m.voice_f0_hz,
                        voice_f0_sd_hz: m.voice_f0_hz * 0.12,
                        voice_level_db: m.voice_level_db,
                        impaired: m.impaired,
                        uses_screen_reader: m.uses_screen_reader,
                    },
                }
            })
            .collect();
        Roster {
            members,
            affinity: spec.affinity.clone(),
        }
    }

    /// All members in [`AstronautId::ALL`] order.
    #[must_use]
    pub fn members(&self) -> &[CrewMember] {
        &self.members
    }

    /// Looks up one member.
    #[must_use]
    pub fn member(&self, id: AstronautId) -> &CrewMember {
        &self.members[id.index()]
    }

    /// Number of crew members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the roster is empty (never, for the canonical roster).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Pairwise affinity (relative propensity, A–F's bond exceeding 1) of two astronauts to
    /// seek each other's company and chat privately — a stored table, so
    /// generated crews can carry arbitrary social structure.
    ///
    /// The canonical table is calibrated to the paper's findings: "A and F
    /// talked privately with each other for about 5 h more than D and E
    /// during the mission."
    #[must_use]
    pub fn affinity(&self, x: AstronautId, y: AstronautId) -> f64 {
        self.affinity[x.index() * 6 + y.index()]
    }
}

impl Default for Roster {
    fn default() -> Self {
        Roster::icares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_six_with_dense_indices() {
        let r = Roster::icares();
        assert_eq!(r.len(), 6);
        for (i, m) in r.members().iter().enumerate() {
            assert_eq!(m.id.index(), i);
        }
    }

    #[test]
    fn gender_balance_is_three_three() {
        let r = Roster::icares();
        let f = r
            .members()
            .iter()
            .filter(|m| m.register == VoiceRegister::Female)
            .count();
        assert_eq!(f, 3);
    }

    #[test]
    fn registers_are_separable_by_f0() {
        let r = Roster::icares();
        for m in r.members() {
            match m.register {
                VoiceRegister::Female => assert!(m.profile.voice_f0_hz > 165.0),
                VoiceRegister::Male => assert!(m.profile.voice_f0_hz < 155.0),
            }
        }
    }

    #[test]
    fn paper_orderings_encoded() {
        use AstronautId as Id;
        let r = Roster::icares();
        let mob = |id: Id| r.member(id).profile.mobility;
        assert!(mob(Id::C) > mob(Id::F) && mob(Id::F) > mob(Id::D));
        assert!(mob(Id::D) > mob(Id::E));
        // A's lowest *measured* walking comes from the impairment behaviour
        // (central stations, short hops), not from raw mobility alone.
        assert!(r.member(Id::A).profile.impaired);
        let talk = |id: Id| r.member(id).profile.talkativeness;
        assert!(talk(Id::C) > talk(Id::F) && talk(Id::F) > talk(Id::A));
        assert!(talk(Id::B) > talk(Id::E));
        let soc = |id: Id| r.member(id).profile.sociability;
        assert!(soc(Id::B) >= soc(Id::D) && soc(Id::D) >= soc(Id::F));
    }

    #[test]
    fn affinity_is_symmetric_and_af_strongest() {
        use AstronautId as Id;
        let r = Roster::icares();
        for x in Id::ALL {
            for y in Id::ALL {
                assert_eq!(r.affinity(x, y), r.affinity(y, x));
            }
            assert_eq!(r.affinity(x, x), 0.0);
        }
        assert!(r.affinity(Id::A, Id::F) > r.affinity(Id::D, Id::E) + 0.5);
    }

    #[test]
    fn stored_affinity_table_matches_the_historical_rule() {
        use AstronautId as Id;
        let r = Roster::icares();
        // The closed-form rule the table replaced, kept as the oracle.
        let rule = |x: Id, y: Id| -> f64 {
            if x == y {
                return 0.0;
            }
            let pair = |a, b| (x == a && y == b) || (x == b && y == a);
            if pair(Id::A, Id::F) {
                1.30
            } else if pair(Id::D, Id::E) {
                0.35
            } else if x == Id::C || y == Id::C {
                0.72
            } else if x == Id::B || y == Id::B {
                0.66
            } else {
                0.55
            }
        };
        for x in Id::ALL {
            for y in Id::ALL {
                assert_eq!(
                    r.affinity(x, y).to_bits(),
                    rule(x, y).to_bits(),
                    "affinity({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn a_is_impaired_with_screen_reader() {
        let r = Roster::icares();
        assert!(r.member(AstronautId::A).profile.impaired);
        assert!(r.member(AstronautId::A).profile.uses_screen_reader);
        assert!(!r.member(AstronautId::B).profile.impaired);
    }
}
