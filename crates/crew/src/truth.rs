//! Ground-truth traces produced by the behaviour simulator.
//!
//! These are the *oracle* of the reproduction: the badge device model samples
//! its sensors from them, and the integration tests validate the sociometric
//! pipeline against them (something the real deployment could never do).

use crate::roster::AstronautId;
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::{Point2, Vec2};
use ares_simkit::series::{Interval, IntervalSet, Series};
use ares_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// A waypoint of an astronaut's trajectory; position between waypoints is
/// linearly interpolated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathPoint {
    /// Position on the floor plan.
    pub pos: Point2,
    /// Facing direction (radians CCW from east).
    pub facing: f64,
}

/// Who (or what) is producing a voice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VoiceSource {
    /// A human astronaut speaking.
    Astronaut(AstronautId),
    /// The text-to-speech screen reader used by the given astronaut — a
    /// synthetic voice with near-constant F0 that confused the original
    /// conversation analysis until the algorithm was fixed.
    ScreenReader(AstronautId),
}

impl VoiceSource {
    /// The astronaut the voice is physically co-located with.
    #[must_use]
    pub fn located_with(self) -> AstronautId {
        match self {
            VoiceSource::Astronaut(a) | VoiceSource::ScreenReader(a) => a,
        }
    }

    /// Whether this is a synthetic voice.
    #[must_use]
    pub fn is_synthetic(self) -> bool {
        matches!(self, VoiceSource::ScreenReader(_))
    }
}

/// One continuous utterance/segment of voiced audio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeechSegment {
    /// Voice source.
    pub source: VoiceSource,
    /// When the voice is active.
    pub interval: Interval,
    /// Sound pressure level at 1 m (dB SPL).
    pub level_db: f64,
    /// Fundamental frequency of this utterance (Hz).
    pub f0_hz: f64,
}

/// Where an astronaut's badge physically is during an episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WearState {
    /// On the neck — follows the astronaut.
    Worn,
    /// Taken off and left at a fixed spot (lab bench, outside the airlock…);
    /// the badge is still recording ("active but not necessarily worn").
    LeftAt(Point2),
    /// Docked at the charging station overnight.
    Docked,
}

impl WearState {
    /// Whether the badge is on-body.
    #[must_use]
    pub fn is_worn(self) -> bool {
        matches!(self, WearState::Worn)
    }
}

/// A meeting recorded by the behaviour simulator (the test oracle for the
/// pipeline's meeting detection).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruthMeeting {
    /// Where it happened.
    pub room: RoomId,
    /// When.
    pub interval: Interval,
    /// Who attended.
    pub participants: Vec<AstronautId>,
    /// Whether it was on the schedule (meals, briefings) or emergent (the
    /// day-4 consolation gathering, spontaneous chats).
    pub planned: bool,
    /// Mean conversational level at 1 m during the meeting (dB SPL).
    pub level_db: f64,
}

/// Full ground truth for one astronaut.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AstronautTruth {
    /// Trajectory waypoints (whole mission).
    pub path: Series<PathPoint>,
    /// Badge wear state as a step function over time.
    pub wear: Series<WearState>,
    /// Intervals the astronaut spent walking (speed above ~0.5 m/s).
    pub walking: IntervalSet,
    /// Intervals the astronaut was awake, aboard and on duty.
    pub on_duty: IntervalSet,
}

impl AstronautTruth {
    /// The astronaut's position at `t` (linear interpolation between
    /// waypoints; clamped to the first/last waypoint outside the range).
    #[must_use]
    pub fn position(&self, t: SimTime) -> Option<Point2> {
        let samples = self.path.samples();
        if samples.is_empty() {
            return None;
        }
        let idx = samples.partition_point(|s| s.t <= t);
        if idx == 0 {
            return Some(samples[0].value.pos);
        }
        if idx == samples.len() {
            return Some(samples[samples.len() - 1].value.pos);
        }
        let (a, b) = (&samples[idx - 1], &samples[idx]);
        let span = (b.t - a.t).as_secs_f64();
        if span <= 0.0 {
            return Some(b.value.pos);
        }
        let f = (t - a.t).as_secs_f64() / span;
        Some(a.value.pos.lerp(b.value.pos, f))
    }

    /// The astronaut's facing direction at `t` (of the most recent waypoint;
    /// while moving the simulator writes motion-aligned facings).
    #[must_use]
    pub fn facing(&self, t: SimTime) -> Option<Vec2> {
        self.path.at(t).map(|s| Vec2::from_angle(s.value.facing))
    }

    /// The badge's wear state at `t` (defaults to docked before the first
    /// episode).
    #[must_use]
    pub fn wear_state(&self, t: SimTime) -> WearState {
        self.wear.at(t).map_or(WearState::Docked, |s| s.value)
    }

    /// The *badge's* position at `t`, which differs from the astronaut's when
    /// the badge is left somewhere or docked.
    #[must_use]
    pub fn badge_position(&self, t: SimTime, station: Point2) -> Option<Point2> {
        match self.wear_state(t) {
            WearState::Worn => self.position(t),
            WearState::LeftAt(p) => Some(p),
            WearState::Docked => Some(station),
        }
    }

    /// Whether the astronaut is walking at `t`.
    #[must_use]
    pub fn is_walking(&self, t: SimTime) -> bool {
        self.walking.contains(t)
    }

    /// A monotone cursor over the trajectory for time-ordered lookups.
    #[must_use]
    pub fn path_cursor(&self) -> PathCursor<'_> {
        PathCursor {
            cur: self.path.cursor(),
        }
    }
}

/// A forward-only trajectory cursor: [`AstronautTruth::position`] and
/// [`AstronautTruth::facing`] with the per-query binary search replaced by a
/// monotone advance. For non-decreasing query times the results are
/// bit-identical to the plain lookups — the interpolation index and the lerp
/// arithmetic are the same, only the search strategy differs.
#[derive(Debug, Clone)]
pub struct PathCursor<'a> {
    cur: ares_simkit::series::SeriesCursor<'a, PathPoint>,
}

impl PathCursor<'_> {
    /// The astronaut's position at `t` (see [`AstronautTruth::position`]);
    /// `t` must be `>=` every previously queried time.
    pub fn position(&mut self, t: SimTime) -> Option<Point2> {
        let samples = self.cur.samples();
        if samples.is_empty() {
            return None;
        }
        let idx = self.cur.bound(t);
        if idx == 0 {
            return Some(samples[0].value.pos);
        }
        if idx == samples.len() {
            return Some(samples[samples.len() - 1].value.pos);
        }
        let (a, b) = (&samples[idx - 1], &samples[idx]);
        let span = (b.t - a.t).as_secs_f64();
        if span <= 0.0 {
            return Some(b.value.pos);
        }
        let f = (t - a.t).as_secs_f64() / span;
        Some(a.value.pos.lerp(b.value.pos, f))
    }

    /// The astronaut's facing at `t` (see [`AstronautTruth::facing`]);
    /// `t` must be `>=` every previously queried time.
    pub fn facing(&mut self, t: SimTime) -> Option<Vec2> {
        self.cur.at(t).map(|s| Vec2::from_angle(s.value.facing))
    }
}

/// Ground truth for the whole mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MissionTruth {
    /// Per-astronaut traces, indexed by [`AstronautId::index`].
    pub astronauts: Vec<AstronautTruth>,
    /// All speech segments, sorted by start time.
    pub speech: Vec<SpeechSegment>,
    /// Meeting ledger, sorted by start time.
    pub meetings: Vec<TruthMeeting>,
}

impl MissionTruth {
    /// Truth for one astronaut.
    #[must_use]
    pub fn of(&self, id: AstronautId) -> &AstronautTruth {
        &self.astronauts[id.index()]
    }

    /// Speech segments overlapping `[from, to)`.
    pub fn speech_in(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &SpeechSegment> {
        let window = Interval::new(from, to);
        // speech is sorted by start; find the window conservatively.
        self.speech
            .iter()
            .take_while(move |s| s.interval.start < to)
            .filter(move |s| s.interval.overlaps(&window))
    }

    /// Total speaking time of a source over the mission.
    #[must_use]
    pub fn speaking_time(&self, source: VoiceSource) -> ares_simkit::time::SimDuration {
        self.speech
            .iter()
            .filter(|s| s.source == source)
            .fold(ares_simkit::time::SimDuration::ZERO, |acc, s| {
                acc + s.interval.duration()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_simkit::time::SimDuration;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn position_interpolates_linearly() {
        let mut truth = AstronautTruth::default();
        truth.path.push(
            t(0),
            PathPoint {
                pos: Point2::new(0.0, 0.0),
                facing: 0.0,
            },
        );
        truth.path.push(
            t(10),
            PathPoint {
                pos: Point2::new(10.0, 0.0),
                facing: 0.0,
            },
        );
        let p = truth.position(t(4)).unwrap();
        assert!((p.x - 4.0).abs() < 1e-9);
        // clamped outside range
        assert_eq!(truth.position(t(-5)).unwrap().x, 0.0);
        assert_eq!(truth.position(t(50)).unwrap().x, 10.0);
    }

    #[test]
    fn empty_path_has_no_position() {
        let truth = AstronautTruth::default();
        assert!(truth.position(t(0)).is_none());
    }

    #[test]
    fn badge_position_follows_wear_state() {
        let mut truth = AstronautTruth::default();
        truth.path.push(
            t(0),
            PathPoint {
                pos: Point2::new(5.0, 5.0),
                facing: 0.0,
            },
        );
        truth.wear.push(t(0), WearState::Worn);
        truth
            .wear
            .push(t(100), WearState::LeftAt(Point2::new(1.0, 1.0)));
        truth.wear.push(t(200), WearState::Docked);
        let station = Point2::new(9.0, 9.0);
        assert_eq!(
            truth.badge_position(t(50), station).unwrap(),
            Point2::new(5.0, 5.0)
        );
        assert_eq!(
            truth.badge_position(t(150), station).unwrap(),
            Point2::new(1.0, 1.0)
        );
        assert_eq!(truth.badge_position(t(250), station).unwrap(), station);
        // Before any wear record: docked.
        assert_eq!(truth.badge_position(t(-10), station).unwrap(), station);
    }

    #[test]
    fn voice_source_classification() {
        let v = VoiceSource::Astronaut(AstronautId::C);
        let s = VoiceSource::ScreenReader(AstronautId::A);
        assert!(!v.is_synthetic());
        assert!(s.is_synthetic());
        assert_eq!(s.located_with(), AstronautId::A);
    }

    #[test]
    fn speech_window_query() {
        let seg = |a: i64, b: i64| SpeechSegment {
            source: VoiceSource::Astronaut(AstronautId::B),
            interval: Interval::new(t(a), t(b)),
            level_db: 60.0,
            f0_hz: 200.0,
        };
        let truth = MissionTruth {
            astronauts: Vec::new(),
            speech: vec![seg(0, 5), seg(10, 20), seg(30, 40)],
            meetings: Vec::new(),
        };
        let hits: Vec<_> = truth.speech_in(t(4), t(15)).collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(
            truth.speaking_time(VoiceSource::Astronaut(AstronautId::B)),
            SimDuration::from_secs(25)
        );
    }
}
