//! The classic evening surveys.
//!
//! "To complement our technical solutions, we also made use of classic
//! surveys … filled in by each astronaut every evening \[which\] questioned
//! their levels of satisfaction, well-being, comfort, productivity, and
//! distraction. Among others, the answers allowed us to interpret and verify
//! the findings obtained through multi-modal sensing."
//!
//! The generator derives each astronaut's Likert responses from the same
//! latent state that drives behaviour — mission-phase fatigue, the incident
//! script's mood, badge discomfort — plus reporting noise and a per-person
//! response bias (the very bias the paper cites as the weakness of
//! self-reports). The pipeline's validation stage then cross-checks sensor
//! findings against these series, as the deployment did.

use crate::incidents::IncidentScript;
use crate::roster::{AstronautId, Roster};
use crate::schedule::MISSION_DAYS;
use ares_simkit::rng::SeedTree;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// One astronaut's evening questionnaire for one day, on 1–7 Likert scales.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyResponse {
    /// Mission day (2–14; day 1 had no surveys, like no badges).
    pub day: u32,
    /// Who answered.
    pub astronaut: AstronautId,
    /// Overall satisfaction with the day.
    pub satisfaction: f64,
    /// Physical/mental well-being.
    pub well_being: f64,
    /// Comfort (habitat and equipment, including the badge on the neck).
    pub comfort: f64,
    /// Self-assessed productivity.
    pub productivity: f64,
    /// Self-assessed distraction.
    pub distraction: f64,
}

/// Survey-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyConfig {
    /// Reporting noise (Likert points, 1σ).
    pub noise_sd: f64,
    /// Daily morale decay after day 2 (the isolation wearing on the crew).
    pub morale_decay_per_day: f64,
    /// Comfort penalty growth from badge annoyance ("the participants
    /// complained about the badge hanging on their neck").
    pub badge_annoyance_per_day: f64,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            noise_sd: 0.5,
            morale_decay_per_day: 0.09,
            badge_annoyance_per_day: 0.12,
        }
    }
}

fn clamp_likert(x: f64) -> f64 {
    x.clamp(1.0, 7.0)
}

/// Generates the full mission's survey responses.
#[must_use]
pub fn generate(
    roster: &Roster,
    incidents: &IncidentScript,
    config: &SurveyConfig,
    seed: &SeedTree,
) -> Vec<SurveyResponse> {
    let mut rng = seed.child("crew").stream("surveys");
    let noise = Normal::new(0.0, config.noise_sd).expect("sd > 0");
    let mut out = Vec::new();
    for day in 2..=MISSION_DAYS {
        let mood = incidents.talk_mood(day); // 1.0 normal, ≈0.22 on day 11
        let decay = config.morale_decay_per_day * f64::from(day - 2);
        for member in roster.members() {
            let id = member.id;
            if !incidents.is_aboard(id, ares_simkit::time::SimTime::from_day_hms(day, 20, 0, 0)) {
                continue;
            }
            // Per-person stable response bias (acquiescence/optimism).
            let bias = 0.45 * (f64::from(id.index() as u32) - 2.5) / 2.5;
            // The death of a crewmate weighs on everyone for a few days.
            let grief = match incidents.death_of(AstronautId::C) {
                Some(t) if day >= t.mission_day() && day <= t.mission_day() + 2 => 1.0,
                _ => 0.0,
            };
            let base = 5.4 - decay + bias;
            let satisfaction =
                clamp_likert(base - 2.6 * (1.0 - mood) - 0.9 * grief + noise.sample(&mut rng));
            let well_being =
                clamp_likert(base - 1.8 * (1.0 - mood) - 1.2 * grief + noise.sample(&mut rng));
            let comfort = clamp_likert(
                5.6 + bias - config.badge_annoyance_per_day * f64::from(day - 2)
                    + noise.sample(&mut rng),
            );
            let productivity = clamp_likert(
                base + 0.6 * member.profile.mobility - 1.4 * (1.0 - mood) + noise.sample(&mut rng),
            );
            let distraction = clamp_likert(
                2.4 + 2.1 * (1.0 - mood) + 0.9 * grief - bias + noise.sample(&mut rng),
            );
            out.push(SurveyResponse {
                day,
                astronaut: id,
                satisfaction,
                well_being,
                comfort,
                productivity,
                distraction,
            });
        }
    }
    out
}

/// Crew-mean of one survey dimension on a day.
#[must_use]
pub fn daily_mean(
    surveys: &[SurveyResponse],
    day: u32,
    f: impl Fn(&SurveyResponse) -> f64,
) -> Option<f64> {
    let vals: Vec<f64> = surveys.iter().filter(|s| s.day == day).map(f).collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surveys() -> Vec<SurveyResponse> {
        generate(
            &Roster::icares(),
            &IncidentScript::icares(),
            &SurveyConfig::default(),
            &SeedTree::new(7),
        )
    }

    #[test]
    fn everyone_answers_until_they_leave() {
        let s = surveys();
        // Days 2–3: 6 respondents; from day 4 (C leaves at 15:00, before
        // the evening questionnaire): 5.
        for day in 2..=14u32 {
            let n = s.iter().filter(|r| r.day == day).count();
            let expected = if day <= 3 { 6 } else { 5 };
            assert_eq!(n, expected, "day {day}");
        }
    }

    #[test]
    fn all_values_are_likert() {
        for r in surveys() {
            for v in [
                r.satisfaction,
                r.well_being,
                r.comfort,
                r.productivity,
                r.distraction,
            ] {
                assert!((1.0..=7.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn shortage_day_craters_satisfaction_and_spikes_distraction() {
        let s = surveys();
        let sat = |d| daily_mean(&s, d, |r| r.satisfaction).unwrap();
        let dis = |d| daily_mean(&s, d, |r| r.distraction).unwrap();
        assert!(
            sat(11) < sat(9) - 1.0,
            "day 11 {} vs day 9 {}",
            sat(11),
            sat(9)
        );
        assert!(dis(11) > dis(9) + 0.8);
    }

    #[test]
    fn comfort_declines_with_badge_annoyance() {
        let s = surveys();
        let early = daily_mean(&s, 3, |r| r.comfort).unwrap();
        let late = daily_mean(&s, 14, |r| r.comfort).unwrap();
        assert!(early > late + 0.7, "comfort {early} → {late}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = surveys();
        let b = surveys();
        assert_eq!(a, b);
        let c = generate(
            &Roster::icares(),
            &IncidentScript::icares(),
            &SurveyConfig::default(),
            &SeedTree::new(8),
        );
        assert_ne!(a, c);
    }
}
