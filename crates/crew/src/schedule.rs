//! The mission schedule: 14 days × 30-minute slots.
//!
//! "All of the activities had been determined a priori and organized into a
//! strict and precise plan, divided into 30 min slots. Each crew member was
//! expected to follow their own schedule for a given day, which regulated
//! 14 h of daytime and included only two 30 min-long breaks. While 1.5 h in
//! total was spent on eating meals, for the remaining 11.5 h the astronauts
//! were supposed to work on their tasks."

use crate::roster::AstronautId;
use ares_habitat::rooms::RoomId;
use ares_simkit::series::Interval;
use ares_simkit::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Number of mission days (two terrestrial weeks).
pub const MISSION_DAYS: u32 = 14;
/// Daytime start (astronauts wake and badge-wearing begins).
pub const DAY_START_H: u32 = 7;
/// Daytime end (badges go to the charging station overnight).
pub const DAY_END_H: u32 = 21;
/// One schedule slot.
pub const SLOT: SimDuration = SimDuration::from_mins(30);
/// Slots per 14-hour day.
pub const SLOTS_PER_DAY: usize = 28;

/// What an astronaut is scheduled to do in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Individual or paired scientific/engineering work in a given room.
    Work(RoomId),
    /// Shared meal in the kitchen.
    Meal,
    /// Morning briefing or evening debriefing in the main hall.
    Briefing,
    /// Free break (astronauts gravitate to the kitchen or main hall).
    Break,
    /// Extravehicular-activity preparation (storage/airlock, ~30 min).
    EvaPrep,
    /// EVA proper, on the hangar's emulated Martian surface — badges are
    /// *not* worn.
    Eva,
    /// Post-EVA procedures (~30 min).
    EvaPost,
    /// Physical exercise — badges are not worn.
    Exercise,
    /// Asleep / off-duty (badge charging).
    Sleep,
}

impl Activity {
    /// The room where this activity takes place.
    #[must_use]
    pub fn room(self) -> RoomId {
        match self {
            Activity::Work(r) => r,
            Activity::Meal | Activity::Break => RoomId::Kitchen,
            Activity::Briefing => RoomId::Main,
            Activity::EvaPrep | Activity::EvaPost => RoomId::Airlock,
            Activity::Eva => RoomId::Hangar,
            Activity::Exercise => RoomId::Storage, // the gym corner of storage
            Activity::Sleep => RoomId::Bedroom,
        }
    }

    /// Whether a badge is worn during this activity. EVAs (outdoor suit),
    /// exercise and sleep are the paper's systematic no-wear periods.
    #[must_use]
    pub fn badge_worn(self) -> bool {
        !matches!(self, Activity::Eva | Activity::Exercise | Activity::Sleep)
    }

    /// Whether the slot is a group activity involving the whole crew.
    #[must_use]
    pub fn is_group(self) -> bool {
        matches!(self, Activity::Meal | Activity::Briefing)
    }
}

/// A slot in one astronaut's day plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slot {
    /// Slot index within the day, `0..SLOTS_PER_DAY`.
    pub index: usize,
    /// Scheduled activity.
    pub activity: Activity,
}

/// The full mission schedule: for each day and astronaut, 28 slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// `plans[day-1][astronaut][slot]`.
    plans: Vec<[[Activity; SLOTS_PER_DAY]; 6]>,
}

impl Schedule {
    /// Builds the canonical ICAres-1 schedule — exactly
    /// [`Schedule::from_spec`] over
    /// [`ScheduleSpec::icares`](crate::spec::ScheduleSpec::icares).
    ///
    /// The structure of every day: briefing 08:00, meals at 07:00, 12:30 and
    /// 18:30 (1.5 h total), breaks at 10:30 and 16:00, a debriefing at 20:30,
    /// and the remaining slots filled with role-specific work. EVAs (prep +
    /// EVA + post) are scheduled for rotating pairs on days 3, 5, 6, 8, 9,
    /// 10 and 13.
    #[must_use]
    pub fn icares() -> Self {
        Self::from_spec(&crate::spec::ScheduleSpec::icares())
    }

    /// Builds a schedule from a spec: the fixed day frame plus the spec's
    /// work rotations, exercise slot and EVA calendar.
    #[must_use]
    pub fn from_spec(spec: &crate::spec::ScheduleSpec) -> Self {
        let mut plans = Vec::with_capacity(MISSION_DAYS as usize);
        for day in 1..=MISSION_DAYS {
            let mut day_plan = [[Activity::Break; SLOTS_PER_DAY]; 6];
            for ast in AstronautId::ALL {
                let plan = &mut day_plan[ast.index()];
                for (slot, entry) in plan.iter_mut().enumerate() {
                    *entry = Self::base_activity(spec, day, slot, ast);
                }
            }
            // EVA pairs: (day, [two astronauts]) — slots 14..17 (14:00-16:00:
            // prep, EVA, EVA, post). They replace whatever work was there.
            if let Some(pair) = spec.eva_pair_on(day) {
                for ast in pair {
                    let plan = &mut day_plan[ast.index()];
                    plan[14] = Activity::EvaPrep;
                    plan[15] = Activity::Eva;
                    plan[16] = Activity::Eva;
                    plan[17] = Activity::EvaPost;
                }
            }
            plans.push(day_plan);
        }
        Schedule { plans }
    }

    /// The EVA pair for a day, if any.
    #[must_use]
    pub fn eva_pair(day: u32) -> Option<[AstronautId; 2]> {
        use AstronautId as Id;
        match day {
            3 => Some([Id::C, Id::D]),
            5 => Some([Id::D, Id::F]),
            6 => Some([Id::B, Id::E]),
            8 => Some([Id::A, Id::F]),
            9 => Some([Id::D, Id::E]),
            10 => Some([Id::B, Id::F]),
            13 => Some([Id::A, Id::D]),
            _ => None,
        }
    }

    fn base_activity(
        spec: &crate::spec::ScheduleSpec,
        day: u32,
        slot: usize,
        ast: AstronautId,
    ) -> Activity {
        // Common frame of the day (slot 0 = 07:00).
        match slot {
            0 => return Activity::Meal,      // breakfast 07:00
            2 => return Activity::Briefing,  // 08:00
            7 => return Activity::Break,     // 10:30
            11 => return Activity::Meal,     // lunch 12:30
            18 => return Activity::Break,    // 16:00
            23 => return Activity::Meal,     // dinner 18:30
            27 => return Activity::Briefing, // debrief 20:30
            _ => {}
        }
        // Exercise: one slot, staggered across crew, three times a week.
        if day % 2 == ast.index() as u32 % 2 && slot == spec.exercise_slot {
            return Activity::Exercise;
        }
        // Work rooms rotated by slot block so everyone moves around during
        // the day. The canonical rotations are chosen so A and F share most
        // work blocks (their bond shows in the pairwise meeting hours) while
        // D and E overlap only occasionally.
        let block = slot / 4 + day as usize; // slow rotation across days
        let rooms: [RoomId; 3] = spec.work_rooms[ast.index()];
        let room = rooms[block % 3];
        // Biolab protocols run shorter than a full 2 h block (the paper's
        // ≈2.5 h biolab stays): the block's last slot moves to the
        // astronaut's next station to write up results.
        if room == RoomId::Biolab && slot % 4 == 3 {
            return Activity::Work(rooms[(block + 1) % 3]);
        }
        Activity::Work(room)
    }

    /// The scheduled activity for `ast` on `day` (1-based) in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `day` or `slot` is out of range.
    #[must_use]
    pub fn activity(&self, day: u32, slot: usize, ast: AstronautId) -> Activity {
        self.plans[(day - 1) as usize][ast.index()][slot]
    }

    /// The wall-clock interval of `slot` on `day`.
    #[must_use]
    pub fn slot_interval(day: u32, slot: usize) -> Interval {
        let start = SimTime::from_day_hms(day, DAY_START_H, 0, 0) + SLOT * slot as i64;
        Interval::new(start, start + SLOT)
    }

    /// The slot index containing instant `t`, if `t` falls within daytime.
    #[must_use]
    pub fn slot_at(t: SimTime) -> Option<(u32, usize)> {
        let day = t.mission_day();
        if day == 0 || day > MISSION_DAYS {
            return None;
        }
        let day_start = SimTime::from_day_hms(day, DAY_START_H, 0, 0);
        let day_end = SimTime::from_day_hms(day, DAY_END_H, 0, 0);
        if t < day_start || t >= day_end {
            return None;
        }
        let slot = ((t - day_start).as_micros() / SLOT.as_micros()) as usize;
        Some((day, slot))
    }

    /// Daytime interval (07:00–21:00) of a day.
    #[must_use]
    pub fn daytime(day: u32) -> Interval {
        Interval::new(
            SimTime::from_day_hms(day, DAY_START_H, 0, 0),
            SimTime::from_day_hms(day, DAY_END_H, 0, 0),
        )
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::icares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_structure_meals_and_breaks() {
        let s = Schedule::icares();
        for ast in AstronautId::ALL {
            let meals = (0..SLOTS_PER_DAY)
                .filter(|&i| s.activity(2, i, ast) == Activity::Meal)
                .count();
            assert_eq!(meals, 3, "1.5 h of meals for {ast}");
            let breaks = (0..SLOTS_PER_DAY)
                .filter(|&i| s.activity(2, i, ast) == Activity::Break)
                .count();
            assert_eq!(breaks, 2, "two 30-min breaks for {ast}");
        }
    }

    #[test]
    fn lunch_is_at_12_30() {
        let iv = Schedule::slot_interval(4, 11);
        assert_eq!(iv.start, SimTime::from_day_hms(4, 12, 30, 0));
        assert_eq!(iv.duration(), SLOT);
    }

    #[test]
    fn slot_at_round_trips() {
        for slot in 0..SLOTS_PER_DAY {
            let iv = Schedule::slot_interval(6, slot);
            let mid = iv.start + SLOT / 2;
            assert_eq!(Schedule::slot_at(mid), Some((6, slot)));
        }
        assert_eq!(Schedule::slot_at(SimTime::from_day_hms(6, 22, 0, 0)), None);
        assert_eq!(Schedule::slot_at(SimTime::from_day_hms(6, 6, 59, 0)), None);
        assert_eq!(Schedule::slot_at(SimTime::from_day_hms(15, 12, 0, 0)), None);
    }

    #[test]
    fn eva_days_have_full_sequences() {
        let s = Schedule::icares();
        for day in 1..=MISSION_DAYS {
            if let Some(pair) = Schedule::eva_pair(day) {
                for ast in pair {
                    assert_eq!(s.activity(day, 14, ast), Activity::EvaPrep);
                    assert_eq!(s.activity(day, 15, ast), Activity::Eva);
                    assert_eq!(s.activity(day, 17, ast), Activity::EvaPost);
                }
            }
        }
    }

    #[test]
    fn badges_not_worn_during_eva_and_exercise() {
        assert!(!Activity::Eva.badge_worn());
        assert!(!Activity::Exercise.badge_worn());
        assert!(!Activity::Sleep.badge_worn());
        assert!(Activity::Meal.badge_worn());
        assert!(Activity::Work(RoomId::Biolab).badge_worn());
    }

    #[test]
    fn work_rooms_match_roles() {
        let s = Schedule::icares();
        // B (commander) does the most office slots across a sample week.
        let office_slots = |ast: AstronautId| {
            (1..=7u32)
                .flat_map(|d| (0..SLOTS_PER_DAY).map(move |i| (d, i)))
                .filter(|&(d, i)| s.activity(d, i, ast) == Activity::Work(RoomId::Office))
                .count()
        };
        let b = office_slots(AstronautId::B);
        for ast in [AstronautId::C, AstronautId::D, AstronautId::E] {
            assert!(
                b > office_slots(ast),
                "commander outranks {ast} in office time"
            );
        }
    }

    #[test]
    fn from_spec_reproduces_the_hand_built_schedule() {
        use AstronautId as Id;
        // The historical hard-coded builder, kept verbatim as the oracle.
        let oracle = |day: u32, slot: usize, ast: Id| -> Activity {
            match slot {
                0 | 11 | 23 => return Activity::Meal,
                2 | 27 => return Activity::Briefing,
                7 | 18 => return Activity::Break,
                _ => {}
            }
            if day % 2 == ast.index() as u32 % 2 && slot == 20 {
                return Activity::Exercise;
            }
            let block = slot / 4 + day as usize;
            let rooms: [RoomId; 3] = match ast {
                Id::A => [RoomId::Biolab, RoomId::Office, RoomId::Office],
                Id::B => [RoomId::Office, RoomId::Office, RoomId::Workshop],
                Id::C => [RoomId::Biolab, RoomId::Office, RoomId::Storage],
                Id::D => [RoomId::Office, RoomId::Workshop, RoomId::Workshop],
                Id::E => [RoomId::Biolab, RoomId::Workshop, RoomId::Storage],
                Id::F => [RoomId::Biolab, RoomId::Office, RoomId::Workshop],
            };
            let room = rooms[block % 3];
            if room == RoomId::Biolab && slot % 4 == 3 {
                return Activity::Work(rooms[(block + 1) % 3]);
            }
            Activity::Work(room)
        };
        let s = Schedule::icares();
        for day in 1..=MISSION_DAYS {
            for ast in AstronautId::ALL {
                let on_eva = Schedule::eva_pair(day).is_some_and(|p| p.contains(&ast));
                for slot in 0..SLOTS_PER_DAY {
                    let expected = if on_eva && (14..=17).contains(&slot) {
                        [
                            Activity::EvaPrep,
                            Activity::Eva,
                            Activity::Eva,
                            Activity::EvaPost,
                        ][slot - 14]
                    } else {
                        oracle(day, slot, ast)
                    };
                    assert_eq!(
                        s.activity(day, slot, ast),
                        expected,
                        "day {day} slot {slot} {ast}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_slot_has_a_room() {
        let s = Schedule::icares();
        for day in 1..=MISSION_DAYS {
            for ast in AstronautId::ALL {
                for slot in 0..SLOTS_PER_DAY {
                    let _ = s.activity(day, slot, ast).room(); // must not panic
                }
            }
        }
    }
}
