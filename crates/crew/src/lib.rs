//! `ares-crew` — the ICAres-1 crew behaviour simulator.
//!
//! The paper's study population cannot be re-run, so this crate provides the
//! substitute: an agent-based model of the six analog astronauts that
//! produces mission-long *ground truth* — trajectories, speech, badge wear,
//! meetings — with the statistical structure the paper reports. The badge
//! device model (`ares-badge`) samples its sensors from this truth, and the
//! sociometric pipeline (`ares-sociometrics`) is validated against it.
//!
//! * [`roster`] — identities A–F, roles, behavioural profiles, affinities.
//! * [`schedule`] — the strict 14-day × 30-minute-slot plan.
//! * [`incidents`] — scripted events: C's day-4 death, the day-11 food
//!   shortage, the day-12 reprimand, badge swaps and re-use.
//! * [`conversation`] — turn-taking speech synthesis.
//! * [`behavior`] — the slot-structured generator.
//! * [`truth`] — the ground-truth data model and queries.
//!
//! # Examples
//!
//! ```no_run
//! use ares_crew::prelude::*;
//! use ares_habitat::floorplan::FloorPlan;
//!
//! let roster = Roster::icares();
//! let schedule = Schedule::icares();
//! let incidents = IncidentScript::icares();
//! let plan = FloorPlan::lunares();
//! let sim = BehaviorSim::new(&roster, &schedule, &incidents, &plan, BehaviorConfig::default());
//! let truth = sim.generate();
//! assert_eq!(truth.astronauts.len(), 6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod behavior;
pub mod conversation;
pub mod incidents;
pub mod roster;
pub mod schedule;
pub mod spec;
pub mod surveys;
pub mod truth;

/// Convenient glob-import of the most used crew types.
pub mod prelude {
    pub use crate::behavior::{BehaviorConfig, BehaviorSim, CHARGING_STATION};
    pub use crate::incidents::{Incident, IncidentScript};
    pub use crate::roster::{
        AstronautId, CrewMember, PersonalityProfile, Role, Roster, VoiceRegister,
    };
    pub use crate::schedule::{Activity, Schedule, MISSION_DAYS, SLOTS_PER_DAY};
    pub use crate::spec::{CrewSpec, MemberSpec, ScheduleSpec};
    pub use crate::surveys::{SurveyConfig, SurveyResponse};
    pub use crate::truth::{
        AstronautTruth, MissionTruth, PathPoint, SpeechSegment, TruthMeeting, VoiceSource,
        WearState,
    };
}
