//! The firmware recorder: turns ground truth into badge logs, day by day.
//!
//! One [`Recorder::record_day`] call produces the logs of all 13 units for one mission
//! day — every sensor stream sampled at its configured rate, stamped with the
//! unit's drifting local clock. Recording day-by-day keeps memory bounded
//! (the real mission wrote to SD cards; we hand each day to the pipeline and
//! drop it).

use crate::clockdrift::{ClockSet, UNIT_COUNT};
use crate::links;
use crate::mic::{self, MicModel};
use crate::records::{BadgeId, BadgeLog, MissionRecording, SamplingConfig};
use crate::scanner;
use crate::sensors::{self, ImuModel};
use crate::storage::StorageMeter;
use crate::telemetry::TelemetryStore;
use crate::world::World;
use ares_crew::roster::{AstronautId, Roster};
use ares_crew::truth::{MissionTruth, WearState};
use ares_simkit::rng::SeedTree;
use ares_simkit::time::{SimDuration, SimTime};
use rand::Rng;

/// Mission-wide recording context.
#[derive(Debug)]
pub struct Recorder<'a> {
    world: &'a World,
    roster: &'a Roster,
    truth: &'a MissionTruth,
    clocks: ClockSet,
    config: SamplingConfig,
    seed: SeedTree,
    /// Days on which astronaut A's badge sat muffled under the lab apron.
    muffled_days: Vec<u32>,
}

impl<'a> Recorder<'a> {
    /// Creates a recorder; clock drifts and muffle days are drawn from the
    /// seed.
    #[must_use]
    pub fn new(
        world: &'a World,
        roster: &'a Roster,
        truth: &'a MissionTruth,
        config: SamplingConfig,
        seed: SeedTree,
    ) -> Self {
        let clocks = ClockSet::generate(&seed);
        let mut rng = seed.child("badge").stream("muffle");
        let muffled_days = (2..=14u32).filter(|_| rng.gen::<f64>() < 0.35).collect();
        Recorder {
            world,
            roster,
            truth,
            clocks,
            config,
            seed,
            muffled_days,
        }
    }

    /// The clock set in use (tests compare pipeline corrections against it).
    #[must_use]
    pub fn clocks(&self) -> &ClockSet {
        &self.clocks
    }

    /// The sampling configuration.
    #[must_use]
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Records one mission day (1-based) for all units, as row-oriented
    /// [`BadgeLog`]s — a thin façade over [`record_day_stores`].
    ///
    /// [`record_day_stores`]: Recorder::record_day_stores
    #[must_use]
    pub fn record_day(&self, day: u32) -> MissionRecording {
        MissionRecording {
            logs: self
                .record_day_stores(day)
                .into_iter()
                .map(BadgeLog::from)
                .collect(),
        }
    }

    /// Records one mission day (1-based) for all units, appending every
    /// sensor stream directly into columnar [`TelemetryStore`]s.
    ///
    /// The recorded span covers the duty day plus the overnight docking
    /// period before the next morning (sync exchanges happen at the
    /// charger).
    #[must_use]
    pub fn record_day_stores(&self, day: u32) -> Vec<TelemetryStore> {
        let mut rng = self
            .seed
            .child("badge")
            .stream_indexed("recorder-day", u64::from(day));
        let start = SimTime::from_day_hms(day, 7, 0, 0);
        let duty_end = SimTime::from_day_hms(day, 21, 0, 0);
        let night_end = SimTime::from_day_hms(day + 1, 6, 55, 0);
        let imu_model = ImuModel::default();
        let mic_model = MicModel::default();
        let noise_adjust = if self.world.incidents.talk_mood(day) < 0.5 {
            -4.0
        } else {
            0.0
        };

        let mut stores: Vec<TelemetryStore> = (0..UNIT_COUNT)
            .map(|i| TelemetryStore::new(BadgeId(i as u8)))
            .collect();

        // Pre-compute per-unit wear/position queries through the world.
        let unit_ids: Vec<BadgeId> = (0..UNIT_COUNT).map(|i| BadgeId(i as u8)).collect();

        // --- Daytime sampling at 1 Hz master tick -------------------------
        let tick = SimDuration::from_secs(1);
        let mut speech_cursor = 0usize;
        let day_speech: Vec<ares_crew::truth::SpeechSegment> = self
            .truth
            .speech
            .iter()
            .filter(|s| s.interval.end > start && s.interval.start < duty_end)
            .copied()
            .collect();

        let mut t = start;
        while t < duty_end {
            // Positions & wear of all units this tick.
            let states: Vec<(BadgeId, ares_simkit::geometry::Point2, WearState)> = unit_ids
                .iter()
                .map(|&u| {
                    (
                        u,
                        self.world.badge_position(u, t, self.truth),
                        self.world.badge_wear(u, t, self.truth),
                    )
                })
                .collect();
            let positions: Vec<(BadgeId, ares_simkit::geometry::Point2)> =
                states.iter().map(|&(u, p, _)| (u, p)).collect();
            let elapsed = (t - start).as_micros();

            let active = mic::active_segments(&day_speech, &mut speech_cursor, t, tick);

            for (idx, &(unit, pos, wear)) in states.iter().enumerate() {
                let carrier = self.world.carrier_of(unit, day);
                let active_unit = carrier.is_some() || unit == BadgeId::REFERENCE;
                if !active_unit && !matches!(unit, BadgeId(6..=11)) {
                    continue;
                }
                // Backups and the reference sample environment/sync only.
                let clock = self.clocks.clock(unit);
                let t_local = clock.local_time(t);
                let store = &mut stores[idx];

                // A docked badge (EVA, exercise, forgotten on the charger)
                // pauses full sampling — the firmware sleeps while charging —
                // which is what makes badges "active" for only part of the
                // daytime. Environment and sync continue below.
                let sampling = carrier.is_some() && !matches!(wear, WearState::Docked);
                if sampling {
                    // BLE scan.
                    if elapsed % self.config.scan_period.as_micros() == 0 {
                        store.push_scan(scanner::scan(self.world, pos, t_local, &mut rng));
                    }
                    // IMU window.
                    if elapsed % self.config.imu_window.as_micros() == 0 {
                        let walking = carrier
                            .map(|c| self.truth.of(c).is_walking(t) && wear.is_worn())
                            .unwrap_or(false);
                        let energy = carrier
                            .map(|c| 0.8 + 0.4 * self.roster.member(c).profile.mobility)
                            .unwrap_or(1.0);
                        store.push_imu(imu_model.sample(t_local, wear, walking, energy, &mut rng));
                    }
                    // Audio frames (two per second at the default config).
                    let af = self.config.audio_frame.as_micros();
                    if elapsed % af == 0 {
                        let frames_per_tick = (tick.as_micros() / af).max(1);
                        let muffled =
                            carrier == Some(AstronautId::A) && self.muffled_days.contains(&day);
                        for k in 0..frames_per_tick {
                            let ft = t + SimDuration::from_micros(k * af);
                            store.push_audio(mic_model.frame(
                                self.world,
                                self.truth,
                                pos,
                                ft,
                                clock.local_time(ft),
                                &active,
                                noise_adjust,
                                muffled,
                                &mut rng,
                            ));
                        }
                    }
                    // Proximity sweep.
                    if elapsed % self.config.proximity_period.as_micros() == 0 {
                        let obs = links::proximity_sweep(
                            self.world, unit, pos, &positions, t_local, &mut rng,
                        );
                        for o in obs {
                            store.push_proximity(o);
                        }
                    }
                    // Infrared exchanges (only toward higher unit ids to
                    // sample each pair once; recorded on both).
                    if elapsed % self.config.ir_period.as_micros() == 0 {
                        for &(other, opos, owear) in states.iter().skip(idx + 1) {
                            if self.world.carrier_of(other, day).is_none() {
                                continue;
                            }
                            if pos.distance(opos) > self.world.ir.range_m {
                                continue;
                            }
                            let (Some(fa), Some(fb)) = (
                                links::worn_facing(self.world, unit, t, self.truth),
                                links::worn_facing(self.world, other, t, self.truth),
                            ) else {
                                continue;
                            };
                            if links::ir_exchange(
                                self.world, pos, fa, wear, opos, fb, owear, &mut rng,
                            ) {
                                store.push_ir(crate::records::IrContact { t_local, other });
                            }
                        }
                    }
                }
                // Environment (all active units, including reference/backups).
                if elapsed % self.config.env_period.as_micros() == 0 {
                    store.push_env(sensors::sample_env(self.world, pos, t, t_local, &mut rng));
                }
                // Sync attempts.
                if elapsed % self.config.sync_period.as_micros() == 0 {
                    if let Some(s) =
                        links::sync_attempt(self.world, &self.clocks, unit, pos, t, &mut rng)
                    {
                        store.push_sync(s);
                    }
                }
            }
            t += tick;
        }

        // IR contacts recorded on the lower-id unit only so far; mirror them
        // onto the partner, stamped with the partner's own clock at the same
        // true instant. The partner's stamp can land out of time order; the
        // column's sorted insert repairs that on append.
        let mut mirrored: Vec<(usize, crate::records::IrContact)> = Vec::new();
        for store in &stores {
            for (t_local, c) in store.ir.view().iter() {
                let t_true = self.clocks.clock(store.badge).true_time(t_local);
                mirrored.push((
                    c.other.0 as usize,
                    crate::records::IrContact {
                        t_local: self.clocks.clock(c.other).local_time(t_true),
                        other: store.badge,
                    },
                ));
            }
        }
        for (idx, contact) in mirrored {
            stores[idx].push_ir(contact);
        }

        // --- Overnight: docked sampling (sparse) + dense sync -------------
        let mut tn = duty_end;
        while tn < night_end {
            for (idx, &unit) in unit_ids.iter().enumerate() {
                let clock = self.clocks.clock(unit);
                let pos = self.world.badge_position(unit, tn, self.truth);
                let t_local = clock.local_time(tn);
                if (tn - duty_end).as_micros() % self.config.env_period.as_micros() == 0 {
                    stores[idx]
                        .push_env(sensors::sample_env(self.world, pos, tn, t_local, &mut rng));
                }
                if let Some(s) =
                    links::sync_attempt(self.world, &self.clocks, unit, pos, tn, &mut rng)
                {
                    stores[idx].push_sync(s);
                }
            }
            tn += self.config.sync_period;
        }

        // --- Storage accounting -------------------------------------------
        for (idx, &unit) in unit_ids.iter().enumerate() {
            let mut meter = StorageMeter::new();
            if self.world.carrier_of(unit, day).is_some() {
                meter.record_active(&self.config, duty_end - start);
                meter.record_docked(&self.config, night_end - duty_end);
            } else {
                meter.record_docked(&self.config, night_end - start);
            }
            stores[idx].bytes_written = meter.bytes();
        }

        stores
    }

    /// Records the instrumented portion of the mission (days 2–14; badges
    /// were first worn on day 2) and stitches the result.
    #[must_use]
    pub fn record_mission(&self) -> MissionRecording {
        let mut rec = MissionRecording::default();
        for day in 2..=ares_crew::schedule::MISSION_DAYS {
            rec.merge(self.record_day(day));
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_crew::behavior::{BehaviorConfig, BehaviorSim};
    use ares_crew::incidents::IncidentScript;
    use ares_crew::schedule::Schedule;

    fn setup() -> (World, Roster, MissionTruth) {
        let world = World::icares();
        let roster = Roster::icares();
        let schedule = Schedule::icares();
        let incidents = IncidentScript::icares();
        let truth = BehaviorSim::new(
            &roster,
            &schedule,
            &incidents,
            &world.plan,
            BehaviorConfig::default(),
        )
        .generate();
        (world, roster, truth)
    }

    #[test]
    fn one_day_recording_has_all_streams() {
        let (world, roster, truth) = setup();
        let rec = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let day = rec.record_day(3);
        assert_eq!(day.logs.len(), UNIT_COUNT);
        let b0 = day.log(BadgeId(0)).unwrap();
        assert!(!b0.scans.is_empty(), "scans");
        assert!(!b0.audio.is_empty(), "audio");
        assert!(!b0.imu.is_empty(), "imu");
        assert!(!b0.env.is_empty(), "env");
        assert!(!b0.proximity.is_empty(), "proximity");
        assert!(!b0.sync.is_empty(), "sync");
        assert!(b0.bytes_written > 1_000_000_000, "raw volume");
        // The reference unit records env + no scans.
        let r = day.log(BadgeId::REFERENCE).unwrap();
        assert!(r.scans.is_empty());
        assert!(!r.env.is_empty());
    }

    #[test]
    fn timestamps_are_local_not_true() {
        let (world, roster, truth) = setup();
        let rec = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let day = rec.record_day(2);
        // The first scan may come well after 07:00 (the badge sleeps while
        // docked), so recover the true sampling instant from the stamp: it
        // must sit on the scan-period grid, and the stamp must be that grid
        // instant's *local* image — offset by the unit's drifting clock.
        let unit = BadgeId(0);
        let clock = rec.clocks().clock(unit);
        let scan0 = &day.log(unit).unwrap().scans[0];
        let true_start = SimTime::from_day_hms(2, 7, 0, 0);
        let period = SamplingConfig::default().scan_period.as_micros();
        let since_start = (clock.true_time(scan0.t_local) - true_start).as_micros();
        let grid = true_start
            + ares_simkit::time::SimDuration::from_micros(
                (since_start + period / 2) / period * period,
            );
        assert_eq!(scan0.t_local, clock.local_time(grid));
        assert_ne!(scan0.t_local, grid, "the clock offset must be visible");
    }

    #[test]
    fn ir_contacts_are_mirrored() {
        let (world, roster, truth) = setup();
        let rec = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let day = rec.record_day(3);
        let total: usize = day.logs.iter().map(|l| l.ir.len()).sum();
        assert!(total > 0, "some IR contacts on a normal day");
        assert_eq!(total % 2, 0, "contacts recorded pairwise");
    }
}
