//! The firmware recorder: turns ground truth into badge logs, day by day.
//!
//! One [`Recorder::record_day`] call produces the logs of all 13 units for one mission
//! day — every sensor stream sampled at its configured rate, stamped with the
//! unit's drifting local clock. Recording day-by-day keeps memory bounded
//! (the real mission wrote to SD cards; we hand each day to the pipeline and
//! drop it).
//!
//! Recording is organised unit-by-unit: a shared per-day precomputation
//! resolves every unit's position, wear state and room once per master tick,
//! then each unit replays the day against that table on its **own** seeded
//! RNG stream. Because no randomness is shared across units, the per-unit
//! jobs can fan out across worker threads and the merged result is
//! bit-identical to the sequential order for any worker count.
//!
//! The per-unit replay is a **run-length batched kernel**: astronauts dwell,
//! so a unit's `(position, room)` is constant for long stretches of
//! consecutive ticks. All geometry derived from the dwell point — the scan
//! plan (candidate beacons with lane-batched mean RSSI), the station sync
//! link's mean, the room's ambient noise floor — is hoisted to the run
//! boundary, and the tick loop only performs the draws. Every hoisted value
//! is exactly what the scalar path would recompute per tick, and the culls
//! only skip packets the channel would reject *before* drawing, so the
//! recorded bytes and the RNG stream are bit-identical to the retained
//! scalar reference ([`Recorder::record_day_stores_scalar`]).

use crate::clockdrift::{ClockSet, UNIT_COUNT};
use crate::links;
use crate::mic::{self, MicModel, MicSampler};
use crate::records::{BadgeId, BadgeLog, MissionRecording, ProximityObs, SamplingConfig};
use crate::scanner;
use crate::sensors::{EnvSampler, ImuModel, ImuSampler};
use crate::storage::StorageMeter;
use crate::telemetry::TelemetryStore;
use crate::world::{RfMode, World};
use ares_crew::roster::{AstronautId, Roster};
use ares_crew::truth::{MissionTruth, PathCursor, SpeechSegment, WearState};
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::Point2;
use ares_simkit::rng::SeedTree;
use ares_simkit::time::{SimDuration, SimTime};
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Mission-wide recording context.
#[derive(Debug)]
pub struct Recorder<'a> {
    world: &'a World,
    roster: &'a Roster,
    truth: &'a MissionTruth,
    clocks: ClockSet,
    config: SamplingConfig,
    seed: SeedTree,
    rf_mode: RfMode,
    /// Days on which astronaut A's badge sat muffled under the lab apron.
    muffled_days: Vec<u32>,
}

/// One unit's resolved state at one master tick.
#[derive(Debug, Clone, Copy, PartialEq)]
struct UnitTick {
    pos: Point2,
    wear: WearState,
    /// Room under the recorder's RF mode.
    room: RoomId,
    /// Raw `is_walking` of the carrier (false for uncarried units); the
    /// kernel still ANDs it with `wear.is_worn()` like the scalar path.
    walking: bool,
}

/// Shared per-day context, computed once before the per-unit fan-out.
struct DayPrecomp {
    day: u32,
    start: SimTime,
    duty_end: SimTime,
    night_end: SimTime,
    noise_adjust: f64,
    day_speech: Vec<SpeechSegment>,
    carriers: Vec<Option<AstronautId>>,
    ticks: usize,
    /// Flat tick-major SoA table: unit `u` at tick `k` is
    /// `states[k * UNIT_COUNT + u]`.
    states: Vec<UnitTick>,
}

impl DayPrecomp {
    /// All units' states at tick `k`.
    fn tick_states(&self, k: usize) -> &[UnitTick] {
        &self.states[k * UNIT_COUNT..(k + 1) * UNIT_COUNT]
    }
}

impl<'a> Recorder<'a> {
    /// Creates a recorder; clock drifts and muffle days are drawn from the
    /// seed.
    #[must_use]
    pub fn new(
        world: &'a World,
        roster: &'a Roster,
        truth: &'a MissionTruth,
        config: SamplingConfig,
        seed: SeedTree,
    ) -> Self {
        let clocks = ClockSet::generate(&seed);
        let mut rng = seed.child("badge").stream("muffle");
        let muffled_days = (2..=14u32).filter(|_| rng.gen::<f64>() < 0.35).collect();
        Recorder {
            world,
            roster,
            truth,
            clocks,
            config,
            seed,
            rf_mode: RfMode::default(),
            muffled_days,
        }
    }

    /// Selects the RF geometry path (default [`RfMode::Cached`]). Both modes
    /// record bit-identical telemetry; `Exact` is the slow baseline used by
    /// benches and equivalence tests.
    #[must_use]
    pub fn with_rf_mode(mut self, mode: RfMode) -> Self {
        self.rf_mode = mode;
        self
    }

    /// The clock set in use (tests compare pipeline corrections against it).
    #[must_use]
    pub fn clocks(&self) -> &ClockSet {
        &self.clocks
    }

    /// The sampling configuration.
    #[must_use]
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Records one mission day (1-based) for all units, as row-oriented
    /// [`BadgeLog`]s — a thin façade over [`record_day_stores`].
    ///
    /// [`record_day_stores`]: Recorder::record_day_stores
    #[must_use]
    pub fn record_day(&self, day: u32) -> MissionRecording {
        MissionRecording {
            logs: self
                .record_day_stores(day)
                .into_iter()
                .map(BadgeLog::from)
                .collect(),
        }
    }

    /// Records one mission day (1-based) for all units, appending every
    /// sensor stream directly into columnar [`TelemetryStore`]s.
    ///
    /// The recorded span covers the duty day plus the overnight docking
    /// period before the next morning (sync exchanges happen at the
    /// charger).
    #[must_use]
    pub fn record_day_stores(&self, day: u32) -> Vec<TelemetryStore> {
        self.record_day_stores_parallel(day, 1)
    }

    /// Records one mission day on up to `workers` threads, one unit per job.
    ///
    /// Each unit draws from its own seeded stream, so the result is
    /// bit-identical to [`record_day_stores`] for any worker count; the
    /// canonical unit order is restored by slot-indexed merging (write-once
    /// slots — no locks, no copies on merge).
    ///
    /// [`record_day_stores`]: Recorder::record_day_stores
    #[must_use]
    pub fn record_day_stores_parallel(&self, day: u32, workers: usize) -> Vec<TelemetryStore> {
        let pre = self.precompute_day(day);
        let workers = workers.clamp(1, UNIT_COUNT);
        let mut stores: Vec<TelemetryStore> = if workers == 1 {
            (0..UNIT_COUNT)
                .map(|i| self.record_unit_day(&pre, i))
                .collect()
        } else {
            let slots: Vec<OnceLock<TelemetryStore>> =
                (0..UNIT_COUNT).map(|_| OnceLock::new()).collect();
            let cursor = AtomicUsize::new(0);
            crossbeam::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= UNIT_COUNT {
                            break;
                        }
                        slots[i]
                            .set(self.record_unit_day(&pre, i))
                            .expect("unshared slot");
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every unit ran"))
                .collect()
        };
        self.finish_day(&pre, &mut stores);
        stores
    }

    /// Records one mission day with the pre-batching per-tick loop — the
    /// reference implementation retained as the bit-identity oracle for the
    /// run-length batched kernel (equivalence tests and `scenario_soak`
    /// compare against it).
    #[must_use]
    pub fn record_day_stores_scalar(&self, day: u32) -> Vec<TelemetryStore> {
        let pre = self.precompute_day(day);
        let mut stores: Vec<TelemetryStore> = (0..UNIT_COUNT)
            .map(|i| self.record_unit_day_scalar(&pre, i))
            .collect();
        self.finish_day(&pre, &mut stores);
        stores
    }

    /// The shared post-merge steps: IR mirroring and storage accounting.
    fn finish_day(&self, pre: &DayPrecomp, stores: &mut [TelemetryStore]) {
        // IR contacts are recorded on the lower-id unit only so far; mirror
        // them onto the partner, stamped with the partner's own clock at the
        // same true instant. The partner's stamp can land out of time order;
        // the column's sorted insert repairs that on append.
        let mut mirrored: Vec<(usize, crate::records::IrContact)> = Vec::new();
        for store in stores.iter() {
            for (t_local, c) in store.ir.view().iter() {
                let t_true = self.clocks.clock(store.badge).true_time(t_local);
                mirrored.push((
                    c.other.0 as usize,
                    crate::records::IrContact {
                        t_local: self.clocks.clock(c.other).local_time(t_true),
                        other: store.badge,
                    },
                ));
            }
        }
        for (idx, contact) in mirrored {
            stores[idx].push_ir(contact);
        }

        // Storage accounting.
        for (idx, store) in stores.iter_mut().enumerate() {
            let mut meter = StorageMeter::new();
            if pre.carriers[idx].is_some() {
                meter.record_active(&self.config, pre.duty_end - pre.start);
                meter.record_docked(&self.config, pre.night_end - pre.duty_end);
            } else {
                meter.record_docked(&self.config, pre.night_end - pre.start);
            }
            store.bytes_written = meter.bytes();
        }
    }

    /// Resolves everything the per-unit jobs share: the day's constants, the
    /// speech overlapping the duty window, and every unit's position, wear
    /// state, room and walking flag at each master tick.
    ///
    /// The per-tick lookups run behind monotone cursors (amortized O(1) per
    /// tick instead of a binary search), which is bit-identical to the plain
    /// `Series`/`IntervalSet` lookups for the tick loop's ordered times.
    fn precompute_day(&self, day: u32) -> DayPrecomp {
        let start = SimTime::from_day_hms(day, 7, 0, 0);
        let duty_end = SimTime::from_day_hms(day, 21, 0, 0);
        let night_end = SimTime::from_day_hms(day + 1, 6, 55, 0);
        let noise_adjust = if self.world.incidents.talk_mood(day) < 0.5 {
            -4.0
        } else {
            0.0
        };
        let day_speech = self
            .truth
            .speech
            .iter()
            .filter(|s| s.interval.end > start && s.interval.start < duty_end)
            .copied()
            .collect();
        let carriers: Vec<Option<AstronautId>> = (0..UNIT_COUNT)
            .map(|i| self.world.carrier_of(BadgeId(i as u8), day))
            .collect();
        let tick = SimDuration::from_secs(1);
        let ticks = ((duty_end - start).as_micros() / tick.as_micros()) as usize;
        let station_room = self.world.room_in_mode(self.world.station, self.rf_mode);
        let docked = UnitTick {
            pos: self.world.station,
            wear: WearState::Docked,
            room: station_room,
            walking: false,
        };
        let mut states = vec![docked; ticks * UNIT_COUNT];
        for (u, carrier) in carriers.iter().enumerate() {
            // Uncarried units sit docked at the station all day — the fill
            // value already says so.
            let Some(c) = carrier else { continue };
            let a = self.truth.of(*c);
            let mut wear_cur = a.wear.cursor();
            let mut path_cur = a.path_cursor();
            let mut walk_cur = a.walking.cursor();
            let mut prev_pos = Point2::new(f64::NAN, f64::NAN);
            let mut prev_room = station_room;
            let mut t = start;
            for k in 0..ticks {
                // Same as `World::badge_position`/`badge_wear` with the
                // carrier hoisted; rooms are reused across ticks at the same
                // position (the lookup is a pure function of it).
                let wear = wear_cur.at(t).map_or(WearState::Docked, |s| s.value);
                let pos = match wear {
                    WearState::Worn => path_cur.position(t).unwrap_or(self.world.station),
                    WearState::LeftAt(p) => p,
                    WearState::Docked => self.world.station,
                };
                let room = if pos == prev_pos {
                    prev_room
                } else {
                    self.world.room_in_mode(pos, self.rf_mode)
                };
                prev_pos = pos;
                prev_room = room;
                states[k * UNIT_COUNT + u] = UnitTick {
                    pos,
                    wear,
                    room,
                    walking: walk_cur.contains(t),
                };
                t += tick;
            }
        }
        DayPrecomp {
            day,
            start,
            duty_end,
            night_end,
            noise_adjust,
            day_speech,
            carriers,
            ticks,
            states,
        }
    }

    /// Records one unit's full day (duty + overnight) on the unit's own
    /// seeded stream with the run-length batched kernel. No randomness is
    /// shared with other units; bytes are bit-identical to
    /// [`Recorder::record_unit_day_scalar`].
    fn record_unit_day(&self, pre: &DayPrecomp, idx: usize) -> TelemetryStore {
        let unit = BadgeId(idx as u8);
        let mut rng = self
            .seed
            .child("badge")
            .stream_indexed("recorder-unit-day", (u64::from(pre.day) << 8) | idx as u64);
        let mut store = TelemetryStore::new(unit);
        let clock = self.clocks.clock(unit);
        let carrier = pre.carriers[idx];
        let active_unit = carrier.is_some() || unit == BadgeId::REFERENCE;
        let tick = SimDuration::from_secs(1);
        let env = EnvSampler::default();

        // --- Daytime sampling at the 1 Hz master tick --------------------
        // Uncarried primaries record nothing during the day; backups and the
        // reference sample environment/sync only (the firmware sleeps while
        // charging), which is what makes badges "active" for only part of
        // the daytime.
        if active_unit || matches!(unit, BadgeId(6..=11)) {
            let energy = carrier
                .map(|c| 0.8 + 0.4 * self.roster.member(c).profile.mobility)
                .unwrap_or(1.0);
            let muffled = carrier == Some(AstronautId::A) && self.muffled_days.contains(&pre.day);
            let imu = ImuSampler::new(ImuModel::default(), energy);
            let mic_sampler = MicSampler::new(MicModel::default(), pre.noise_adjust, muffled);

            // Monotone cursors. Speech speakers and wearer facings need
            // separate cursor sets: audio frames advance past the tick
            // instant before the IR block reads it.
            let mut speakers: Vec<PathCursor<'_>> = self
                .truth
                .astronauts
                .iter()
                .map(ares_crew::truth::AstronautTruth::path_cursor)
                .collect();
            let mut facings: Vec<Option<PathCursor<'_>>> = pre
                .carriers
                .iter()
                .map(|c| c.map(|c| self.truth.of(c).path_cursor()))
                .collect();

            // Scratch buffers (allocated once per unit-day) and the per-run
            // hoisted state, rebuilt whenever the unit's position changes.
            let mut scan_plan: Vec<scanner::ScanPlanEntry> = Vec::new();
            let mut dist_scratch: Vec<f64> = Vec::new();
            let mut wall_scratch: Vec<f64> = Vec::new();
            let mut mean_scratch: Vec<f64> = Vec::new();
            let mut active_buf: Vec<&SpeechSegment> = Vec::new();
            let mut prox_units: Vec<(BadgeId, Point2, RoomId)> = Vec::with_capacity(UNIT_COUNT);
            let mut prox_obs: Vec<ProximityObs> = Vec::new();
            let mut run_pos = Point2::new(f64::NAN, f64::NAN);
            let mut sync_mean = 0.0f64;
            let mut noise_floor = 0.0f64;

            let af = self.config.audio_frame.as_micros();
            let frames_per_tick = (tick.as_micros() / af).max(1);
            let mut speech_cursor = 0usize;
            let mut t = pre.start;
            for k in 0..pre.ticks {
                let tick_states = pre.tick_states(k);
                let ut = tick_states[idx];
                let elapsed = (t - pre.start).as_micros();
                let t_local = clock.local_time(t);
                if ut.pos != run_pos {
                    // New dwell run: one geometry resolution for the whole
                    // run (NaN sentinel forces a build on the first tick).
                    run_pos = ut.pos;
                    scanner::scan_plan_into(
                        self.world,
                        self.rf_mode,
                        ut.room,
                        ut.pos,
                        &mut scan_plan,
                        &mut dist_scratch,
                        &mut wall_scratch,
                        &mut mean_scratch,
                    );
                    sync_mean = links::sync_link_mean(self.world, self.rf_mode, ut.pos);
                    noise_floor = MicModel::noise_floor(ut.room);
                }
                // A docked badge (EVA, exercise, forgotten on the charger)
                // pauses full sampling; environment and sync continue below.
                let sampling = carrier.is_some() && !matches!(ut.wear, WearState::Docked);
                if sampling {
                    // BLE scan: replay the run's plan, draws only.
                    if elapsed % self.config.scan_period.as_micros() == 0 {
                        store.push_scan(scanner::scan_from_plan(
                            self.world, &scan_plan, t_local, &mut rng,
                        ));
                    }
                    // IMU window (walking flag precomputed per tick).
                    if elapsed % self.config.imu_window.as_micros() == 0 {
                        let walking = ut.walking && ut.wear.is_worn();
                        store.push_imu(imu.sample(t_local, ut.wear, walking, &mut rng));
                    }
                    // Audio frames (two per second at the default config).
                    if elapsed % af == 0 {
                        mic::active_segments_into(
                            &pre.day_speech,
                            &mut speech_cursor,
                            t,
                            tick,
                            &mut active_buf,
                        );
                        for f in 0..frames_per_tick {
                            let ft = t + SimDuration::from_micros(f * af);
                            store.push_audio(mic_sampler.frame_batched(
                                self.world,
                                self.rf_mode,
                                &mut speakers,
                                noise_floor,
                                ut.pos,
                                ut.room,
                                ft,
                                clock.local_time(ft),
                                &active_buf,
                                &mut rng,
                            ));
                        }
                    }
                    // Proximity sweep (scratch buffers, no per-sweep
                    // allocation).
                    if elapsed % self.config.proximity_period.as_micros() == 0 {
                        prox_units.clear();
                        prox_units.extend(
                            tick_states
                                .iter()
                                .enumerate()
                                .map(|(j, s)| (BadgeId(j as u8), s.pos, s.room)),
                        );
                        prox_obs.clear();
                        links::proximity_sweep_into(
                            self.world,
                            self.rf_mode,
                            unit,
                            ut.pos,
                            ut.room,
                            &prox_units,
                            t_local,
                            &mut rng,
                            &mut prox_obs,
                        );
                        for o in prox_obs.drain(..) {
                            store.push_proximity(o);
                        }
                    }
                    // Infrared exchanges (only toward higher unit ids to
                    // sample each pair once; mirrored onto the partner after
                    // the merge). An unworn badge faces nobody, so the whole
                    // block is skipped — the scalar path would `continue` on
                    // every pair with no draws either way. Wear states come
                    // from the precomputed table and facings from the
                    // monotone cursors instead of `worn_facing`'s per-call
                    // carrier inversion; the values are identical.
                    if elapsed % self.config.ir_period.as_micros() == 0 && ut.wear.is_worn() {
                        for (j, other) in tick_states.iter().enumerate().skip(idx + 1) {
                            if pre.carriers[j].is_none() {
                                continue;
                            }
                            if ut.pos.distance(other.pos) > self.world.ir.range_m {
                                continue;
                            }
                            if !other.wear.is_worn() {
                                continue;
                            }
                            let fa = facings[idx].as_mut().and_then(|c| c.facing(t));
                            let fb = facings[j].as_mut().and_then(|c| c.facing(t));
                            let (Some(fa), Some(fb)) = (fa, fb) else {
                                continue;
                            };
                            if links::ir_exchange(
                                self.world,
                                self.rf_mode,
                                ut.pos,
                                fa,
                                ut.wear,
                                ut.room,
                                other.pos,
                                fb,
                                other.wear,
                                other.room,
                                &mut rng,
                            ) {
                                let contact = crate::records::IrContact {
                                    t_local,
                                    other: BadgeId(j as u8),
                                };
                                store.push_ir(contact);
                            }
                        }
                    }
                }
                // Environment (all active units, including reference/backups).
                if elapsed % self.config.env_period.as_micros() == 0 {
                    store.push_env(env.sample(self.world, ut.room, t, t_local, &mut rng));
                }
                // Sync attempts, against the run's hoisted station-link mean
                // (the reference unit never syncs to itself and never draws).
                if elapsed % self.config.sync_period.as_micros() == 0 {
                    if let Some(s) = links::sync_attempt_with_mean(
                        self.world,
                        &self.clocks,
                        unit,
                        sync_mean,
                        t,
                        &mut rng,
                    ) {
                        store.push_sync(s);
                    }
                }
                t += tick;
            }
        }

        self.record_unit_overnight(pre, unit, clock, &env, &mut rng, &mut store);
        store
    }

    /// Records one unit's full day with the pre-batching per-tick loop (the
    /// bit-identity oracle for [`Recorder::record_unit_day`]).
    fn record_unit_day_scalar(&self, pre: &DayPrecomp, idx: usize) -> TelemetryStore {
        let unit = BadgeId(idx as u8);
        let mut rng = self
            .seed
            .child("badge")
            .stream_indexed("recorder-unit-day", (u64::from(pre.day) << 8) | idx as u64);
        let mut store = TelemetryStore::new(unit);
        let clock = self.clocks.clock(unit);
        let carrier = pre.carriers[idx];
        let active_unit = carrier.is_some() || unit == BadgeId::REFERENCE;
        let tick = SimDuration::from_secs(1);
        let env = EnvSampler::default();

        if active_unit || matches!(unit, BadgeId(6..=11)) {
            let energy = carrier
                .map(|c| 0.8 + 0.4 * self.roster.member(c).profile.mobility)
                .unwrap_or(1.0);
            let muffled = carrier == Some(AstronautId::A) && self.muffled_days.contains(&pre.day);
            let imu = ImuSampler::new(ImuModel::default(), energy);
            let mic_sampler = MicSampler::new(MicModel::default(), pre.noise_adjust, muffled);
            let mut speech_cursor = 0usize;
            let mut t = pre.start;
            for k in 0..pre.ticks {
                let tick_states = pre.tick_states(k);
                let ut = tick_states[idx];
                let (pos, wear, room) = (ut.pos, ut.wear, ut.room);
                let elapsed = (t - pre.start).as_micros();
                let t_local = clock.local_time(t);
                let sampling = carrier.is_some() && !matches!(wear, WearState::Docked);
                if sampling {
                    // BLE scan.
                    if elapsed % self.config.scan_period.as_micros() == 0 {
                        store.push_scan(scanner::scan_in(
                            self.world,
                            self.rf_mode,
                            room,
                            pos,
                            t_local,
                            &mut rng,
                        ));
                    }
                    // IMU window.
                    if elapsed % self.config.imu_window.as_micros() == 0 {
                        let walking = carrier
                            .map(|c| self.truth.of(c).is_walking(t) && wear.is_worn())
                            .unwrap_or(false);
                        store.push_imu(imu.sample(t_local, wear, walking, &mut rng));
                    }
                    // Audio frames (two per second at the default config).
                    let af = self.config.audio_frame.as_micros();
                    if elapsed % af == 0 {
                        let frames_per_tick = (tick.as_micros() / af).max(1);
                        let active =
                            mic::active_segments(&pre.day_speech, &mut speech_cursor, t, tick);
                        for f in 0..frames_per_tick {
                            let ft = t + SimDuration::from_micros(f * af);
                            store.push_audio(mic_sampler.frame(
                                self.world,
                                self.rf_mode,
                                self.truth,
                                pos,
                                room,
                                ft,
                                clock.local_time(ft),
                                &active,
                                &mut rng,
                            ));
                        }
                    }
                    // Proximity sweep.
                    if elapsed % self.config.proximity_period.as_micros() == 0 {
                        let units: Vec<(BadgeId, Point2, RoomId)> = tick_states
                            .iter()
                            .enumerate()
                            .map(|(j, s)| (BadgeId(j as u8), s.pos, s.room))
                            .collect();
                        for o in links::proximity_sweep(
                            self.world,
                            self.rf_mode,
                            unit,
                            pos,
                            room,
                            &units,
                            t_local,
                            &mut rng,
                        ) {
                            store.push_proximity(o);
                        }
                    }
                    // Infrared exchanges (only toward higher unit ids to
                    // sample each pair once; mirrored onto the partner after
                    // the merge).
                    if elapsed % self.config.ir_period.as_micros() == 0 {
                        for (j, other) in tick_states.iter().enumerate().skip(idx + 1) {
                            let other_id = BadgeId(j as u8);
                            if pre.carriers[j].is_none() {
                                continue;
                            }
                            if pos.distance(other.pos) > self.world.ir.range_m {
                                continue;
                            }
                            let (Some(fa), Some(fb)) = (
                                links::worn_facing(self.world, unit, t, self.truth),
                                links::worn_facing(self.world, other_id, t, self.truth),
                            ) else {
                                continue;
                            };
                            if links::ir_exchange(
                                self.world,
                                self.rf_mode,
                                pos,
                                fa,
                                wear,
                                room,
                                other.pos,
                                fb,
                                other.wear,
                                other.room,
                                &mut rng,
                            ) {
                                store.push_ir(crate::records::IrContact {
                                    t_local,
                                    other: other_id,
                                });
                            }
                        }
                    }
                }
                // Environment (all active units, including reference/backups).
                if elapsed % self.config.env_period.as_micros() == 0 {
                    store.push_env(env.sample(self.world, room, t, t_local, &mut rng));
                }
                // Sync attempts.
                if elapsed % self.config.sync_period.as_micros() == 0 {
                    if let Some(s) = links::sync_attempt(
                        self.world,
                        self.rf_mode,
                        &self.clocks,
                        unit,
                        pos,
                        t,
                        &mut rng,
                    ) {
                        store.push_sync(s);
                    }
                }
                t += tick;
            }
        }

        self.record_unit_overnight(pre, unit, clock, &env, &mut rng, &mut store);
        store
    }

    /// The overnight tail shared by both kernels: docked sampling (sparse)
    /// plus dense sync at the charger. Continues on the unit-day's RNG
    /// stream, so it must run after the daytime draws.
    fn record_unit_overnight(
        &self,
        pre: &DayPrecomp,
        unit: BadgeId,
        clock: &ares_simkit::clock::DriftingClock,
        env: &EnvSampler,
        rng: &mut impl Rng,
        store: &mut TelemetryStore,
    ) {
        let mut tn = pre.duty_end;
        while tn < pre.night_end {
            let pos = self.world.badge_position(unit, tn, self.truth);
            let t_local = clock.local_time(tn);
            if (tn - pre.duty_end).as_micros() % self.config.env_period.as_micros() == 0 {
                let room = self.world.room_in_mode(pos, self.rf_mode);
                store.push_env(env.sample(self.world, room, tn, t_local, rng));
            }
            if let Some(s) =
                links::sync_attempt(self.world, self.rf_mode, &self.clocks, unit, pos, tn, rng)
            {
                store.push_sync(s);
            }
            tn += self.config.sync_period;
        }
    }

    /// Records the instrumented portion of the mission (days 2–14; badges
    /// were first worn on day 2) and stitches the result.
    #[must_use]
    pub fn record_mission(&self) -> MissionRecording {
        let mut rec = MissionRecording::default();
        for day in 2..=ares_crew::schedule::MISSION_DAYS {
            rec.merge(self.record_day(day));
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_crew::behavior::{BehaviorConfig, BehaviorSim};
    use ares_crew::incidents::IncidentScript;
    use ares_crew::schedule::Schedule;

    fn setup() -> (World, Roster, MissionTruth) {
        let world = World::icares();
        let roster = Roster::icares();
        let schedule = Schedule::icares();
        let incidents = IncidentScript::icares();
        let truth = BehaviorSim::new(
            &roster,
            &schedule,
            &incidents,
            &world.plan,
            BehaviorConfig::default(),
        )
        .generate();
        (world, roster, truth)
    }

    #[test]
    fn one_day_recording_has_all_streams() {
        let (world, roster, truth) = setup();
        let rec = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let day = rec.record_day(3);
        assert_eq!(day.logs.len(), UNIT_COUNT);
        let b0 = day.log(BadgeId(0)).unwrap();
        assert!(!b0.scans.is_empty(), "scans");
        assert!(!b0.audio.is_empty(), "audio");
        assert!(!b0.imu.is_empty(), "imu");
        assert!(!b0.env.is_empty(), "env");
        assert!(!b0.proximity.is_empty(), "proximity");
        assert!(!b0.sync.is_empty(), "sync");
        assert!(b0.bytes_written > 1_000_000_000, "raw volume");
        // The reference unit records env + no scans.
        let r = day.log(BadgeId::REFERENCE).unwrap();
        assert!(r.scans.is_empty());
        assert!(!r.env.is_empty());
    }

    #[test]
    fn timestamps_are_local_not_true() {
        let (world, roster, truth) = setup();
        let rec = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let day = rec.record_day(2);
        // The first scan may come well after 07:00 (the badge sleeps while
        // docked), so recover the true sampling instant from the stamp: it
        // must sit on the scan-period grid, and the stamp must be that grid
        // instant's *local* image — offset by the unit's drifting clock.
        let unit = BadgeId(0);
        let clock = rec.clocks().clock(unit);
        let scan0 = &day.log(unit).unwrap().scans[0];
        let true_start = SimTime::from_day_hms(2, 7, 0, 0);
        let period = SamplingConfig::default().scan_period.as_micros();
        let since_start = (clock.true_time(scan0.t_local) - true_start).as_micros();
        let grid = true_start
            + ares_simkit::time::SimDuration::from_micros(
                (since_start + period / 2) / period * period,
            );
        assert_eq!(scan0.t_local, clock.local_time(grid));
        assert_ne!(scan0.t_local, grid, "the clock offset must be visible");
    }

    #[test]
    fn ir_contacts_are_mirrored() {
        let (world, roster, truth) = setup();
        let rec = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let day = rec.record_day(3);
        let total: usize = day.logs.iter().map(|l| l.ir.len()).sum();
        assert!(total > 0, "some IR contacts on a normal day");
        assert_eq!(total % 2, 0, "contacts recorded pairwise");
    }

    #[test]
    fn batched_kernel_matches_the_scalar_oracle() {
        let (world, roster, truth) = setup();
        let rec = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        // Day 2 includes the A/B badge swap, so carrier hoisting is covered.
        let batched = rec.record_day_stores(2);
        assert_eq!(batched, rec.record_day_stores_scalar(2));
        assert_eq!(batched, rec.record_day_stores_parallel(2, 2));
    }

    #[test]
    fn exact_mode_matches_cached_mode() {
        let (world, roster, truth) = setup();
        let cached = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let exact = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        )
        .with_rf_mode(RfMode::Exact);
        assert_eq!(cached.record_day_stores(2), exact.record_day_stores(2));
    }
}
