//! The firmware recorder: turns ground truth into badge logs, day by day.
//!
//! One [`Recorder::record_day`] call produces the logs of all 13 units for one mission
//! day — every sensor stream sampled at its configured rate, stamped with the
//! unit's drifting local clock. Recording day-by-day keeps memory bounded
//! (the real mission wrote to SD cards; we hand each day to the pipeline and
//! drop it).
//!
//! Recording is organised unit-by-unit: a shared per-day precomputation
//! resolves every unit's position, wear state and room once per master tick,
//! then each unit replays the day against that table on its **own** seeded
//! RNG stream. Because no randomness is shared across units, the per-unit
//! jobs can fan out across worker threads and the merged result is
//! bit-identical to the sequential order for any worker count.

use crate::clockdrift::{ClockSet, UNIT_COUNT};
use crate::links;
use crate::mic::{self, MicModel, MicSampler};
use crate::records::{BadgeId, BadgeLog, MissionRecording, SamplingConfig};
use crate::scanner;
use crate::sensors::{EnvSampler, ImuModel, ImuSampler};
use crate::storage::StorageMeter;
use crate::telemetry::TelemetryStore;
use crate::world::{RfMode, World};
use ares_crew::roster::{AstronautId, Roster};
use ares_crew::truth::{MissionTruth, SpeechSegment, WearState};
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::Point2;
use ares_simkit::rng::SeedTree;
use ares_simkit::time::{SimDuration, SimTime};
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Mission-wide recording context.
#[derive(Debug)]
pub struct Recorder<'a> {
    world: &'a World,
    roster: &'a Roster,
    truth: &'a MissionTruth,
    clocks: ClockSet,
    config: SamplingConfig,
    seed: SeedTree,
    rf_mode: RfMode,
    /// Days on which astronaut A's badge sat muffled under the lab apron.
    muffled_days: Vec<u32>,
}

/// Shared per-day context, computed once before the per-unit fan-out.
struct DayPrecomp {
    day: u32,
    start: SimTime,
    duty_end: SimTime,
    night_end: SimTime,
    noise_adjust: f64,
    day_speech: Vec<SpeechSegment>,
    carriers: Vec<Option<AstronautId>>,
    /// Tick-major daytime table: `states[tick][unit]` = (position, wear,
    /// room). Rooms are resolved under the recorder's RF mode.
    states: Vec<Vec<(Point2, WearState, RoomId)>>,
}

impl<'a> Recorder<'a> {
    /// Creates a recorder; clock drifts and muffle days are drawn from the
    /// seed.
    #[must_use]
    pub fn new(
        world: &'a World,
        roster: &'a Roster,
        truth: &'a MissionTruth,
        config: SamplingConfig,
        seed: SeedTree,
    ) -> Self {
        let clocks = ClockSet::generate(&seed);
        let mut rng = seed.child("badge").stream("muffle");
        let muffled_days = (2..=14u32).filter(|_| rng.gen::<f64>() < 0.35).collect();
        Recorder {
            world,
            roster,
            truth,
            clocks,
            config,
            seed,
            rf_mode: RfMode::default(),
            muffled_days,
        }
    }

    /// Selects the RF geometry path (default [`RfMode::Cached`]). Both modes
    /// record bit-identical telemetry; `Exact` is the slow baseline used by
    /// benches and equivalence tests.
    #[must_use]
    pub fn with_rf_mode(mut self, mode: RfMode) -> Self {
        self.rf_mode = mode;
        self
    }

    /// The clock set in use (tests compare pipeline corrections against it).
    #[must_use]
    pub fn clocks(&self) -> &ClockSet {
        &self.clocks
    }

    /// The sampling configuration.
    #[must_use]
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Records one mission day (1-based) for all units, as row-oriented
    /// [`BadgeLog`]s — a thin façade over [`record_day_stores`].
    ///
    /// [`record_day_stores`]: Recorder::record_day_stores
    #[must_use]
    pub fn record_day(&self, day: u32) -> MissionRecording {
        MissionRecording {
            logs: self
                .record_day_stores(day)
                .into_iter()
                .map(BadgeLog::from)
                .collect(),
        }
    }

    /// Records one mission day (1-based) for all units, appending every
    /// sensor stream directly into columnar [`TelemetryStore`]s.
    ///
    /// The recorded span covers the duty day plus the overnight docking
    /// period before the next morning (sync exchanges happen at the
    /// charger).
    #[must_use]
    pub fn record_day_stores(&self, day: u32) -> Vec<TelemetryStore> {
        self.record_day_stores_parallel(day, 1)
    }

    /// Records one mission day on up to `workers` threads, one unit per job.
    ///
    /// Each unit draws from its own seeded stream, so the result is
    /// bit-identical to [`record_day_stores`] for any worker count; the
    /// canonical unit order is restored by slot-indexed merging.
    ///
    /// [`record_day_stores`]: Recorder::record_day_stores
    #[must_use]
    pub fn record_day_stores_parallel(&self, day: u32, workers: usize) -> Vec<TelemetryStore> {
        let pre = self.precompute_day(day);
        let workers = workers.clamp(1, UNIT_COUNT);
        let mut stores: Vec<TelemetryStore> = if workers == 1 {
            (0..UNIT_COUNT)
                .map(|i| self.record_unit_day(&pre, i))
                .collect()
        } else {
            let slots: Vec<Mutex<Option<TelemetryStore>>> =
                (0..UNIT_COUNT).map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            crossbeam::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= UNIT_COUNT {
                            break;
                        }
                        *slots[i].lock().expect("unshared slot") =
                            Some(self.record_unit_day(&pre, i));
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("unshared slot")
                        .expect("every unit ran")
                })
                .collect()
        };

        // IR contacts are recorded on the lower-id unit only so far; mirror
        // them onto the partner, stamped with the partner's own clock at the
        // same true instant. The partner's stamp can land out of time order;
        // the column's sorted insert repairs that on append.
        let mut mirrored: Vec<(usize, crate::records::IrContact)> = Vec::new();
        for store in &stores {
            for (t_local, c) in store.ir.view().iter() {
                let t_true = self.clocks.clock(store.badge).true_time(t_local);
                mirrored.push((
                    c.other.0 as usize,
                    crate::records::IrContact {
                        t_local: self.clocks.clock(c.other).local_time(t_true),
                        other: store.badge,
                    },
                ));
            }
        }
        for (idx, contact) in mirrored {
            stores[idx].push_ir(contact);
        }

        // Storage accounting.
        for (idx, store) in stores.iter_mut().enumerate() {
            let mut meter = StorageMeter::new();
            if pre.carriers[idx].is_some() {
                meter.record_active(&self.config, pre.duty_end - pre.start);
                meter.record_docked(&self.config, pre.night_end - pre.duty_end);
            } else {
                meter.record_docked(&self.config, pre.night_end - pre.start);
            }
            store.bytes_written = meter.bytes();
        }

        stores
    }

    /// Resolves everything the per-unit jobs share: the day's constants, the
    /// speech overlapping the duty window, and every unit's position, wear
    /// state and room at each master tick.
    fn precompute_day(&self, day: u32) -> DayPrecomp {
        let start = SimTime::from_day_hms(day, 7, 0, 0);
        let duty_end = SimTime::from_day_hms(day, 21, 0, 0);
        let night_end = SimTime::from_day_hms(day + 1, 6, 55, 0);
        let noise_adjust = if self.world.incidents.talk_mood(day) < 0.5 {
            -4.0
        } else {
            0.0
        };
        let day_speech = self
            .truth
            .speech
            .iter()
            .filter(|s| s.interval.end > start && s.interval.start < duty_end)
            .copied()
            .collect();
        let carriers: Vec<Option<AstronautId>> = (0..UNIT_COUNT)
            .map(|i| self.world.carrier_of(BadgeId(i as u8), day))
            .collect();
        let tick = SimDuration::from_secs(1);
        let ticks = ((duty_end - start).as_micros() / tick.as_micros()) as usize;
        let mut states = Vec::with_capacity(ticks);
        let mut t = start;
        while t < duty_end {
            // Same as `World::badge_position`/`badge_wear`, with the
            // day-constant carrier lookup hoisted out of the tick loop.
            states.push(
                carriers
                    .iter()
                    .map(|&carrier| {
                        let (pos, wear) = match carrier {
                            Some(c) => {
                                let a = self.truth.of(c);
                                (
                                    a.badge_position(t, self.world.station)
                                        .unwrap_or(self.world.station),
                                    a.wear_state(t),
                                )
                            }
                            None => (self.world.station, WearState::Docked),
                        };
                        (pos, wear, self.world.room_in_mode(pos, self.rf_mode))
                    })
                    .collect(),
            );
            t += tick;
        }
        DayPrecomp {
            day,
            start,
            duty_end,
            night_end,
            noise_adjust,
            day_speech,
            carriers,
            states,
        }
    }

    /// Records one unit's full day (duty + overnight) on the unit's own
    /// seeded stream. No randomness is shared with other units.
    fn record_unit_day(&self, pre: &DayPrecomp, idx: usize) -> TelemetryStore {
        let unit = BadgeId(idx as u8);
        let mut rng = self
            .seed
            .child("badge")
            .stream_indexed("recorder-unit-day", (u64::from(pre.day) << 8) | idx as u64);
        let mut store = TelemetryStore::new(unit);
        let clock = self.clocks.clock(unit);
        let carrier = pre.carriers[idx];
        let active_unit = carrier.is_some() || unit == BadgeId::REFERENCE;
        let tick = SimDuration::from_secs(1);
        let env = EnvSampler::default();

        // --- Daytime sampling at the 1 Hz master tick --------------------
        // Uncarried primaries record nothing during the day; backups and the
        // reference sample environment/sync only (the firmware sleeps while
        // charging), which is what makes badges "active" for only part of
        // the daytime.
        if active_unit || matches!(unit, BadgeId(6..=11)) {
            let energy = carrier
                .map(|c| 0.8 + 0.4 * self.roster.member(c).profile.mobility)
                .unwrap_or(1.0);
            let muffled = carrier == Some(AstronautId::A) && self.muffled_days.contains(&pre.day);
            let imu = ImuSampler::new(ImuModel::default(), energy);
            let mic_sampler = MicSampler::new(MicModel::default(), pre.noise_adjust, muffled);
            let mut speech_cursor = 0usize;
            let mut t = pre.start;
            for tick_states in &pre.states {
                let (pos, wear, room) = tick_states[idx];
                let elapsed = (t - pre.start).as_micros();
                let t_local = clock.local_time(t);
                // A docked badge (EVA, exercise, forgotten on the charger)
                // pauses full sampling; environment and sync continue below.
                let sampling = carrier.is_some() && !matches!(wear, WearState::Docked);
                if sampling {
                    // BLE scan.
                    if elapsed % self.config.scan_period.as_micros() == 0 {
                        store.push_scan(scanner::scan_in(
                            self.world,
                            self.rf_mode,
                            room,
                            pos,
                            t_local,
                            &mut rng,
                        ));
                    }
                    // IMU window.
                    if elapsed % self.config.imu_window.as_micros() == 0 {
                        let walking = carrier
                            .map(|c| self.truth.of(c).is_walking(t) && wear.is_worn())
                            .unwrap_or(false);
                        store.push_imu(imu.sample(t_local, wear, walking, &mut rng));
                    }
                    // Audio frames (two per second at the default config).
                    let af = self.config.audio_frame.as_micros();
                    if elapsed % af == 0 {
                        let frames_per_tick = (tick.as_micros() / af).max(1);
                        let active =
                            mic::active_segments(&pre.day_speech, &mut speech_cursor, t, tick);
                        for k in 0..frames_per_tick {
                            let ft = t + SimDuration::from_micros(k * af);
                            store.push_audio(mic_sampler.frame(
                                self.world,
                                self.rf_mode,
                                self.truth,
                                pos,
                                room,
                                ft,
                                clock.local_time(ft),
                                &active,
                                &mut rng,
                            ));
                        }
                    }
                    // Proximity sweep.
                    if elapsed % self.config.proximity_period.as_micros() == 0 {
                        let units: Vec<(BadgeId, Point2, RoomId)> = tick_states
                            .iter()
                            .enumerate()
                            .map(|(j, &(p, _, r))| (BadgeId(j as u8), p, r))
                            .collect();
                        for o in links::proximity_sweep(
                            self.world,
                            self.rf_mode,
                            unit,
                            pos,
                            room,
                            &units,
                            t_local,
                            &mut rng,
                        ) {
                            store.push_proximity(o);
                        }
                    }
                    // Infrared exchanges (only toward higher unit ids to
                    // sample each pair once; mirrored onto the partner after
                    // the merge).
                    if elapsed % self.config.ir_period.as_micros() == 0 {
                        for (j, &(opos, owear, oroom)) in
                            tick_states.iter().enumerate().skip(idx + 1)
                        {
                            let other = BadgeId(j as u8);
                            if pre.carriers[j].is_none() {
                                continue;
                            }
                            if pos.distance(opos) > self.world.ir.range_m {
                                continue;
                            }
                            let (Some(fa), Some(fb)) = (
                                links::worn_facing(self.world, unit, t, self.truth),
                                links::worn_facing(self.world, other, t, self.truth),
                            ) else {
                                continue;
                            };
                            if links::ir_exchange(
                                self.world,
                                self.rf_mode,
                                pos,
                                fa,
                                wear,
                                room,
                                opos,
                                fb,
                                owear,
                                oroom,
                                &mut rng,
                            ) {
                                store.push_ir(crate::records::IrContact { t_local, other });
                            }
                        }
                    }
                }
                // Environment (all active units, including reference/backups).
                if elapsed % self.config.env_period.as_micros() == 0 {
                    store.push_env(env.sample(self.world, room, t, t_local, &mut rng));
                }
                // Sync attempts.
                if elapsed % self.config.sync_period.as_micros() == 0 {
                    if let Some(s) = links::sync_attempt(
                        self.world,
                        self.rf_mode,
                        &self.clocks,
                        unit,
                        pos,
                        t,
                        &mut rng,
                    ) {
                        store.push_sync(s);
                    }
                }
                t += tick;
            }
        }

        // --- Overnight: docked sampling (sparse) + dense sync ------------
        let mut tn = pre.duty_end;
        while tn < pre.night_end {
            let pos = self.world.badge_position(unit, tn, self.truth);
            let t_local = clock.local_time(tn);
            if (tn - pre.duty_end).as_micros() % self.config.env_period.as_micros() == 0 {
                let room = self.world.room_in_mode(pos, self.rf_mode);
                store.push_env(env.sample(self.world, room, tn, t_local, &mut rng));
            }
            if let Some(s) = links::sync_attempt(
                self.world,
                self.rf_mode,
                &self.clocks,
                unit,
                pos,
                tn,
                &mut rng,
            ) {
                store.push_sync(s);
            }
            tn += self.config.sync_period;
        }

        store
    }

    /// Records the instrumented portion of the mission (days 2–14; badges
    /// were first worn on day 2) and stitches the result.
    #[must_use]
    pub fn record_mission(&self) -> MissionRecording {
        let mut rec = MissionRecording::default();
        for day in 2..=ares_crew::schedule::MISSION_DAYS {
            rec.merge(self.record_day(day));
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_crew::behavior::{BehaviorConfig, BehaviorSim};
    use ares_crew::incidents::IncidentScript;
    use ares_crew::schedule::Schedule;

    fn setup() -> (World, Roster, MissionTruth) {
        let world = World::icares();
        let roster = Roster::icares();
        let schedule = Schedule::icares();
        let incidents = IncidentScript::icares();
        let truth = BehaviorSim::new(
            &roster,
            &schedule,
            &incidents,
            &world.plan,
            BehaviorConfig::default(),
        )
        .generate();
        (world, roster, truth)
    }

    #[test]
    fn one_day_recording_has_all_streams() {
        let (world, roster, truth) = setup();
        let rec = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let day = rec.record_day(3);
        assert_eq!(day.logs.len(), UNIT_COUNT);
        let b0 = day.log(BadgeId(0)).unwrap();
        assert!(!b0.scans.is_empty(), "scans");
        assert!(!b0.audio.is_empty(), "audio");
        assert!(!b0.imu.is_empty(), "imu");
        assert!(!b0.env.is_empty(), "env");
        assert!(!b0.proximity.is_empty(), "proximity");
        assert!(!b0.sync.is_empty(), "sync");
        assert!(b0.bytes_written > 1_000_000_000, "raw volume");
        // The reference unit records env + no scans.
        let r = day.log(BadgeId::REFERENCE).unwrap();
        assert!(r.scans.is_empty());
        assert!(!r.env.is_empty());
    }

    #[test]
    fn timestamps_are_local_not_true() {
        let (world, roster, truth) = setup();
        let rec = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let day = rec.record_day(2);
        // The first scan may come well after 07:00 (the badge sleeps while
        // docked), so recover the true sampling instant from the stamp: it
        // must sit on the scan-period grid, and the stamp must be that grid
        // instant's *local* image — offset by the unit's drifting clock.
        let unit = BadgeId(0);
        let clock = rec.clocks().clock(unit);
        let scan0 = &day.log(unit).unwrap().scans[0];
        let true_start = SimTime::from_day_hms(2, 7, 0, 0);
        let period = SamplingConfig::default().scan_period.as_micros();
        let since_start = (clock.true_time(scan0.t_local) - true_start).as_micros();
        let grid = true_start
            + ares_simkit::time::SimDuration::from_micros(
                (since_start + period / 2) / period * period,
            );
        assert_eq!(scan0.t_local, clock.local_time(grid));
        assert_ne!(scan0.t_local, grid, "the clock offset must be visible");
    }

    #[test]
    fn ir_contacts_are_mirrored() {
        let (world, roster, truth) = setup();
        let rec = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let day = rec.record_day(3);
        let total: usize = day.logs.iter().map(|l| l.ir.len()).sum();
        assert!(total > 0, "some IR contacts on a normal day");
        assert_eq!(total % 2, 0, "contacts recorded pairwise");
    }

    #[test]
    fn exact_mode_matches_cached_mode() {
        let (world, roster, truth) = setup();
        let cached = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        );
        let exact = Recorder::new(
            &world,
            &roster,
            &truth,
            SamplingConfig::default(),
            SeedTree::new(99),
        )
        .with_rf_mode(RfMode::Exact);
        assert_eq!(cached.record_day_stores(2), exact.record_day_stores(2));
    }
}
