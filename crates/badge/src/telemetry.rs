//! Columnar telemetry store: the struct-of-arrays data plane.
//!
//! The offline pipeline is a bulk pass over huge, homogeneous, time-ordered
//! record streams — layout, not logic, dominates its cost. This module stores
//! each record family as a [`Column`]: a sorted timestamp vector plus a
//! parallel payload vector. Consumers borrow [`TelemetryView`]s — `Copy`
//! bundles of slices — and obtain time windows by binary search over the
//! timestamp column instead of filtering clones.
//!
//! [`BadgeLog`] remains as a row-oriented compatibility façade: `From`
//! conversions run both ways, and a round trip is lossless up to the stable
//! time sort the store maintains (the recorder emits every stream in time
//! order except mirrored IR contacts, which the sorted insert repairs).

use crate::records::{
    AudioFrame, BadgeId, BadgeLog, BeaconScan, EnvSample, ImuSample, IrContact, ProximityObs,
    SyncSample,
};
use ares_habitat::beacons::BeaconId;
use ares_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// Fixed-width lane helpers for batched struct-of-arrays kernels over
/// columns (re-exported from `ares_simkit` so column consumers need no extra
/// dependency).
pub use ares_simkit::lanes;

/// The advertisements of one BLE scan, timestamp stripped.
pub type ScanHits = Vec<(BeaconId, f64)>;

/// [`AudioFrame`] payload (timestamp stripped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AudioPayload {
    /// A-weighted level over the frame (dB SPL).
    pub level_db: f64,
    /// Whether voice-band energy dominated the frame.
    pub voiced: bool,
    /// Estimated fundamental frequency when voiced (Hz).
    pub f0_hz: Option<f64>,
}

/// [`ImuSample`] payload (timestamp stripped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuPayload {
    /// Variance of acceleration magnitude over the window ((m/s²)²).
    pub accel_var: f64,
    /// Mean acceleration magnitude (m/s²).
    pub accel_mean: f64,
    /// Dominant step-band frequency, if any (Hz).
    pub step_hz: Option<f64>,
}

/// [`EnvSample`] payload (timestamp stripped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvPayload {
    /// Temperature (°C).
    pub temperature_c: f64,
    /// Pressure (hPa).
    pub pressure_hpa: f64,
    /// Illuminance (lux).
    pub light_lux: f64,
}

/// [`ProximityObs`] payload (timestamp stripped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProximityPayload {
    /// The badge heard.
    pub other: BadgeId,
    /// Received signal strength (dBm).
    pub rssi: f64,
}

/// [`IrContact`] payload (timestamp stripped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IrPayload {
    /// The facing badge.
    pub other: BadgeId,
}

/// [`SyncSample`] payload (timestamp stripped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncPayload {
    /// The reference badge's local time in the exchange.
    pub t_reference: SimTime,
}

/// One record family in struct-of-arrays layout: a timestamp column kept
/// sorted ascending, plus a parallel payload column.
///
/// Appends that arrive in time order (the overwhelmingly common case — badge
/// clocks are monotonic) are O(1); out-of-order appends fall back to a stable
/// sorted insert so equal timestamps preserve arrival order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column<T> {
    ts: Vec<SimTime>,
    payloads: Vec<T>,
}

impl<T> Default for Column<T> {
    fn default() -> Self {
        Column {
            ts: Vec::new(),
            payloads: Vec::new(),
        }
    }
}

impl<T> Column<T> {
    /// An empty column.
    #[must_use]
    pub fn new() -> Self {
        Column::default()
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the column holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Appends a record, maintaining the sorted-timestamp invariant.
    pub fn push(&mut self, t: SimTime, payload: T) {
        if self.ts.last().is_none_or(|&last| last <= t) {
            self.ts.push(t);
            self.payloads.push(payload);
        } else {
            let i = self.ts.partition_point(|&x| x <= t);
            self.ts.insert(i, t);
            self.payloads.insert(i, payload);
        }
    }

    /// Appends another column's records after this one's (stable merge via
    /// per-record sorted insert when the other column starts earlier).
    pub fn append(&mut self, other: Column<T>) {
        for (t, p) in other.ts.into_iter().zip(other.payloads) {
            self.push(t, p);
        }
    }

    /// Borrows the whole column.
    #[must_use]
    pub fn view(&self) -> ColumnView<'_, T> {
        ColumnView {
            ts: &self.ts,
            payloads: &self.payloads,
        }
    }

    /// Borrows the records with `start <= t < end`.
    #[must_use]
    pub fn window(&self, start: SimTime, end: SimTime) -> ColumnView<'_, T> {
        self.view().window(start, end)
    }
}

/// A borrowed slice pair over a [`Column`]: zero-copy, `Copy`, and cheap to
/// re-window.
#[derive(Debug)]
pub struct ColumnView<'a, T> {
    ts: &'a [SimTime],
    payloads: &'a [T],
}

impl<T> Clone for ColumnView<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for ColumnView<'_, T> {}

impl<'a, T> Default for ColumnView<'a, T> {
    fn default() -> Self {
        ColumnView {
            ts: &[],
            payloads: &[],
        }
    }
}

impl<'a, T> ColumnView<'a, T> {
    /// Number of records in view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// The sorted timestamp slice.
    #[must_use]
    pub fn ts(&self) -> &'a [SimTime] {
        self.ts
    }

    /// The parallel payload slice.
    #[must_use]
    pub fn payloads(&self) -> &'a [T] {
        self.payloads
    }

    /// The `i`-th record.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<(SimTime, &'a T)> {
        Some((*self.ts.get(i)?, self.payloads.get(i)?))
    }

    /// Iterates `(timestamp, payload)` pairs in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &'a T)> + use<'a, T> {
        self.ts.iter().copied().zip(self.payloads)
    }

    /// Sub-view of the records with `start <= t < end`, found by binary
    /// search over the sorted timestamp column.
    #[must_use]
    pub fn window(&self, start: SimTime, end: SimTime) -> ColumnView<'a, T> {
        let lo = self.ts.partition_point(|&t| t < start);
        let hi = self.ts.partition_point(|&t| t < end);
        ColumnView {
            ts: &self.ts[lo..hi],
            payloads: &self.payloads[lo..hi],
        }
    }

    /// The timestamp column split into `[SimTime; LANES]` chunks plus the
    /// remainder tail — the iteration shape of the batched stage kernels.
    #[must_use]
    pub fn ts_lanes(&self) -> (&'a [[SimTime; lanes::LANES]], &'a [SimTime]) {
        lanes::as_lanes(self.ts)
    }

    /// The payload column split into `[T; LANES]` chunks plus the remainder
    /// tail.
    #[must_use]
    pub fn payload_lanes(&self) -> (&'a [[T; lanes::LANES]], &'a [T]) {
        lanes::as_lanes(self.payloads)
    }
}

/// Everything one badge recorded over one span, in columnar layout.
///
/// The columnar sibling of [`BadgeLog`]; convert with `From`/`Into` in either
/// direction. Analysis passes borrow a [`TelemetryView`] via [`view`].
///
/// [`view`]: TelemetryStore::view
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TelemetryStore {
    /// The physical unit.
    pub badge: BadgeId,
    /// BLE beacon scans (payload: the hit list of each scan window).
    pub scans: Column<ScanHits>,
    /// Microphone feature frames.
    pub audio: Column<AudioPayload>,
    /// Inertial windows.
    pub imu: Column<ImuPayload>,
    /// Environmental samples.
    pub env: Column<EnvPayload>,
    /// Inter-badge proximity observations.
    pub proximity: Column<ProximityPayload>,
    /// Infrared contacts.
    pub ir: Column<IrPayload>,
    /// Time-sync exchanges.
    pub sync: Column<SyncPayload>,
    /// Bytes of raw data written to the SD card over the span.
    pub bytes_written: u64,
}

impl TelemetryStore {
    /// Creates an empty store for a unit.
    #[must_use]
    pub fn new(badge: BadgeId) -> Self {
        TelemetryStore {
            badge,
            ..Default::default()
        }
    }

    /// Total number of records across all columns.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.scans.len()
            + self.audio.len()
            + self.imu.len()
            + self.env.len()
            + self.proximity.len()
            + self.ir.len()
            + self.sync.len()
    }

    /// Borrows the whole store.
    #[must_use]
    pub fn view(&self) -> TelemetryView<'_> {
        TelemetryView {
            badge: self.badge,
            scans: self.scans.view(),
            audio: self.audio.view(),
            imu: self.imu.view(),
            env: self.env.view(),
            proximity: self.proximity.view(),
            ir: self.ir.view(),
            sync: self.sync.view(),
            bytes_written: self.bytes_written,
        }
    }

    /// Borrows the records of every column with `start <= t < end`.
    #[must_use]
    pub fn window(&self, start: SimTime, end: SimTime) -> TelemetryView<'_> {
        self.view().window(start, end)
    }

    /// Appends another store of the same unit (used to stitch days together).
    ///
    /// # Panics
    ///
    /// Panics if the unit ids differ.
    pub fn append(&mut self, other: TelemetryStore) {
        assert_eq!(
            self.badge, other.badge,
            "appending a different unit's store"
        );
        self.scans.append(other.scans);
        self.audio.append(other.audio);
        self.imu.append(other.imu);
        self.env.append(other.env);
        self.proximity.append(other.proximity);
        self.ir.append(other.ir);
        self.sync.append(other.sync);
        self.bytes_written += other.bytes_written;
    }

    /// Appends one BLE scan (row form) into the scan column.
    pub fn push_scan(&mut self, s: BeaconScan) {
        self.scans.push(s.t_local, s.hits);
    }

    /// Appends one audio frame (row form) into the audio column.
    pub fn push_audio(&mut self, a: AudioFrame) {
        self.audio.push(
            a.t_local,
            AudioPayload {
                level_db: a.level_db,
                voiced: a.voiced,
                f0_hz: a.f0_hz,
            },
        );
    }

    /// Appends one inertial window (row form) into the IMU column.
    pub fn push_imu(&mut self, s: ImuSample) {
        self.imu.push(
            s.t_local,
            ImuPayload {
                accel_var: s.accel_var,
                accel_mean: s.accel_mean,
                step_hz: s.step_hz,
            },
        );
    }

    /// Appends one environmental sample (row form) into the env column.
    pub fn push_env(&mut self, s: EnvSample) {
        self.env.push(
            s.t_local,
            EnvPayload {
                temperature_c: s.temperature_c,
                pressure_hpa: s.pressure_hpa,
                light_lux: s.light_lux,
            },
        );
    }

    /// Appends one proximity observation (row form) into its column.
    pub fn push_proximity(&mut self, p: ProximityObs) {
        self.proximity.push(
            p.t_local,
            ProximityPayload {
                other: p.other,
                rssi: p.rssi,
            },
        );
    }

    /// Appends one infrared contact (row form) into the IR column.
    pub fn push_ir(&mut self, c: IrContact) {
        self.ir.push(c.t_local, IrPayload { other: c.other });
    }

    /// Appends one time-sync exchange (row form) into the sync column.
    pub fn push_sync(&mut self, s: SyncSample) {
        self.sync.push(
            s.t_local,
            SyncPayload {
                t_reference: s.t_reference,
            },
        );
    }

    /// Approximate in-memory footprint of the columnar layout (bytes):
    /// timestamp and payload vectors plus the scan hit heap.
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        use std::mem::size_of;
        let ts = size_of::<SimTime>();
        let hit_heap: usize = self
            .scans
            .view()
            .payloads()
            .iter()
            .map(|h| h.len() * size_of::<(BeaconId, f64)>())
            .sum();
        (self.scans.len() * (ts + size_of::<ScanHits>())
            + hit_heap
            + self.audio.len() * (ts + size_of::<AudioPayload>())
            + self.imu.len() * (ts + size_of::<ImuPayload>())
            + self.env.len() * (ts + size_of::<EnvPayload>())
            + self.proximity.len() * (ts + size_of::<ProximityPayload>())
            + self.ir.len() * (ts + size_of::<IrPayload>())
            + self.sync.len() * (ts + size_of::<SyncPayload>())) as u64
    }
}

/// Approximate in-memory footprint of the row-oriented façade (bytes) — the
/// like-for-like comparison point for [`TelemetryStore::mem_bytes`].
#[must_use]
pub fn log_mem_bytes(log: &BadgeLog) -> u64 {
    use std::mem::size_of;
    let hit_heap: usize = log
        .scans
        .iter()
        .map(|s| s.hits.len() * size_of::<(BeaconId, f64)>())
        .sum();
    (log.scans.len() * size_of::<BeaconScan>()
        + hit_heap
        + log.audio.len() * size_of::<AudioFrame>()
        + log.imu.len() * size_of::<ImuSample>()
        + log.env.len() * size_of::<EnvSample>()
        + log.proximity.len() * size_of::<ProximityObs>()
        + log.ir.len() * size_of::<IrContact>()
        + log.sync.len() * size_of::<SyncSample>()) as u64
}

/// A zero-copy view over a [`TelemetryStore`]: `Copy` slice bundles for every
/// record family. This is what the analysis stage kernels take.
#[derive(Debug, Clone, Copy, Default)]
pub struct TelemetryView<'a> {
    /// The physical unit.
    pub badge: BadgeId,
    /// BLE beacon scans.
    pub scans: ColumnView<'a, ScanHits>,
    /// Microphone feature frames.
    pub audio: ColumnView<'a, AudioPayload>,
    /// Inertial windows.
    pub imu: ColumnView<'a, ImuPayload>,
    /// Environmental samples.
    pub env: ColumnView<'a, EnvPayload>,
    /// Inter-badge proximity observations.
    pub proximity: ColumnView<'a, ProximityPayload>,
    /// Infrared contacts.
    pub ir: ColumnView<'a, IrPayload>,
    /// Time-sync exchanges.
    pub sync: ColumnView<'a, SyncPayload>,
    /// Bytes of raw data written to the SD card over the viewed span.
    pub bytes_written: u64,
}

impl<'a> TelemetryView<'a> {
    /// Total number of records across all columns in view.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.scans.len()
            + self.audio.len()
            + self.imu.len()
            + self.env.len()
            + self.proximity.len()
            + self.ir.len()
            + self.sync.len()
    }

    /// Sub-view of every column with `start <= t < end`.
    #[must_use]
    pub fn window(&self, start: SimTime, end: SimTime) -> TelemetryView<'a> {
        TelemetryView {
            badge: self.badge,
            scans: self.scans.window(start, end),
            audio: self.audio.window(start, end),
            imu: self.imu.window(start, end),
            env: self.env.window(start, end),
            proximity: self.proximity.window(start, end),
            ir: self.ir.window(start, end),
            sync: self.sync.window(start, end),
            bytes_written: self.bytes_written,
        }
    }

    /// Iterates scans as `(timestamp, hit slice)`.
    pub fn scan_hits(&self) -> impl Iterator<Item = (SimTime, &'a [(BeaconId, f64)])> + use<'a> {
        self.scans.iter().map(|(t, h)| (t, h.as_slice()))
    }

    /// Iterates audio frames materialized as row structs (payloads are
    /// `Copy`; this costs a register-width copy per record, no allocation).
    pub fn audio_frames(&self) -> impl Iterator<Item = AudioFrame> + use<'a> {
        self.audio.iter().map(|(t, p)| AudioFrame {
            t_local: t,
            level_db: p.level_db,
            voiced: p.voiced,
            f0_hz: p.f0_hz,
        })
    }

    /// Iterates IMU windows materialized as row structs.
    pub fn imu_samples(&self) -> impl Iterator<Item = ImuSample> + use<'a> {
        self.imu.iter().map(|(t, p)| ImuSample {
            t_local: t,
            accel_var: p.accel_var,
            accel_mean: p.accel_mean,
            step_hz: p.step_hz,
        })
    }

    /// Iterates environmental samples materialized as row structs.
    pub fn env_samples(&self) -> impl Iterator<Item = EnvSample> + use<'a> {
        self.env.iter().map(|(t, p)| EnvSample {
            t_local: t,
            temperature_c: p.temperature_c,
            pressure_hpa: p.pressure_hpa,
            light_lux: p.light_lux,
        })
    }

    /// Iterates proximity observations materialized as row structs.
    pub fn proximity_obs(&self) -> impl Iterator<Item = ProximityObs> + use<'a> {
        self.proximity.iter().map(|(t, p)| ProximityObs {
            t_local: t,
            other: p.other,
            rssi: p.rssi,
        })
    }

    /// Iterates infrared contacts materialized as row structs.
    pub fn ir_contacts(&self) -> impl Iterator<Item = IrContact> + use<'a> {
        self.ir.iter().map(|(t, p)| IrContact {
            t_local: t,
            other: p.other,
        })
    }

    /// Iterates time-sync exchanges materialized as row structs.
    pub fn sync_samples(&self) -> impl Iterator<Item = SyncSample> + use<'a> {
        self.sync.iter().map(|(t, p)| SyncSample {
            t_local: t,
            t_reference: p.t_reference,
        })
    }
}

impl From<BadgeLog> for TelemetryStore {
    fn from(log: BadgeLog) -> Self {
        let mut store = TelemetryStore::new(log.badge);
        for s in log.scans {
            store.push_scan(s);
        }
        for a in log.audio {
            store.push_audio(a);
        }
        for s in log.imu {
            store.push_imu(s);
        }
        for s in log.env {
            store.push_env(s);
        }
        for p in log.proximity {
            store.push_proximity(p);
        }
        for c in log.ir {
            store.push_ir(c);
        }
        for s in log.sync {
            store.push_sync(s);
        }
        store.bytes_written = log.bytes_written;
        store
    }
}

impl From<&BadgeLog> for TelemetryStore {
    fn from(log: &BadgeLog) -> Self {
        log.clone().into()
    }
}

impl From<TelemetryStore> for BadgeLog {
    fn from(store: TelemetryStore) -> Self {
        let view = store.view();
        BadgeLog {
            badge: store.badge,
            scans: store
                .scans
                .view()
                .iter()
                .map(|(t, h)| BeaconScan {
                    t_local: t,
                    hits: h.clone(),
                })
                .collect(),
            audio: view.audio_frames().collect(),
            imu: view.imu_samples().collect(),
            env: view.env_samples().collect(),
            proximity: view.proximity_obs().collect(),
            ir: view.ir_contacts().collect(),
            sync: view.sync_samples().collect(),
            bytes_written: store.bytes_written,
        }
    }
}

impl From<&TelemetryStore> for BadgeLog {
    fn from(store: &TelemetryStore) -> Self {
        store.clone().into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_simkit::time::SimTime;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn sorted_insert_repairs_out_of_order_appends() {
        let mut col = Column::new();
        col.push(t(10), 'a');
        col.push(t(30), 'b');
        col.push(t(20), 'c'); // the mirrored-IR case: late out-of-order
        col.push(t(20), 'd'); // equal timestamps keep arrival order
        let v = col.view();
        assert_eq!(v.ts(), &[t(10), t(20), t(20), t(30)]);
        assert_eq!(v.payloads(), &['a', 'c', 'd', 'b']);
    }

    #[test]
    fn window_is_half_open_binary_search() {
        let mut col = Column::new();
        for s in [1i64, 2, 2, 3, 5, 8] {
            col.push(t(s), s);
        }
        let w = col.window(t(2), t(5));
        assert_eq!(w.ts(), &[t(2), t(2), t(3)]);
        assert_eq!(w.payloads(), &[2, 2, 3]);
        assert!(col.window(t(9), t(20)).is_empty());
        // Re-windowing a view narrows further.
        assert_eq!(col.view().window(t(0), t(100)).window(t(5), t(9)).len(), 2);
    }

    #[test]
    fn badge_log_round_trip_is_lossless() {
        let mut log = BadgeLog::new(BadgeId(3));
        log.scans.push(BeaconScan {
            t_local: t(1),
            hits: vec![(ares_habitat::beacons::BeaconId(4), -60.0)],
        });
        log.audio.push(AudioFrame {
            t_local: t(2),
            level_db: 52.0,
            voiced: true,
            f0_hz: Some(180.0),
        });
        log.imu.push(ImuSample {
            t_local: t(3),
            accel_var: 0.4,
            accel_mean: 9.8,
            step_hz: None,
        });
        log.env.push(EnvSample {
            t_local: t(4),
            temperature_c: 21.0,
            pressure_hpa: 990.0,
            light_lux: 300.0,
        });
        log.proximity.push(ProximityObs {
            t_local: t(5),
            other: BadgeId(1),
            rssi: -70.0,
        });
        log.ir.push(IrContact {
            t_local: t(6),
            other: BadgeId(2),
        });
        log.sync.push(SyncSample {
            t_local: t(7),
            t_reference: t(8),
        });
        log.bytes_written = 1234;
        let store = TelemetryStore::from(&log);
        assert_eq!(store.record_count(), log.record_count());
        let back = BadgeLog::from(&store);
        assert_eq!(back, log);
    }

    #[test]
    fn store_append_matches_log_append() {
        let mut a = TelemetryStore::new(BadgeId(0));
        a.ir.push(t(5), IrPayload { other: BadgeId(1) });
        a.bytes_written = 10;
        let mut b = TelemetryStore::new(BadgeId(0));
        b.ir.push(t(2), IrPayload { other: BadgeId(2) });
        b.bytes_written = 7;
        a.append(b);
        assert_eq!(a.ir.view().ts(), &[t(2), t(5)]);
        assert_eq!(a.bytes_written, 17);
        assert_eq!(a.record_count(), 2);
    }

    #[test]
    #[should_panic(expected = "different unit")]
    fn store_append_rejects_other_units() {
        let mut a = TelemetryStore::new(BadgeId(1));
        a.append(TelemetryStore::new(BadgeId(2)));
    }

    #[test]
    fn columnar_footprint_beats_row_footprint() {
        let mut log = BadgeLog::new(BadgeId(0));
        for s in 0..100i64 {
            log.imu.push(ImuSample {
                t_local: t(s),
                accel_var: 0.1,
                accel_mean: 9.8,
                step_hz: None,
            });
            log.ir.push(IrContact {
                t_local: t(s),
                other: BadgeId(1),
            });
        }
        let store = TelemetryStore::from(&log);
        assert!(store.mem_bytes() > 0);
        // Splitting timestamps out removes row padding; the columnar
        // footprint must never exceed the row layout's.
        assert!(store.mem_bytes() <= log_mem_bytes(&log));
    }
}
