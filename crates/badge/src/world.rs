//! The deployment "world": habitat, channels and the badge↔wearer mapping.

use crate::records::BadgeId;
use ares_crew::behavior::CHARGING_STATION;
use ares_crew::incidents::IncidentScript;
use ares_crew::roster::AstronautId;
use ares_crew::truth::{MissionTruth, WearState};
use ares_habitat::beacons::BeaconDeployment;
use ares_habitat::environment::Environment;
use ares_habitat::fieldcache::RfFieldCache;
use ares_habitat::floorplan::FloorPlan;
use ares_habitat::rf::{Channel, ChannelParams, InfraredParams};
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::Point2;
use ares_simkit::time::SimTime;
use std::sync::{Arc, OnceLock};

/// Which geometry path the recording front end takes.
///
/// Both modes produce **bit-identical** telemetry for identical seeds: the
/// cache only tabulates cells it can prove constant (falling back to the
/// exact oracle elsewhere), and its fast-reject culls only skip packets the
/// exact path would also reject before drawing any randomness. `Exact` exists
/// as the honest baseline for benches and equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RfMode {
    /// Precomputed [`RfFieldCache`] lookups with exact fallback (default).
    #[default]
    Cached,
    /// Full geometric path: wall scans and polygon tests per packet.
    Exact,
}

/// Everything the badge firmware simulation samples against.
#[derive(Debug)]
pub struct World {
    /// The floor plan.
    pub plan: FloorPlan,
    /// The 27-beacon deployment.
    pub beacons: BeaconDeployment,
    /// BLE channel (beacon → badge).
    pub ble: Channel,
    /// 868 MHz channel (badge ↔ badge).
    pub sub_ghz: Channel,
    /// Infrared cone parameters.
    pub ir: InfraredParams,
    /// Ambient environment.
    pub env: Environment,
    /// Incident script (badge identity mapping).
    pub incidents: IncidentScript,
    /// Position of the charging station / reference badge.
    pub station: Point2,
    /// Lazily resolved RF field cache (plan + beacons + station sources),
    /// interned process-wide by geometry so fleet shards and scenario
    /// replicas of the same habitat share one grid.
    field_cache: OnceLock<Arc<RfFieldCache>>,
}

impl World {
    /// The canonical ICAres-1 world.
    #[must_use]
    pub fn icares() -> Self {
        let plan = FloorPlan::lunares();
        let beacons = BeaconDeployment::icares(&plan);
        World::from_parts(plan, beacons, IncidentScript::icares(), CHARGING_STATION)
    }

    /// Assembles a world from already-built scenario parts. Channels and
    /// environment are the canonical deployment hardware — scenarios vary
    /// geometry, crew and incidents, not the radio stack.
    #[must_use]
    pub fn from_parts(
        plan: FloorPlan,
        beacons: BeaconDeployment,
        incidents: IncidentScript,
        station: Point2,
    ) -> Self {
        World {
            plan,
            beacons,
            ble: Channel::new(ChannelParams::ble()),
            sub_ghz: Channel::new(ChannelParams::sub_ghz()),
            ir: InfraredParams::default(),
            env: Environment::icares(),
            incidents,
            station,
            field_cache: OnceLock::new(),
        }
    }

    /// A variant with a thinned beacon deployment (ablation experiments).
    #[must_use]
    pub fn with_beacons(mut self, beacons: BeaconDeployment) -> Self {
        self.beacons = beacons;
        // The cache indexes sources by beacon order; rebuild on next use.
        self.field_cache = OnceLock::new();
        self
    }

    /// The RF field cache, resolved on first use from the plan, beacon
    /// deployment and station position — through the process-wide intern
    /// table, so identical geometry is only ever built once
    /// ([`RfFieldCache::build_interned`]).
    #[must_use]
    pub fn field_cache(&self) -> &RfFieldCache {
        self.field_cache.get_or_init(|| {
            RfFieldCache::build_interned(&self.plan, &self.beacons, &[self.station])
        })
    }

    /// The shared handle behind [`field_cache`](World::field_cache), for
    /// callers that outlive the world or want to check interning identity.
    #[must_use]
    pub fn field_cache_arc(&self) -> Arc<RfFieldCache> {
        let _ = self.field_cache();
        Arc::clone(self.field_cache.get().expect("initialized above"))
    }

    /// Cache source index of the charging station (= one past the beacons).
    #[must_use]
    pub fn station_source(&self) -> usize {
        self.beacons.len()
    }

    /// The room a point lies in under the given RF mode — cache lookup or
    /// exact polygon test, bit-identical by the cache's purity contract.
    #[must_use]
    pub fn room_in_mode(&self, p: Point2, mode: RfMode) -> RoomId {
        match mode {
            RfMode::Cached => self
                .field_cache()
                .room_of(&self.plan, p)
                .unwrap_or(RoomId::Main),
            RfMode::Exact => self.room_at(p),
        }
    }

    /// Which astronaut carries the given badge unit on `day`, if anyone.
    ///
    /// Inverts the incident script's wearer→unit mapping: unit `i` belongs
    /// to astronaut `i`; on the swap day A and B carry each other's units;
    /// from day 7 F carries C's old unit; and a badge failure moves its
    /// wearer onto a spare unit (6–11).
    #[must_use]
    pub fn carrier_of(&self, badge: BadgeId, day: u32) -> Option<AstronautId> {
        if badge == BadgeId::REFERENCE {
            return None;
        }
        let midday = SimTime::from_day_hms(day.max(1), 12, 0, 0);
        AstronautId::ALL
            .into_iter()
            .filter(|&wearer| self.incidents.is_aboard(wearer, midday))
            .find(|&wearer| self.badge_of(wearer, day) == badge)
    }

    /// The badge unit carried by `astronaut` on `day`.
    #[must_use]
    pub fn badge_of(&self, astronaut: AstronautId, day: u32) -> BadgeId {
        match self.incidents.worn_unit_slot(astronaut, day) {
            ares_crew::incidents::UnitSlot::PrimaryOf(owner) => BadgeId::primary(owner.index()),
            ares_crew::incidents::UnitSlot::Backup(i) => BadgeId(6 + i.min(5)),
        }
    }

    /// The physical position of a badge unit at instant `t`, given ground
    /// truth: with its carrier (subject to wear state), or at the station.
    #[must_use]
    pub fn badge_position(&self, badge: BadgeId, t: SimTime, truth: &MissionTruth) -> Point2 {
        let day = t.mission_day();
        match self.carrier_of(badge, day) {
            Some(carrier) => truth
                .of(carrier)
                .badge_position(t, self.station)
                .unwrap_or(self.station),
            None => self.station,
        }
    }

    /// The wear state of a badge unit at instant `t`.
    #[must_use]
    pub fn badge_wear(&self, badge: BadgeId, t: SimTime, truth: &MissionTruth) -> WearState {
        match self.carrier_of(badge, t.mission_day()) {
            Some(carrier) => truth.of(carrier).wear_state(t),
            None => WearState::Docked,
        }
    }

    /// The room a point lies in (station fallback: main hall).
    #[must_use]
    pub fn room_at(&self, p: Point2) -> RoomId {
        self.plan.room_at(p).unwrap_or(RoomId::Main)
    }
}

impl Default for World {
    fn default() -> Self {
        World::icares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_assignment_is_identity() {
        let w = World::icares();
        for (i, id) in AstronautId::ALL.into_iter().enumerate() {
            assert_eq!(w.badge_of(id, 2), BadgeId(i as u8));
            assert_eq!(w.carrier_of(BadgeId(i as u8), 2), Some(id));
        }
    }

    #[test]
    fn swap_day_inverts_a_and_b() {
        let w = World::icares();
        assert_eq!(w.badge_of(AstronautId::A, 6), BadgeId(1));
        assert_eq!(w.badge_of(AstronautId::B, 6), BadgeId(0));
        assert_eq!(w.carrier_of(BadgeId(0), 6), Some(AstronautId::B));
        assert_eq!(w.carrier_of(BadgeId(1), 6), Some(AstronautId::A));
    }

    #[test]
    fn f_carries_cs_unit_from_day_seven() {
        let w = World::icares();
        assert_eq!(w.badge_of(AstronautId::F, 7), BadgeId(2));
        assert_eq!(w.carrier_of(BadgeId(2), 7), Some(AstronautId::F));
        // F's own unit is uncarried from then on.
        assert_eq!(w.carrier_of(BadgeId(5), 7), None);
        // C's unit is uncarried on days 5–6 (C dead, F not yet switched).
        assert_eq!(w.carrier_of(BadgeId(2), 5), None);
    }

    #[test]
    fn identical_worlds_share_one_interned_field_cache() {
        let a = World::icares();
        let b = World::icares();
        assert!(
            Arc::ptr_eq(&a.field_cache_arc(), &b.field_cache_arc()),
            "same geometry must intern to one grid"
        );
    }

    #[test]
    fn reference_and_backups_have_no_carrier() {
        let w = World::icares();
        assert_eq!(w.carrier_of(BadgeId::REFERENCE, 3), None);
        assert_eq!(w.carrier_of(BadgeId(8), 3), None);
    }
}
