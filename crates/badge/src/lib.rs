//! `ares-badge` — the sociometric badge device model.
//!
//! The paper's custom wearable (140 mm × 84 mm × 10 mm, 111 g) carried an
//! accelerometer, magnetometer, gyroscope, thermometer, barometer, light
//! sensor and a microphone *feature extractor* (never raw audio), plus three
//! wireless interfaces: an 868 MHz radio, a BLE radio and an infrared
//! transceiver. This crate models that device faithfully enough that the
//! offline pipeline sees the same data pathologies the real deployment did:
//! drifting local clocks, lossy radio links, doorway beacon leakage, off-body
//! badges quietly recording on a desk, muffled microphones, and identity
//! mix-ups after badge swaps.
//!
//! * [`records`] — the on-card record types and per-unit logs.
//! * [`clockdrift`] — per-unit drifting clocks; the reference badge timeline.
//! * [`world`] — habitat + channels + badge↔wearer mapping.
//! * [`sensors`] — IMU and environmental feature models.
//! * [`mic`] — microphone feature frames.
//! * [`scanner`] — BLE beacon scans.
//! * [`links`] — 868 MHz proximity, infrared contacts, time-sync exchanges.
//! * [`power`] — battery and overnight charging.
//! * [`storage`] — SD volume accounting and the on-card scan codec.
//! * [`recorder`] — the day-by-day firmware recorder.
//! * [`telemetry`] — the columnar (struct-of-arrays) telemetry store and
//!   its zero-copy views; [`records::BadgeLog`] is the row-oriented façade.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clockdrift;
pub mod links;
pub mod mic;
pub mod power;
pub mod recorder;
pub mod records;
pub mod scanner;
pub mod sensors;
pub mod storage;
pub mod telemetry;
pub mod world;

/// Physical constants of the badge hardware, from the paper.
pub mod device {
    /// Badge width (mm).
    pub const WIDTH_MM: f64 = 140.0;
    /// Badge height (mm).
    pub const HEIGHT_MM: f64 = 84.0;
    /// Badge thickness (mm).
    pub const THICKNESS_MM: f64 = 10.0;
    /// Total weight including electronics, battery, casing and cord (g).
    pub const WEIGHT_G: f64 = 111.0;
}

/// Convenient glob-import of the most used badge types.
pub mod prelude {
    pub use crate::clockdrift::ClockSet;
    pub use crate::recorder::Recorder;
    pub use crate::records::{
        AudioFrame, BadgeId, BadgeLog, BeaconScan, EnvSample, ImuSample, IrContact,
        MissionRecording, ProximityObs, SamplingConfig, SyncSample,
    };
    pub use crate::telemetry::{TelemetryStore, TelemetryView};
    pub use crate::world::World;
}
