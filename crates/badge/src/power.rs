//! Battery and charging model.
//!
//! The decision to log frequently-sampled raw data "inherently led to
//! increased energy consumption, \[so\] we required each badge to be charged
//! overnight". The model tracks state of charge from per-subsystem draws and
//! flags the depletion events that would have cost data.

use ares_simkit::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Battery and consumption parameters of a badge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Battery capacity (mWh).
    pub capacity_mwh: f64,
    /// Baseline draw: MCU + SD logging (mW).
    pub base_mw: f64,
    /// BLE scanning draw (mW).
    pub ble_mw: f64,
    /// 868 MHz radio draw (mW).
    pub sub_ghz_mw: f64,
    /// Microphone + feature extraction draw (mW).
    pub mic_mw: f64,
    /// IMU draw (mW).
    pub imu_mw: f64,
    /// Charging power at the station (mW).
    pub charge_mw: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            capacity_mwh: 4400.0, // ~1200 mAh Li-Po at 3.7 V
            base_mw: 95.0,
            ble_mw: 48.0,
            sub_ghz_mw: 24.0,
            mic_mw: 60.0,
            imu_mw: 12.0,
            charge_mw: 1800.0,
        }
    }
}

impl PowerModel {
    /// Total draw while actively sampling everything (mW).
    #[must_use]
    pub fn active_draw_mw(&self) -> f64 {
        self.base_mw + self.ble_mw + self.sub_ghz_mw + self.mic_mw + self.imu_mw
    }

    /// Runtime on a full charge at full sampling.
    #[must_use]
    pub fn active_runtime(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.capacity_mwh / self.active_draw_mw() * 3600.0)
    }
}

/// A battery's state of charge, evolved by draw/charge episodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    model: PowerModel,
    charge_mwh: f64,
    depletions: u32,
}

impl Battery {
    /// A full battery.
    #[must_use]
    pub fn full(model: PowerModel) -> Self {
        Battery {
            model,
            charge_mwh: model.capacity_mwh,
            depletions: 0,
        }
    }

    /// State of charge in `[0, 1]`.
    #[must_use]
    pub fn soc(&self) -> f64 {
        self.charge_mwh / self.model.capacity_mwh
    }

    /// How many times the battery hit empty.
    #[must_use]
    pub fn depletions(&self) -> u32 {
        self.depletions
    }

    /// Draws active-sampling power for a duration. Returns `false` if the
    /// battery went empty during the episode.
    pub fn drain_active(&mut self, dur: SimDuration) -> bool {
        let need = self.model.active_draw_mw() * dur.as_hours_f64();
        if need >= self.charge_mwh {
            if self.charge_mwh > 0.0 {
                self.depletions += 1;
            }
            self.charge_mwh = 0.0;
            false
        } else {
            self.charge_mwh -= need;
            true
        }
    }

    /// Charges at the station for a duration.
    pub fn charge(&mut self, dur: SimDuration) {
        self.charge_mwh = (self.charge_mwh + self.model.charge_mw * dur.as_hours_f64())
            .min(self.model.capacity_mwh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_day_fits_in_one_charge() {
        // The 14-hour duty day must fit the battery — this is the design
        // requirement behind the overnight-charging procedure.
        let m = PowerModel::default();
        assert!(
            m.active_runtime() > SimDuration::from_hours(14),
            "runtime {} too short for a duty day",
            m.active_runtime()
        );
        // …but not by so much that overnight charging would be pointless.
        assert!(m.active_runtime() < SimDuration::from_hours(48));
    }

    #[test]
    fn drain_and_charge_cycle() {
        let mut b = Battery::full(PowerModel::default());
        assert!(b.drain_active(SimDuration::from_hours(14)));
        assert!(b.soc() < 1.0 && b.soc() > 0.0);
        b.charge(SimDuration::from_hours(10));
        assert!(
            (b.soc() - 1.0).abs() < 1e-9,
            "overnight restores full charge"
        );
    }

    #[test]
    fn depletion_is_counted_once() {
        let mut b = Battery::full(PowerModel::default());
        assert!(!b.drain_active(SimDuration::from_hours(100)));
        assert_eq!(b.soc(), 0.0);
        assert!(!b.drain_active(SimDuration::from_hours(1)));
        assert_eq!(b.depletions(), 1);
    }

    #[test]
    fn charging_saturates() {
        let mut b = Battery::full(PowerModel::default());
        b.charge(SimDuration::from_hours(5));
        assert!(b.soc() <= 1.0);
    }
}
