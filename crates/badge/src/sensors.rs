//! Inertial and environmental sensor models.
//!
//! Sensors never see ground truth directly: they sample noisy features from
//! it, exactly the features the real badge firmware extracted on-device
//! (variance of acceleration magnitude, step-band frequency, ambient
//! temperature/pressure/light).

use crate::records::{EnvSample, ImuSample};
use crate::world::World;
use ares_crew::truth::WearState;
use ares_habitat::rooms::RoomId;
use ares_simkit::time::SimTime;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Parameters of the inertial feature model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuModel {
    /// Mean acceleration-magnitude variance while walking ((m/s²)²).
    pub walk_var: f64,
    /// Variance while worn but stationary (breathing, posture sway).
    pub still_var: f64,
    /// Variance when the badge lies on a desk or charger (electronic noise).
    pub off_body_var: f64,
    /// Mean step frequency while walking (Hz).
    pub step_hz: f64,
}

impl Default for ImuModel {
    fn default() -> Self {
        ImuModel {
            walk_var: 1.3,
            still_var: 0.035,
            off_body_var: 0.0004,
            step_hz: 1.85,
        }
    }
}

impl ImuModel {
    /// Samples one IMU feature window for a badge.
    ///
    /// `energy_scale` is the wearer's bodily energy (derived from the
    /// personality's mobility); it scales both walking and stationary
    /// variance, which is what makes "average daily acceleration" differ
    /// between astronauts in the paper's sense.
    pub fn sample(
        &self,
        t_local: SimTime,
        wear: WearState,
        walking: bool,
        energy_scale: f64,
        rng: &mut impl Rng,
    ) -> ImuSample {
        ImuSampler::new(*self, energy_scale).sample(t_local, wear, walking, rng)
    }
}

/// A per-unit IMU sampler with the wearer's energy scale folded in and every
/// per-window `Normal` constructed once instead of per sample.
#[derive(Debug, Clone)]
pub struct ImuSampler {
    walk: Normal,
    still: Normal,
    off_body: Normal,
    step: Normal,
    mean: Normal,
}

impl ImuSampler {
    /// Builds a sampler for one unit-day; `energy_scale` is the carrier's
    /// bodily energy (1.0 for uncarried units).
    #[must_use]
    pub fn new(model: ImuModel, energy_scale: f64) -> Self {
        ImuSampler {
            walk: Normal::new(model.walk_var * energy_scale, 0.22).expect("sd > 0"),
            still: Normal::new(model.still_var * energy_scale, 0.012).expect("sd > 0"),
            off_body: Normal::new(model.off_body_var, 0.00018).expect("sd > 0"),
            step: Normal::new(model.step_hz, 0.12).expect("sd > 0"),
            mean: Normal::new(9.81, 0.04).expect("sd > 0"),
        }
    }

    /// Samples one IMU feature window (see [`ImuModel::sample`]).
    pub fn sample(
        &self,
        t_local: SimTime,
        wear: WearState,
        walking: bool,
        rng: &mut impl Rng,
    ) -> ImuSample {
        let (var, step) = match wear {
            WearState::Worn if walking => {
                let v = self.walk.sample(rng).max(0.4);
                let s = self.step.sample(rng);
                (v, Some(s.clamp(1.2, 2.6)))
            }
            WearState::Worn => (self.still.sample(rng).max(0.003), None),
            WearState::LeftAt(_) | WearState::Docked => (self.off_body.sample(rng).max(1e-5), None),
        };
        let mean = self.mean.sample(rng);
        ImuSample {
            t_local,
            accel_var: var,
            accel_mean: mean,
            step_hz: step,
        }
    }
}

/// An environmental sampler with the measurement-noise distributions hoisted
/// out of the per-sample path. The badge's room is resolved by the caller
/// (mode-aware), not re-derived per sample.
#[derive(Debug, Clone)]
pub struct EnvSampler {
    temp: Normal,
    pressure: Normal,
}

impl Default for EnvSampler {
    fn default() -> Self {
        EnvSampler {
            temp: Normal::new(0.0, 0.25).expect("sd > 0"),
            pressure: Normal::new(0.0, 0.35).expect("sd > 0"),
        }
    }
}

impl EnvSampler {
    /// Samples one environmental record for a badge in `room`.
    pub fn sample(
        &self,
        world: &World,
        room: RoomId,
        t_true: SimTime,
        t_local: SimTime,
        rng: &mut impl Rng,
    ) -> EnvSample {
        let temp = world.env.temperature_c(room, t_true) + self.temp.sample(rng);
        let pressure = world.env.pressure_hpa(t_true) + self.pressure.sample(rng);
        let light = (world.env.light_lux(room, t_true) * rng.gen_range(0.92..1.08)).max(0.0);
        EnvSample {
            t_local,
            temperature_c: temp,
            pressure_hpa: pressure,
            light_lux: light,
        }
    }
}

/// Samples one environmental record for a badge (exact-geometry façade over
/// [`EnvSampler`]).
pub fn sample_env(
    world: &World,
    badge_pos: ares_simkit::geometry::Point2,
    t_true: SimTime,
    t_local: SimTime,
    rng: &mut impl Rng,
) -> EnvSample {
    EnvSampler::default().sample(world, world.room_at(badge_pos), t_true, t_local, rng)
}

/// Classifier threshold separating on-body from off-body accelerometer
/// variance; shared with the pipeline's wear detector so both sides agree on
/// the device physics (the pipeline still works from recorded data only).
pub const OFF_BODY_VAR_THRESHOLD: f64 = 0.002;

/// Threshold separating walking from stationary wear.
pub const WALK_VAR_THRESHOLD: f64 = 0.35;

#[cfg(test)]
mod tests {
    use super::*;
    use ares_simkit::geometry::Point2;
    use ares_simkit::rng::SeedTree;

    #[test]
    fn imu_classes_are_separable() {
        let model = ImuModel::default();
        let mut rng = SeedTree::new(3).stream("imu");
        let t = SimTime::from_secs(0);
        for _ in 0..300 {
            let walk = model.sample(t, WearState::Worn, true, 1.0, &mut rng);
            assert!(
                walk.accel_var > WALK_VAR_THRESHOLD,
                "walk var {}",
                walk.accel_var
            );
            assert!(walk.step_hz.is_some());
            let still = model.sample(t, WearState::Worn, false, 1.0, &mut rng);
            assert!(still.accel_var < WALK_VAR_THRESHOLD);
            assert!(still.accel_var > OFF_BODY_VAR_THRESHOLD);
            let off = model.sample(t, WearState::Docked, false, 1.0, &mut rng);
            assert!(off.accel_var < OFF_BODY_VAR_THRESHOLD);
            assert!(off.step_hz.is_none());
        }
    }

    #[test]
    fn energy_scale_shifts_variance() {
        let model = ImuModel::default();
        let mut rng = SeedTree::new(4).stream("imu2");
        let t = SimTime::from_secs(0);
        let mean = |scale: f64, rng: &mut rand::rngs::StdRng| -> f64 {
            (0..500)
                .map(|_| model.sample(t, WearState::Worn, true, scale, rng).accel_var)
                .sum::<f64>()
                / 500.0
        };
        let hi = mean(1.3, &mut rng);
        let lo = mean(0.8, &mut rng);
        assert!(hi > lo + 0.3, "energetic wearers show more acceleration");
    }

    #[test]
    fn env_tracks_room_fields() {
        let world = World::icares();
        let mut rng = SeedTree::new(5).stream("env");
        let t = SimTime::from_day_hms(3, 13, 0, 0);
        let kitchen = world.plan.room_center(ares_habitat::rooms::RoomId::Kitchen);
        let storage = world.plan.room_center(ares_habitat::rooms::RoomId::Storage);
        let mean_t = |p: Point2, rng: &mut rand::rngs::StdRng| -> f64 {
            (0..100)
                .map(|_| sample_env(&world, p, t, t, rng).temperature_c)
                .sum::<f64>()
                / 100.0
        };
        assert!(mean_t(kitchen, &mut rng) > mean_t(storage, &mut rng) + 3.0);
    }
}
