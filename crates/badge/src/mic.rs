//! The microphone feature extractor.
//!
//! "We used it to detect the presence of human speech, its loudness, and
//! frequency … we did not, however, record raw data from conversations."
//!
//! The model turns ground-truth speech segments into per-frame features at
//! the badge: sound level attenuated by spherical spreading and walls, a
//! voiced flag, and the dominant source's fundamental frequency. A badge worn
//! incorrectly (astronaut A's exposure problem) records muffled levels.

use crate::records::AudioFrame;
use crate::world::{RfMode, World};
use ares_crew::truth::{MissionTruth, PathCursor, SpeechSegment};
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::Point2;
use ares_simkit::time::{SimDuration, SimTime};
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Parameters of the microphone model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicModel {
    /// Attenuation per crossed wall (dB) — speech barely penetrates the
    /// metal modules.
    pub wall_loss_db: f64,
    /// Minimum level for the voiced-band detector to fire (dB SPL at badge).
    pub voiced_floor_db: f64,
    /// Margin above ambient noise required to call a frame voiced (dB).
    pub voiced_margin_db: f64,
    /// Level penalty of a muffled (badly worn) badge (dB).
    pub muffle_db: f64,
}

impl Default for MicModel {
    fn default() -> Self {
        MicModel {
            wall_loss_db: 26.0,
            voiced_floor_db: 45.0,
            voiced_margin_db: 3.0,
            muffle_db: 5.0,
        }
    }
}

impl MicModel {
    /// Ambient noise floor of a room (dB SPL), before daily modulation.
    #[must_use]
    pub fn noise_floor(room: RoomId) -> f64 {
        match room {
            RoomId::Workshop => 47.0, // 3-D printers, tools
            RoomId::Kitchen => 44.5,
            RoomId::Main => 43.0,
            RoomId::Storage => 41.0,
            RoomId::Hangar => 39.0,
            _ => 40.0,
        }
    }

    /// The level of a speech source at a listening position.
    #[must_use]
    pub fn received_level(
        &self,
        world: &World,
        seg_level_1m_db: f64,
        source_pos: Point2,
        badge_pos: Point2,
    ) -> f64 {
        let d = source_pos.distance(badge_pos).max(0.3);
        let walls = world.plan.walls_crossed(source_pos, badge_pos);
        seg_level_1m_db - 20.0 * d.log10() - walls as f64 * self.wall_loss_db
    }

    /// Extracts one audio frame at the badge.
    ///
    /// `active`: the speech segments overlapping the frame. `noise_adjust_db`
    /// captures mission-wide quietness (days 11–12 had "much less other noise
    /// recorded"); `muffled` models a badly exposed microphone.
    ///
    /// Compatibility façade over [`MicSampler`], using exact geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn frame(
        &self,
        world: &World,
        truth: &MissionTruth,
        badge_pos: Point2,
        t_true: SimTime,
        t_local: SimTime,
        active: &[&SpeechSegment],
        noise_adjust_db: f64,
        muffled: bool,
        rng: &mut impl Rng,
    ) -> AudioFrame {
        let sampler = MicSampler::new(*self, noise_adjust_db, muffled);
        sampler.frame(
            world,
            RfMode::Exact,
            truth,
            badge_pos,
            world.room_at(badge_pos),
            t_true,
            t_local,
            active,
            rng,
        )
    }
}

/// A per-unit microphone sampler with the noise/f0/wobble distributions and
/// the day's muffle/quietness constants hoisted out of the per-frame path.
///
/// The frame logic is shared by both RF modes and draws the same randomness
/// in the same order regardless of mode: the ambient-noise draw happens
/// before the segment loop, the segment loop itself never draws, and the
/// voiced decision (which gates the f0 draw) is mode-independent — the
/// cached-mode cull only drops segments whose level *upper bound* (wall-count
/// lower bound) already cannot exceed the realized noise, and such segments
/// can neither fire the voiced branch nor lift the non-voiced level above
/// the noise it is clamped to.
#[derive(Debug, Clone)]
pub struct MicSampler {
    model: MicModel,
    noise_adjust_db: f64,
    muffle_db: f64,
    noise: Normal,
    f0: Normal,
    wobble: Normal,
}

impl MicSampler {
    /// Builds a sampler for one unit-day.
    #[must_use]
    pub fn new(model: MicModel, noise_adjust_db: f64, muffled: bool) -> Self {
        MicSampler {
            model,
            noise_adjust_db,
            muffle_db: if muffled { model.muffle_db } else { 0.0 },
            noise: Normal::new(0.0, 1.4).expect("sd > 0"),
            f0: Normal::new(0.0, 2.0).expect("sd > 0"),
            wobble: Normal::new(0.0, 0.6).expect("sd > 0"),
        }
    }

    /// Extracts one audio frame at the badge (see [`MicModel::frame`] for
    /// the semantics; `badge_room` is the pre-resolved room of `badge_pos`).
    #[allow(clippy::too_many_arguments)]
    pub fn frame(
        &self,
        world: &World,
        mode: RfMode,
        truth: &MissionTruth,
        badge_pos: Point2,
        badge_room: RoomId,
        t_true: SimTime,
        t_local: SimTime,
        active: &[&SpeechSegment],
        rng: &mut impl Rng,
    ) -> AudioFrame {
        let noise =
            MicModel::noise_floor(badge_room) + self.noise_adjust_db + self.noise.sample(rng);
        let mut best: Option<(f64, f64)> = None; // (level, f0)
        for seg in active {
            let Some(pos) = truth.of(seg.source.located_with()).position(t_true) else {
                continue;
            };
            let d = pos.distance(badge_pos).max(0.3);
            let spread = seg.level_db - 20.0 * d.log10();
            let level = match mode {
                // Convex rooms: zero wall crossings by construction.
                RfMode::Cached if world.room_in_mode(pos, mode) == badge_room => spread,
                RfMode::Cached => {
                    let speaker_room = world.room_in_mode(pos, mode);
                    let bound = spread
                        - world.plan.wall_floor(speaker_room, badge_room) as f64
                            * self.model.wall_loss_db;
                    if bound - self.muffle_db <= noise {
                        // Provably cannot beat ambient noise: skip the wall
                        // scan (output-identical, see type docs).
                        continue;
                    }
                    spread
                        - world.plan.walls_crossed(pos, badge_pos) as f64 * self.model.wall_loss_db
                }
                // The honest baseline: a wall scan per segment per frame.
                RfMode::Exact => {
                    spread
                        - world.plan.walls_crossed(pos, badge_pos) as f64 * self.model.wall_loss_db
                }
            };
            if best.is_none_or(|(b, _)| level > b) {
                best = Some((level, seg.f0_hz));
            }
        }
        let muffle = self.muffle_db;
        let (mut level, voiced, f0) = match best {
            Some((speech, f0))
                if speech - muffle > noise + self.model.voiced_margin_db
                    && speech - muffle > self.model.voiced_floor_db =>
            {
                let f0_est = f0 + self.f0.sample(rng);
                (speech - muffle, true, Some(f0_est))
            }
            Some((speech, _)) => ((speech - muffle).max(noise), false, None),
            None => (noise, false, None),
        };
        level += self.wobble.sample(rng);
        AudioFrame {
            t_local,
            level_db: level,
            voiced,
            f0_hz: f0,
        }
    }

    /// [`MicSampler::frame`] for the run-length batched recording kernel:
    /// the room's ambient floor is hoisted per run (`noise_floor` must be
    /// [`MicModel::noise_floor`]`(badge_room)`), and speaker positions come
    /// from monotone [`PathCursor`]s (indexed by astronaut) instead of a
    /// per-segment binary search. Both substitutions are bit-identical, so
    /// the frame and its RNG consumption match the scalar path exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn frame_batched(
        &self,
        world: &World,
        mode: RfMode,
        speakers: &mut [PathCursor<'_>],
        noise_floor: f64,
        badge_pos: Point2,
        badge_room: RoomId,
        t_true: SimTime,
        t_local: SimTime,
        active: &[&SpeechSegment],
        rng: &mut impl Rng,
    ) -> AudioFrame {
        let noise = noise_floor + self.noise_adjust_db + self.noise.sample(rng);
        let mut best: Option<(f64, f64)> = None; // (level, f0)
        for seg in active {
            let Some(pos) = speakers[seg.source.located_with().index()].position(t_true) else {
                continue;
            };
            let d = pos.distance(badge_pos).max(0.3);
            let spread = seg.level_db - 20.0 * d.log10();
            let level = match mode {
                // Convex rooms: zero wall crossings by construction.
                RfMode::Cached if world.room_in_mode(pos, mode) == badge_room => spread,
                RfMode::Cached => {
                    let speaker_room = world.room_in_mode(pos, mode);
                    let bound = spread
                        - world.plan.wall_floor(speaker_room, badge_room) as f64
                            * self.model.wall_loss_db;
                    if bound - self.muffle_db <= noise {
                        // Provably cannot beat ambient noise: skip the wall
                        // scan (output-identical, see type docs).
                        continue;
                    }
                    spread
                        - world.plan.walls_crossed(pos, badge_pos) as f64 * self.model.wall_loss_db
                }
                // The honest baseline: a wall scan per segment per frame.
                RfMode::Exact => {
                    spread
                        - world.plan.walls_crossed(pos, badge_pos) as f64 * self.model.wall_loss_db
                }
            };
            if best.is_none_or(|(b, _)| level > b) {
                best = Some((level, seg.f0_hz));
            }
        }
        let muffle = self.muffle_db;
        let (mut level, voiced, f0) = match best {
            Some((speech, f0))
                if speech - muffle > noise + self.model.voiced_margin_db
                    && speech - muffle > self.model.voiced_floor_db =>
            {
                let f0_est = f0 + self.f0.sample(rng);
                (speech - muffle, true, Some(f0_est))
            }
            Some((speech, _)) => ((speech - muffle).max(noise), false, None),
            None => (noise, false, None),
        };
        level += self.wobble.sample(rng);
        AudioFrame {
            t_local,
            level_db: level,
            voiced,
            f0_hz: f0,
        }
    }
}

/// Gathers the speech segments overlapping a frame from a pre-sorted slice,
/// advancing `cursor` monotonically (amortized O(1) per frame).
pub fn active_segments<'a>(
    speech: &'a [SpeechSegment],
    cursor: &mut usize,
    frame_start: SimTime,
    frame_len: SimDuration,
) -> Vec<&'a SpeechSegment> {
    let frame_end = frame_start + frame_len;
    // Advance past segments that ended before this frame. Segments are sorted
    // by start; starts are close enough to ends (utterances ≤ 12 s) that a
    // small look-back window suffices.
    while *cursor < speech.len()
        && speech[*cursor].interval.end + SimDuration::from_secs(15) < frame_start
    {
        *cursor += 1;
    }
    let mut out = Vec::new();
    let mut i = *cursor;
    while i < speech.len() && speech[i].interval.start < frame_end {
        if speech[i].interval.end > frame_start {
            out.push(&speech[i]);
        }
        i += 1;
    }
    out
}

/// [`active_segments`] writing into a caller-owned buffer, so the tick loop
/// allocates nothing: `out` is cleared and refilled with the same segments in
/// the same order.
pub fn active_segments_into<'a>(
    speech: &'a [SpeechSegment],
    cursor: &mut usize,
    frame_start: SimTime,
    frame_len: SimDuration,
    out: &mut Vec<&'a SpeechSegment>,
) {
    out.clear();
    let frame_end = frame_start + frame_len;
    while *cursor < speech.len()
        && speech[*cursor].interval.end + SimDuration::from_secs(15) < frame_start
    {
        *cursor += 1;
    }
    let mut i = *cursor;
    while i < speech.len() && speech[i].interval.start < frame_end {
        if speech[i].interval.end > frame_start {
            out.push(&speech[i]);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_crew::roster::AstronautId;
    use ares_crew::truth::{AstronautTruth, PathPoint, VoiceSource};
    use ares_simkit::rng::SeedTree;
    use ares_simkit::series::Interval;

    fn truth_with_speaker_at(pos: Point2) -> MissionTruth {
        let mut astronauts: Vec<AstronautTruth> =
            (0..6).map(|_| AstronautTruth::default()).collect();
        astronauts[0]
            .path
            .push(SimTime::from_secs(0), PathPoint { pos, facing: 0.0 });
        MissionTruth {
            astronauts,
            speech: Vec::new(),
            meetings: Vec::new(),
        }
    }

    fn seg(level: f64, a: i64, b: i64) -> SpeechSegment {
        SpeechSegment {
            source: VoiceSource::Astronaut(AstronautId::A),
            interval: Interval::new(SimTime::from_secs(a), SimTime::from_secs(b)),
            level_db: level,
            f0_hz: 205.0,
        }
    }

    #[test]
    fn close_speech_is_voiced_far_speech_is_not() {
        let world = World::icares();
        let mic = MicModel::default();
        let mut rng = SeedTree::new(1).stream("mic");
        let kitchen = world.plan.room_center(RoomId::Kitchen);
        let truth = truth_with_speaker_at(kitchen);
        let s = seg(68.0, 0, 10);
        let t = SimTime::from_secs(5);
        // Badge 1.2 m from the speaker: voiced, level near 66 dB.
        let near = mic.frame(
            &world,
            &truth,
            kitchen + ares_simkit::geometry::Vec2::new(1.2, 0.0),
            t,
            t,
            &[&s],
            0.0,
            false,
            &mut rng,
        );
        assert!(near.voiced, "near frame must be voiced");
        assert!(
            (near.level_db - 66.4).abs() < 4.0,
            "level {}",
            near.level_db
        );
        // Badge across the habitat (office): walls kill it.
        let office = world.plan.room_center(RoomId::Office);
        let far = mic.frame(&world, &truth, office, t, t, &[&s], 0.0, false, &mut rng);
        assert!(!far.voiced);
        assert!(far.level_db < 50.0);
    }

    #[test]
    fn muffled_badge_loses_detections_at_range() {
        let world = World::icares();
        let mic = MicModel::default();
        let mut rng = SeedTree::new(2).stream("mic2");
        let kitchen = world.plan.room_center(RoomId::Kitchen);
        let truth = truth_with_speaker_at(kitchen);
        let s = seg(58.0, 0, 10);
        let t = SimTime::from_secs(5);
        // Stay inside the kitchen: offset along the room's long axis.
        let pos = kitchen + ares_simkit::geometry::Vec2::new(0.0, 1.9);
        let mut clear_voiced = 0;
        let mut muffled_voiced = 0;
        for _ in 0..200 {
            if mic
                .frame(&world, &truth, pos, t, t, &[&s], 0.0, false, &mut rng)
                .voiced
            {
                clear_voiced += 1;
            }
            if mic
                .frame(&world, &truth, pos, t, t, &[&s], 0.0, true, &mut rng)
                .voiced
            {
                muffled_voiced += 1;
            }
        }
        assert!(
            clear_voiced > muffled_voiced + 30,
            "{clear_voiced} vs {muffled_voiced}"
        );
    }

    #[test]
    fn quiet_days_lower_the_floor() {
        let world = World::icares();
        let mic = MicModel::default();
        let mut rng = SeedTree::new(3).stream("mic3");
        let p = world.plan.room_center(RoomId::Biolab);
        let truth = truth_with_speaker_at(p);
        let t = SimTime::from_secs(0);
        let mean = |adj: f64, rng: &mut rand::rngs::StdRng| -> f64 {
            (0..200)
                .map(|_| {
                    mic.frame(&world, &truth, p, t, t, &[], adj, false, rng)
                        .level_db
                })
                .sum::<f64>()
                / 200.0
        };
        let normal = mean(0.0, &mut rng);
        let quiet = mean(-4.0, &mut rng);
        assert!(normal - quiet > 3.0);
    }

    #[test]
    fn active_segments_windowing() {
        let speech = vec![seg(60.0, 0, 5), seg(60.0, 10, 20), seg(60.0, 30, 31)];
        let mut cursor = 0;
        let hits = active_segments(
            &speech,
            &mut cursor,
            SimTime::from_secs(12),
            SimDuration::from_secs(1),
        );
        assert_eq!(hits.len(), 1);
        let none = active_segments(
            &speech,
            &mut cursor,
            SimTime::from_secs(25),
            SimDuration::from_secs(1),
        );
        assert!(none.is_empty());
        let last = active_segments(
            &speech,
            &mut cursor,
            SimTime::from_secs(30),
            SimDuration::from_secs(1),
        );
        assert_eq!(last.len(), 1);
    }
}
