//! Per-badge clock assignment.
//!
//! Every badge unit stamps its records with its own crystal-driven clock:
//! a startup offset of a few seconds plus a constant frequency skew of tens
//! of ppm. Over a two-week mission the skew alone accumulates to the order
//! of a minute — uncorrected, cross-badge analyses (meetings, conversations)
//! would be nonsense, which is why the deployment carried a reference badge
//! as a time source. The reference unit's own clock is the *canonical
//! timeline* the pipeline maps everything onto.

use crate::records::BadgeId;
use ares_simkit::clock::DriftingClock;
use ares_simkit::rng::SeedTree;
use ares_simkit::time::SimDuration;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// The set of clocks of all badge units.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSet {
    clocks: Vec<DriftingClock>,
}

/// Number of physical units: 6 primaries, 6 backups, 1 reference.
pub const UNIT_COUNT: usize = 13;

impl ClockSet {
    /// Draws a clock per unit: offsets ~ N(0, 2.5 s), skews ~ N(0, 35 ppm).
    /// The reference badge gets a much better clock (it is mains-powered and
    /// temperature-stable at the station).
    #[must_use]
    pub fn generate(seed: &SeedTree) -> Self {
        let mut rng = seed.child("badge").stream("clocks");
        let offset_dist = Normal::new(0.0, 2.5).expect("sd > 0");
        let skew_dist = Normal::new(0.0, 35.0).expect("sd > 0");
        let clocks = (0..UNIT_COUNT)
            .map(|i| {
                if BadgeId(i as u8) == BadgeId::REFERENCE {
                    DriftingClock::new(
                        SimDuration::from_millis(rng.gen_range(-100..100)),
                        rng.gen_range(-0.5..0.5),
                    )
                } else {
                    DriftingClock::new(
                        SimDuration::from_secs_f64(offset_dist.sample(&mut rng)),
                        skew_dist.sample(&mut rng),
                    )
                }
            })
            .collect();
        ClockSet { clocks }
    }

    /// The clock of a unit.
    ///
    /// # Panics
    ///
    /// Panics if the unit id is out of range.
    #[must_use]
    pub fn clock(&self, badge: BadgeId) -> &DriftingClock {
        &self.clocks[badge.0 as usize]
    }

    /// The reference badge's clock.
    #[must_use]
    pub fn reference(&self) -> &DriftingClock {
        self.clock(BadgeId::REFERENCE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_simkit::time::SimTime;

    #[test]
    fn clocks_are_deterministic_per_seed() {
        let a = ClockSet::generate(&SeedTree::new(5));
        let b = ClockSet::generate(&SeedTree::new(5));
        let c = ClockSet::generate(&SeedTree::new(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn reference_is_much_more_stable() {
        let set = ClockSet::generate(&SeedTree::new(1));
        let t = SimTime::from_day_hms(14, 20, 0, 0);
        let ref_err = set.reference().error_at(t).abs();
        assert!(ref_err < SimDuration::from_secs(1));
        // At least one field unit drifts visibly over two weeks.
        let worst = (0..6)
            .map(|i| set.clock(BadgeId(i)).error_at(t).abs())
            .max()
            .unwrap();
        assert!(worst > SimDuration::from_secs(5), "worst drift {worst}");
    }

    #[test]
    fn skews_vary_across_units() {
        let set = ClockSet::generate(&SeedTree::new(2));
        let s0 = set.clock(BadgeId(0)).skew_ppm();
        let s1 = set.clock(BadgeId(1)).skew_ppm();
        assert!((s0 - s1).abs() > 1e-6);
    }
}
