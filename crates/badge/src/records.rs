//! Record types written by a badge to its SD card.
//!
//! All timestamps are **badge-local**: each badge stamps records with its own
//! drifting clock. The offline pipeline (`ares-sociometrics::sync`) maps them
//! back to the reference timeline before any cross-badge analysis — exactly
//! the procedure used after ICAres-1.

use ares_habitat::beacons::BeaconId;
use ares_simkit::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a physical badge unit.
///
/// Units 0–5 are initially assigned to astronauts A–F, 6–11 are the six
/// redundant backups, and [`BadgeId::REFERENCE`] is the permanently charged
/// reference badge at the station.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BadgeId(pub u8);

impl BadgeId {
    /// The reference badge at the charging station.
    pub const REFERENCE: BadgeId = BadgeId(12);

    /// The badge initially assigned to the astronaut with dense index `i`.
    #[must_use]
    pub fn primary(i: usize) -> BadgeId {
        BadgeId(i as u8)
    }

    /// Whether this unit is one of the six backups.
    #[must_use]
    pub fn is_backup(self) -> bool {
        (6..=11).contains(&self.0)
    }
}

impl std::fmt::Display for BadgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "badge{:02}", self.0)
    }
}

/// One BLE scan: the beacon advertisements heard in one scan window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeaconScan {
    /// Badge-local timestamp of the scan.
    pub t_local: SimTime,
    /// `(beacon, RSSI dBm)` for every advertisement received.
    pub hits: Vec<(BeaconId, f64)>,
}

/// One microphone feature frame (the badge never stores raw audio).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AudioFrame {
    /// Badge-local timestamp of the frame start.
    pub t_local: SimTime,
    /// A-weighted level over the frame (dB SPL).
    pub level_db: f64,
    /// Whether voice-band energy dominated the frame.
    pub voiced: bool,
    /// Estimated fundamental frequency when voiced (Hz).
    pub f0_hz: Option<f64>,
}

/// One inertial feature window (accelerometer + gyroscope summary).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuSample {
    /// Badge-local timestamp of the window start.
    pub t_local: SimTime,
    /// Variance of acceleration magnitude over the window ((m/s²)²).
    pub accel_var: f64,
    /// Mean acceleration magnitude (m/s²).
    pub accel_mean: f64,
    /// Dominant step-band frequency, if any (Hz).
    pub step_hz: Option<f64>,
}

/// One environmental sample (thermometer, barometer, light sensor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvSample {
    /// Badge-local timestamp.
    pub t_local: SimTime,
    /// Temperature (°C).
    pub temperature_c: f64,
    /// Pressure (hPa).
    pub pressure_hpa: f64,
    /// Illuminance (lux).
    pub light_lux: f64,
}

/// One 868 MHz inter-badge proximity observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProximityObs {
    /// Badge-local timestamp.
    pub t_local: SimTime,
    /// The badge heard.
    pub other: BadgeId,
    /// Received signal strength (dBm).
    pub rssi: f64,
}

/// One infrared face-to-face contact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IrContact {
    /// Badge-local timestamp.
    pub t_local: SimTime,
    /// The facing badge.
    pub other: BadgeId,
}

/// One opportunistic time-sync exchange with the reference badge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncSample {
    /// This badge's local time at the exchange.
    pub t_local: SimTime,
    /// The reference badge's local time in the same exchange.
    pub t_reference: SimTime,
}

/// Everything one badge recorded over one span (typically a day).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BadgeLog {
    /// The physical unit.
    pub badge: BadgeId,
    /// BLE beacon scans.
    pub scans: Vec<BeaconScan>,
    /// Microphone feature frames.
    pub audio: Vec<AudioFrame>,
    /// Inertial windows.
    pub imu: Vec<ImuSample>,
    /// Environmental samples.
    pub env: Vec<EnvSample>,
    /// Inter-badge proximity observations.
    pub proximity: Vec<ProximityObs>,
    /// Infrared contacts.
    pub ir: Vec<IrContact>,
    /// Time-sync exchanges.
    pub sync: Vec<SyncSample>,
    /// Bytes of raw data written to the SD card over the span (the on-card
    /// format is far denser than these in-memory features).
    pub bytes_written: u64,
}

impl BadgeLog {
    /// Creates an empty log for a unit.
    #[must_use]
    pub fn new(badge: BadgeId) -> Self {
        BadgeLog {
            badge,
            ..Default::default()
        }
    }

    /// Total number of records across all streams.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.scans.len()
            + self.audio.len()
            + self.imu.len()
            + self.env.len()
            + self.proximity.len()
            + self.ir.len()
            + self.sync.len()
    }

    /// Appends another log of the same unit (used to stitch days together).
    ///
    /// # Panics
    ///
    /// Panics if the unit ids differ.
    pub fn append(&mut self, mut other: BadgeLog) {
        assert_eq!(self.badge, other.badge, "appending a different unit's log");
        self.scans.append(&mut other.scans);
        self.audio.append(&mut other.audio);
        self.imu.append(&mut other.imu);
        self.env.append(&mut other.env);
        self.proximity.append(&mut other.proximity);
        self.ir.append(&mut other.ir);
        self.sync.append(&mut other.sync);
        self.bytes_written += other.bytes_written;
    }
}

/// Sampling configuration of the badge firmware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// BLE scan period.
    pub scan_period: SimDuration,
    /// Audio feature frame length.
    pub audio_frame: SimDuration,
    /// IMU feature window length.
    pub imu_window: SimDuration,
    /// Environmental sampling period.
    pub env_period: SimDuration,
    /// 868 MHz proximity ping period.
    pub proximity_period: SimDuration,
    /// Infrared sampling period.
    pub ir_period: SimDuration,
    /// Time-sync attempt period.
    pub sync_period: SimDuration,
    /// Raw on-card data rate while actively sampling (B/s) — dominated by
    /// high-rate audio features and raw IMU streams.
    pub raw_rate_active_bps: u64,
    /// Raw rate while docked (environmental only, B/s).
    pub raw_rate_docked_bps: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            scan_period: SimDuration::from_secs(1),
            audio_frame: SimDuration::from_millis(500),
            imu_window: SimDuration::from_secs(1),
            env_period: SimDuration::from_secs(60),
            proximity_period: SimDuration::from_secs(5),
            ir_period: SimDuration::from_secs(1),
            sync_period: SimDuration::from_mins(5),
            raw_rate_active_bps: 40_500,
            raw_rate_docked_bps: 1_800,
        }
    }
}

impl SamplingConfig {
    /// The fleet-scale sampling profile: every stream decimated ~5× against
    /// the canonical deployment so hundreds of habitats fit in one soak run.
    ///
    /// The analysis pipeline makes no assumptions about these rates beyond
    /// monotonic timestamps, so fleet runs stay bit-deterministic — they just
    /// carry less telemetry per badge-day than the paper's deployment.
    #[must_use]
    pub fn fleet() -> Self {
        SamplingConfig {
            scan_period: SimDuration::from_secs(5),
            audio_frame: SimDuration::from_millis(2500),
            imu_window: SimDuration::from_secs(5),
            env_period: SimDuration::from_secs(300),
            proximity_period: SimDuration::from_secs(25),
            ir_period: SimDuration::from_secs(5),
            sync_period: SimDuration::from_mins(10),
            raw_rate_active_bps: 8_100,
            raw_rate_docked_bps: 360,
        }
    }
}

/// A full mission recording: one log per physical unit, stitched over days.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MissionRecording {
    /// Per-unit logs, including the reference badge.
    pub logs: Vec<BadgeLog>,
}

impl MissionRecording {
    /// The log of one unit, if present.
    #[must_use]
    pub fn log(&self, badge: BadgeId) -> Option<&BadgeLog> {
        self.logs.iter().find(|l| l.badge == badge)
    }

    /// Total bytes written across all units.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.logs.iter().map(|l| l.bytes_written).sum()
    }

    /// Merges per-day recordings unit-wise.
    pub fn merge(&mut self, other: MissionRecording) {
        for log in other.logs {
            match self.logs.iter_mut().find(|l| l.badge == log.badge) {
                Some(mine) => mine.append(log),
                None => self.logs.push(log),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn badge_id_classes() {
        assert_eq!(BadgeId::primary(2), BadgeId(2));
        assert!(BadgeId(7).is_backup());
        assert!(!BadgeId(3).is_backup());
        assert!(!BadgeId::REFERENCE.is_backup());
        assert_eq!(format!("{}", BadgeId(4)), "badge04");
    }

    #[test]
    fn log_append_and_count() {
        let mut a = BadgeLog::new(BadgeId(1));
        a.audio.push(AudioFrame {
            t_local: SimTime::from_secs(1),
            level_db: 50.0,
            voiced: false,
            f0_hz: None,
        });
        a.bytes_written = 100;
        let mut b = BadgeLog::new(BadgeId(1));
        b.ir.push(IrContact {
            t_local: SimTime::from_secs(2),
            other: BadgeId(2),
        });
        b.bytes_written = 50;
        a.append(b);
        assert_eq!(a.record_count(), 2);
        assert_eq!(a.bytes_written, 150);
    }

    #[test]
    #[should_panic(expected = "different unit")]
    fn append_rejects_other_units() {
        let mut a = BadgeLog::new(BadgeId(1));
        a.append(BadgeLog::new(BadgeId(2)));
    }

    #[test]
    fn recording_merges_unitwise() {
        let mut rec = MissionRecording::default();
        let mut day1 = MissionRecording::default();
        day1.logs.push(BadgeLog::new(BadgeId(0)));
        day1.logs[0].bytes_written = 10;
        rec.merge(day1);
        let mut day2 = MissionRecording::default();
        day2.logs.push(BadgeLog::new(BadgeId(0)));
        day2.logs[0].bytes_written = 5;
        day2.logs.push(BadgeLog::new(BadgeId::REFERENCE));
        rec.merge(day2);
        assert_eq!(rec.logs.len(), 2);
        assert_eq!(rec.log(BadgeId(0)).unwrap().bytes_written, 15);
        assert_eq!(rec.total_bytes(), 15);
    }
}
