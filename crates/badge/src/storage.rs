//! SD-card storage: byte accounting and the on-card record codec.
//!
//! Two concerns live here. First, **volume accounting**: the deployment
//! "secured 150 GiB of data" over 13 instrumented days; [`StorageMeter`]
//! reproduces that arithmetic from the raw on-card rates. Second, a compact
//! **binary codec** for beacon scans — the densest record stream — with a
//! framed, length-prefixed layout, used to exercise realistic
//! serialize/parse paths (and their property tests).

use crate::records::{BeaconScan, SamplingConfig};
use ares_habitat::beacons::BeaconId;
use ares_simkit::time::{SimDuration, SimTime};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Accumulates the raw bytes a badge writes to its card.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StorageMeter {
    bytes: u64,
}

impl StorageMeter {
    /// An empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts an active-sampling episode.
    pub fn record_active(&mut self, cfg: &SamplingConfig, dur: SimDuration) {
        self.bytes += (cfg.raw_rate_active_bps as f64 * dur.as_secs_f64()) as u64;
    }

    /// Accounts a docked (environment-only) episode.
    pub fn record_docked(&mut self, cfg: &SamplingConfig, dur: SimDuration) {
        self.bytes += (cfg.raw_rate_docked_bps as f64 * dur.as_secs_f64()) as u64;
    }

    /// Total bytes written.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Magic byte opening every scan frame on the card.
const SCAN_MAGIC: u8 = 0xB5;

/// Error parsing an on-card record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeScanError {
    /// The buffer ended mid-record.
    Truncated,
    /// The frame did not start with the scan magic byte.
    BadMagic(u8),
    /// The hit count exceeded the per-scan maximum.
    TooManyHits(usize),
}

impl std::fmt::Display for DecodeScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeScanError::Truncated => write!(f, "truncated scan record"),
            DecodeScanError::BadMagic(m) => write!(f, "bad scan magic byte 0x{m:02X}"),
            DecodeScanError::TooManyHits(n) => write!(f, "scan claims {n} hits"),
        }
    }
}

impl std::error::Error for DecodeScanError {}

/// Upper bound on advertisements per scan window (27 beacons).
pub const MAX_HITS: usize = 32;

/// Encodes one scan into the on-card frame format:
/// `magic u8 | t_local_us i64 | n u8 | n × (beacon u8, rssi_centi_dbm i16)`.
pub fn encode_scan(scan: &BeaconScan, out: &mut BytesMut) {
    out.put_u8(SCAN_MAGIC);
    out.put_i64_le(scan.t_local.as_micros());
    debug_assert!(scan.hits.len() <= MAX_HITS);
    out.put_u8(scan.hits.len() as u8);
    for (beacon, rssi) in &scan.hits {
        out.put_u8(beacon.0);
        out.put_i16_le((rssi * 100.0).round().clamp(-32768.0, 32767.0) as i16);
    }
}

/// Decodes one scan frame, consuming it from the buffer.
///
/// # Errors
///
/// Returns a [`DecodeScanError`] on truncation, bad magic, or an impossible
/// hit count; the buffer position is unspecified after an error.
pub fn decode_scan(buf: &mut Bytes) -> Result<BeaconScan, DecodeScanError> {
    if buf.remaining() < 10 {
        return Err(DecodeScanError::Truncated);
    }
    let magic = buf.get_u8();
    if magic != SCAN_MAGIC {
        return Err(DecodeScanError::BadMagic(magic));
    }
    let t_local = SimTime::from_micros(buf.get_i64_le());
    let n = buf.get_u8() as usize;
    if n > MAX_HITS {
        return Err(DecodeScanError::TooManyHits(n));
    }
    if buf.remaining() < n * 3 {
        return Err(DecodeScanError::Truncated);
    }
    let mut hits = Vec::with_capacity(n);
    for _ in 0..n {
        let beacon = BeaconId(buf.get_u8());
        let rssi = f64::from(buf.get_i16_le()) / 100.0;
        hits.push((beacon, rssi));
    }
    Ok(BeaconScan { t_local, hits })
}

/// Encodes a whole day of scans into one contiguous card image.
#[must_use]
pub fn encode_scan_stream(scans: &[BeaconScan]) -> Bytes {
    let mut buf = BytesMut::with_capacity(scans.len() * 24);
    for s in scans {
        encode_scan(s, &mut buf);
    }
    buf.freeze()
}

/// Decodes a card image back into scans.
///
/// # Errors
///
/// Propagates the first frame error encountered.
pub fn decode_scan_stream(mut buf: Bytes) -> Result<Vec<BeaconScan>, DecodeScanError> {
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(decode_scan(&mut buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(t: i64, hits: Vec<(u8, f64)>) -> BeaconScan {
        BeaconScan {
            t_local: SimTime::from_micros(t),
            hits: hits.into_iter().map(|(b, r)| (BeaconId(b), r)).collect(),
        }
    }

    #[test]
    fn codec_round_trip() {
        let scans = vec![
            scan(12345, vec![(0, -51.25), (13, -78.5)]),
            scan(999_999_999, vec![]),
            scan(-5, vec![(26, -94.99)]),
        ];
        let img = encode_scan_stream(&scans);
        let back = decode_scan_stream(img).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in scans.iter().zip(&back) {
            assert_eq!(a.t_local, b.t_local);
            assert_eq!(a.hits.len(), b.hits.len());
            for ((ba, ra), (bb, rb)) in a.hits.iter().zip(&b.hits) {
                assert_eq!(ba, bb);
                assert!((ra - rb).abs() <= 0.005 + 1e-9, "{ra} vs {rb}");
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut junk = BytesMut::new();
        junk.put_u8(0x00);
        junk.put_bytes(0, 16);
        assert!(matches!(
            decode_scan(&mut junk.freeze()),
            Err(DecodeScanError::BadMagic(0))
        ));
        let mut short = BytesMut::new();
        short.put_u8(SCAN_MAGIC);
        short.put_u8(1);
        assert!(matches!(
            decode_scan(&mut short.freeze()),
            Err(DecodeScanError::Truncated)
        ));
    }

    #[test]
    fn decode_rejects_hit_overflow() {
        let mut buf = BytesMut::new();
        buf.put_u8(SCAN_MAGIC);
        buf.put_i64_le(0);
        buf.put_u8(200);
        buf.put_bytes(0, 600);
        assert!(matches!(
            decode_scan(&mut buf.freeze()),
            Err(DecodeScanError::TooManyHits(200))
        ));
    }

    #[test]
    fn meter_reproduces_mission_volume_scale() {
        // 6 worn badges ≈ 14 h active/day, 13 days; reference + idle units on
        // docked rates. The result must land in the 100–200 GiB ballpark the
        // paper reports (150 GiB).
        let cfg = SamplingConfig::default();
        let mut total = 0u64;
        for _badge in 0..6 {
            let mut m = StorageMeter::new();
            for _day in 0..13 {
                m.record_active(&cfg, SimDuration::from_hours(14));
                m.record_docked(&cfg, SimDuration::from_hours(10));
            }
            total += m.bytes();
        }
        let mut reference = StorageMeter::new();
        reference.record_docked(&cfg, SimDuration::from_days(13));
        total += reference.bytes();
        let gib = total as f64 / (1u64 << 30) as f64;
        assert!((100.0..200.0).contains(&gib), "volume {gib:.1} GiB");
    }
}
