//! The BLE scanner: hearing the 27 beacons.
//!
//! Every scan window the badge listens for beacon advertisements; the RF
//! channel decides which are received and at what RSSI. Because the rooms
//! are convex, a beacon in the badge's own room never crosses a wall — the
//! hot path skips the geometric test entirely. Beacons in other rooms are
//! only ever heard through open doorways (the artifact the paper's 10-second
//! dwell filter exists to suppress).

use crate::records::BeaconScan;
use crate::world::{RfMode, World};
use ares_habitat::rf::Reception;
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::Point2;
use ares_simkit::time::SimTime;
use rand::Rng;

/// Performs one BLE scan at the given badge position (cached geometry).
pub fn scan(world: &World, badge_pos: Point2, t_local: SimTime, rng: &mut impl Rng) -> BeaconScan {
    let badge_room = world.room_in_mode(badge_pos, RfMode::Cached);
    scan_in(world, RfMode::Cached, badge_room, badge_pos, t_local, rng)
}

/// Performs one BLE scan with the badge's room already resolved, under the
/// given RF mode.
///
/// Both modes consider the same candidate beacons in the same order and draw
/// the same randomness per candidate, so the emitted scans are bit-identical;
/// `Cached` resolves wall counts from the field cache, `Exact` from the
/// geometric oracle.
pub fn scan_in(
    world: &World,
    mode: RfMode,
    badge_room: RoomId,
    badge_pos: Point2,
    t_local: SimTime,
    rng: &mut impl Rng,
) -> BeaconScan {
    let mut hits = Vec::new();
    let mut consider = |beacon: &ares_habitat::beacons::Beacon, walls: usize, rng: &mut _| {
        let d = beacon.position.distance(badge_pos);
        if let Reception::Received(rssi) = world.ble.transmit_known_walls(d, walls, rng) {
            hits.push((beacon.id, rssi));
        }
    };
    match mode {
        RfMode::Cached => {
            let cache = world.field_cache();
            for &bi in cache.candidates(badge_room) {
                let beacon = &world.beacons.beacons()[bi as usize];
                let walls = if beacon.room == badge_room {
                    // Convex room: zero wall crossings by construction.
                    0
                } else {
                    cache.walls_from(&world.plan, bi as usize, badge_pos)
                };
                consider(beacon, walls, rng);
            }
        }
        RfMode::Exact => {
            for beacon in candidate_beacons(world, badge_room) {
                let walls = if beacon.room == badge_room {
                    0
                } else {
                    world.plan.walls_crossed(beacon.position, badge_pos)
                };
                consider(beacon, walls, rng);
            }
        }
    }
    BeaconScan { t_local, hits }
}

/// One audible beacon in a [`scan plan`](scan_plan_into): its id and the
/// precomputed deterministic mean RSSI at the planned badge position.
pub type ScanPlanEntry = (ares_habitat::beacons::BeaconId, f64);

/// Builds the per-run scan plan for a badge dwelling at `(badge_room,
/// badge_pos)`: every candidate beacon [`scan_in`] would consider, in the
/// same order, with its mean RSSI precomputed — minus the candidates whose
/// mean is so deep below sensitivity that [`transmit_known_walls`] would
/// return `Lost` *before drawing any randomness*. Replaying the plan with
/// [`scan_from_plan`] therefore consumes the identical RNG stream and emits
/// bit-identical scans, while the tick loop no longer touches geometry.
///
/// Means are computed through the lane-batched
/// [`mean_rssi_batch`](ares_habitat::rf::ChannelParams::mean_rssi_batch),
/// which is bit-identical to the scalar per-candidate computation.
///
/// [`transmit_known_walls`]: ares_habitat::rf::Channel::transmit_known_walls
#[allow(clippy::too_many_arguments)]
pub fn scan_plan_into(
    world: &World,
    mode: RfMode,
    badge_room: RoomId,
    badge_pos: Point2,
    plan: &mut Vec<ScanPlanEntry>,
    dist_scratch: &mut Vec<f64>,
    wall_scratch: &mut Vec<f64>,
    mean_scratch: &mut Vec<f64>,
) {
    plan.clear();
    dist_scratch.clear();
    wall_scratch.clear();
    let mut push_candidate = |beacon: &ares_habitat::beacons::Beacon, walls: usize| {
        plan.push((beacon.id, 0.0));
        dist_scratch.push(beacon.position.distance(badge_pos));
        wall_scratch.push(walls as f64);
    };
    match mode {
        RfMode::Cached => {
            let cache = world.field_cache();
            for &bi in cache.candidates(badge_room) {
                let beacon = &world.beacons.beacons()[bi as usize];
                let walls = if beacon.room == badge_room {
                    0
                } else {
                    cache.walls_from(&world.plan, bi as usize, badge_pos)
                };
                push_candidate(beacon, walls);
            }
        }
        RfMode::Exact => {
            for beacon in candidate_beacons(world, badge_room) {
                let walls = if beacon.room == badge_room {
                    0
                } else {
                    world.plan.walls_crossed(beacon.position, badge_pos)
                };
                push_candidate(beacon, walls);
            }
        }
    }
    mean_scratch.resize(plan.len(), 0.0);
    world
        .ble
        .params()
        .mean_rssi_batch(dist_scratch, wall_scratch, mean_scratch);
    let sigma6 = 6.0 * world.ble.params().shadowing_sigma_db;
    let sensitivity = world.ble.params().sensitivity_dbm;
    let mut kept = 0;
    for i in 0..plan.len() {
        let mean = mean_scratch[i];
        // Same pre-draw early-out as `transmit_known_walls`: these
        // candidates are Lost without consuming randomness, so dropping
        // them from the plan leaves the RNG stream untouched.
        if mean + sigma6 < sensitivity {
            continue;
        }
        plan[kept] = (plan[i].0, mean);
        kept += 1;
    }
    plan.truncate(kept);
}

/// Replays one scan tick against a precomputed plan: one reception draw per
/// audible candidate, in plan order. Paired with [`scan_plan_into`], emits
/// exactly what [`scan_in`] would at the planned position.
pub fn scan_from_plan(
    world: &World,
    plan: &[ScanPlanEntry],
    t_local: SimTime,
    rng: &mut impl Rng,
) -> BeaconScan {
    let mut hits = Vec::new();
    for &(id, mean) in plan {
        if let Reception::Received(rssi) = world.ble.transmit_precomputed_mean(mean, rng) {
            hits.push((id, rssi));
        }
    }
    BeaconScan { t_local, hits }
}

/// The beacons that could conceivably be heard from a room: its own plus
/// those of door-adjacent rooms (leakage through doorways).
fn candidate_beacons(
    world: &World,
    room: RoomId,
) -> impl Iterator<Item = &ares_habitat::beacons::Beacon> {
    world
        .beacons
        .beacons()
        .iter()
        .filter(move |b| b.room == room || world.plan.door_between(b.room, room).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_simkit::rng::SeedTree;

    #[test]
    fn in_room_beacons_dominate_scans() {
        let world = World::icares();
        let mut rng = SeedTree::new(8).stream("scan");
        let pos = world.plan.room_center(RoomId::Biolab);
        let mut own = 0usize;
        let mut foreign = 0usize;
        for i in 0..200 {
            let s = scan(&world, pos, SimTime::from_secs(i), &mut rng);
            for (id, _) in &s.hits {
                let b = world.beacons.get(*id).unwrap();
                if b.room == RoomId::Biolab {
                    own += 1;
                } else {
                    foreign += 1;
                }
            }
        }
        assert!(own > 400, "own-room hits {own}");
        assert_eq!(foreign, 0, "room centre must hear no foreign beacons");
    }

    #[test]
    fn doorway_positions_can_leak() {
        let world = World::icares();
        let mut rng = SeedTree::new(9).stream("scan2");
        let door = world
            .plan
            .door_between(RoomId::Biolab, RoomId::Main)
            .unwrap();
        // Standing right in the biolab doorway, main-hall beacons can slip in.
        let pos = Point2::new(door.center.x, 0.25);
        let mut foreign = 0usize;
        for i in 0..300 {
            let s = scan(&world, pos, SimTime::from_secs(i), &mut rng);
            foreign += s
                .hits
                .iter()
                .filter(|(id, _)| world.beacons.get(*id).unwrap().room == RoomId::Main)
                .count();
        }
        assert!(foreign > 0, "no doorway leakage observed");
    }

    #[test]
    fn scan_plan_replay_is_bit_identical_near_cell_boundaries() {
        // The plan is built once per dwell run, so it must reproduce
        // `scan_in` exactly even when the badge sits right on a field-cache
        // cell edge — where `walls_from` answers flip between neighbours.
        let world = World::icares();
        let cell = ares_habitat::fieldcache::CELL_M;
        let offsets = [
            -cell,
            -cell + 1e-9,
            -1e-9,
            0.0,
            1e-9,
            cell / 2.0,
            cell - 1e-9,
            cell,
        ];
        let mut plan = Vec::new();
        let (mut dist, mut walls, mut means) = (Vec::new(), Vec::new(), Vec::new());
        let mut case = 0u64;
        for room in RoomId::ALL {
            let center = world.plan.room_center(room);
            // Snap to the cell grid so the offsets actually straddle edges.
            let snapped = Point2::new(
                (center.x / cell).round() * cell,
                (center.y / cell).round() * cell,
            );
            for dx in offsets {
                for dy in offsets {
                    let pos = Point2::new(snapped.x + dx, snapped.y + dy);
                    for mode in [RfMode::Cached, RfMode::Exact] {
                        let badge_room = world.room_in_mode(pos, mode);
                        scan_plan_into(
                            &world, mode, badge_room, pos, &mut plan, &mut dist, &mut walls,
                            &mut means,
                        );
                        let seed = SeedTree::new(1234).stream_indexed("cell-edge", case);
                        case += 1;
                        let t = SimTime::from_secs(case as i64);
                        let via_plan = scan_from_plan(&world, &plan, t, &mut seed.clone());
                        let direct = scan_in(&world, mode, badge_room, pos, t, &mut seed.clone());
                        assert_eq!(via_plan, direct, "{mode:?} at ({}, {})", pos.x, pos.y);
                    }
                }
            }
        }
    }

    #[test]
    fn rssi_orders_by_distance_on_average() {
        let world = World::icares();
        let mut rng = SeedTree::new(10).stream("scan3");
        let room = RoomId::Office;
        let beacons: Vec<_> = world.beacons.in_room(room).collect();
        let near = beacons[0].position + ares_simkit::geometry::Vec2::new(0.3, -0.3);
        let mut near_sum = 0.0;
        let mut near_n = 0.0;
        let mut far_sum = 0.0;
        let mut far_n = 0.0;
        for i in 0..300 {
            let s = scan(&world, near, SimTime::from_secs(i), &mut rng);
            for (id, rssi) in &s.hits {
                if *id == beacons[0].id {
                    near_sum += rssi;
                    near_n += 1.0;
                } else if *id == beacons[1].id {
                    far_sum += rssi;
                    far_n += 1.0;
                }
            }
        }
        assert!(near_n > 0.0 && far_n > 0.0);
        assert!(near_sum / near_n > far_sum / far_n + 5.0);
    }
}
