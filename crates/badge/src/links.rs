//! Badge-to-badge links: 868 MHz proximity, infrared face-to-face contacts,
//! and opportunistic time-sync with the reference badge.

use crate::clockdrift::ClockSet;
use crate::records::{BadgeId, ProximityObs, SyncSample};
use crate::world::World;
use ares_crew::truth::{MissionTruth, WearState};
use ares_habitat::rf::Reception;
use ares_simkit::geometry::{Point2, Vec2};
use ares_simkit::time::SimTime;
use rand::Rng;

/// Samples the 868 MHz proximity observations a badge makes at one instant:
/// which other units it hears and at what RSSI.
pub fn proximity_sweep(
    world: &World,
    listener: BadgeId,
    listener_pos: Point2,
    units: &[(BadgeId, Point2)],
    t_local: SimTime,
    rng: &mut impl Rng,
) -> Vec<ProximityObs> {
    let mut out = Vec::new();
    for &(other, pos) in units {
        if other == listener {
            continue;
        }
        if let Reception::Received(rssi) =
            world.sub_ghz.transmit(&world.plan, pos, listener_pos, rng)
        {
            out.push(ProximityObs {
                t_local,
                other,
                rssi,
            });
        }
    }
    out
}

/// Samples an infrared exchange between two *worn* badges. Badges on desks
/// or chargers never register IR contacts (nobody faces them).
#[allow(clippy::too_many_arguments)]
pub fn ir_exchange(
    world: &World,
    a_pos: Point2,
    a_facing: Vec2,
    a_wear: WearState,
    b_pos: Point2,
    b_facing: Vec2,
    b_wear: WearState,
    rng: &mut impl Rng,
) -> bool {
    if !a_wear.is_worn() || !b_wear.is_worn() {
        return false;
    }
    world
        .ir
        .detect(&world.plan, a_pos, a_facing, b_pos, b_facing, rng)
}

/// Attempts an opportunistic sync exchange with the reference badge: succeeds
/// when the badge's BLE link to the station is up, and records both local
/// clocks' readings of the same true instant.
pub fn sync_attempt(
    world: &World,
    clocks: &ClockSet,
    badge: BadgeId,
    badge_pos: Point2,
    t_true: SimTime,
    rng: &mut impl Rng,
) -> Option<SyncSample> {
    if badge == BadgeId::REFERENCE {
        return None;
    }
    match world
        .ble
        .transmit(&world.plan, world.station, badge_pos, rng)
    {
        Reception::Received(_) => Some(SyncSample {
            t_local: clocks.clock(badge).local_time(t_true),
            t_reference: clocks.reference().local_time(t_true),
        }),
        Reception::Lost => None,
    }
}

/// Helper bundling the facing vector of a badge's wearer (or `None` when the
/// badge is off-body).
#[must_use]
pub fn worn_facing(
    world: &World,
    badge: BadgeId,
    t: SimTime,
    truth: &MissionTruth,
) -> Option<Vec2> {
    let carrier = world.carrier_of(badge, t.mission_day())?;
    let a = truth.of(carrier);
    if !a.wear_state(t).is_worn() {
        return None;
    }
    a.facing(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_habitat::rooms::RoomId;
    use ares_simkit::rng::SeedTree;
    use ares_simkit::time::SimDuration;

    #[test]
    fn proximity_hears_same_room_not_far_rooms() {
        let world = World::icares();
        let mut rng = SeedTree::new(20).stream("prox");
        let kitchen = world.plan.room_center(RoomId::Kitchen);
        let office = world.plan.room_center(RoomId::Office);
        let units = vec![
            (BadgeId(1), kitchen + Vec2::new(1.0, 0.0)),
            (BadgeId(2), office),
        ];
        let mut heard1 = 0;
        let mut heard2 = 0;
        for i in 0..200 {
            let obs = proximity_sweep(
                &world,
                BadgeId(0),
                kitchen,
                &units,
                SimTime::from_secs(i),
                &mut rng,
            );
            heard1 += obs.iter().filter(|o| o.other == BadgeId(1)).count();
            heard2 += obs.iter().filter(|o| o.other == BadgeId(2)).count();
        }
        assert!(heard1 > 150, "same-room unit heard {heard1}");
        assert_eq!(heard2, 0, "cross-habitat unit must be shielded");
    }

    #[test]
    fn ir_requires_worn_badges() {
        let world = World::icares();
        let mut rng = SeedTree::new(21).stream("ir");
        let p = world.plan.room_center(RoomId::Kitchen);
        let q = p + Vec2::new(1.0, 0.0);
        let east = Vec2::new(1.0, 0.0);
        let west = Vec2::new(-1.0, 0.0);
        let mut worn_hits = 0;
        for _ in 0..100 {
            if ir_exchange(
                &world,
                p,
                east,
                WearState::Worn,
                q,
                west,
                WearState::Worn,
                &mut rng,
            ) {
                worn_hits += 1;
            }
            assert!(!ir_exchange(
                &world,
                p,
                east,
                WearState::Docked,
                q,
                west,
                WearState::Worn,
                &mut rng
            ));
        }
        assert!(worn_hits > 60);
    }

    #[test]
    fn sync_works_near_station_and_is_consistent() {
        let world = World::icares();
        let clocks = ClockSet::generate(&SeedTree::new(7));
        let mut rng = SeedTree::new(22).stream("sync");
        let t = SimTime::from_day_hms(3, 22, 0, 0);
        // Docked at the station: sync succeeds almost always.
        let mut got = None;
        for _ in 0..20 {
            if let Some(s) = sync_attempt(&world, &clocks, BadgeId(0), world.station, t, &mut rng) {
                got = Some(s);
                break;
            }
        }
        let s = got.expect("sync at the station");
        // The pair encodes the true offset between the two clocks.
        let expected = clocks.clock(BadgeId(0)).local_time(t) - clocks.reference().local_time(t);
        assert!(((s.t_local - s.t_reference) - expected).abs() < SimDuration::from_micros(1));
        // Far away behind walls: never syncs.
        let biolab = world.plan.room_center(RoomId::Biolab);
        for _ in 0..50 {
            assert!(sync_attempt(&world, &clocks, BadgeId(0), biolab, t, &mut rng).is_none());
        }
    }

    #[test]
    fn reference_never_syncs_to_itself() {
        let world = World::icares();
        let clocks = ClockSet::generate(&SeedTree::new(7));
        let mut rng = SeedTree::new(23).stream("sync2");
        assert!(sync_attempt(
            &world,
            &clocks,
            BadgeId::REFERENCE,
            world.station,
            SimTime::from_secs(0),
            &mut rng
        )
        .is_none());
    }
}
