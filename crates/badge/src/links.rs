//! Badge-to-badge links: 868 MHz proximity, infrared face-to-face contacts,
//! and opportunistic time-sync with the reference badge.

use crate::clockdrift::ClockSet;
use crate::records::{BadgeId, ProximityObs, SyncSample};
use crate::world::{RfMode, World};
use ares_crew::truth::{MissionTruth, WearState};
use ares_habitat::rf::Reception;
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::{Point2, Vec2};
use ares_simkit::time::SimTime;
use rand::Rng;

/// Samples the 868 MHz proximity observations a badge makes at one instant:
/// which other units it hears and at what RSSI.
///
/// Same-room links skip geometry entirely (convex rooms cross zero walls).
/// Under [`RfMode::Cached`], cross-room links are first tested against the
/// plan's [`wall_floor`](ares_habitat::floorplan::FloorPlan::wall_floor)
/// lower bound — a pair whose *best possible* RSSI is
/// below sensitivity is dropped without touching geometry or randomness,
/// which is exactly what the exact path's pre-draw early-out would do with
/// the true wall count — and transmitters parked at the station resolve wall
/// counts from the station's cache table. Output and RNG consumption are
/// bit-identical across modes.
#[allow(clippy::too_many_arguments)]
pub fn proximity_sweep(
    world: &World,
    mode: RfMode,
    listener: BadgeId,
    listener_pos: Point2,
    listener_room: RoomId,
    units: &[(BadgeId, Point2, RoomId)],
    t_local: SimTime,
    rng: &mut impl Rng,
) -> Vec<ProximityObs> {
    let mut out = Vec::new();
    proximity_sweep_into(
        world,
        mode,
        listener,
        listener_pos,
        listener_room,
        units,
        t_local,
        rng,
        &mut out,
    );
    out
}

/// [`proximity_sweep`] appending into a caller-owned buffer (not cleared), so
/// the recording tick loop reuses one allocation across every sweep of a
/// unit-day. Observation order and RNG consumption are identical.
#[allow(clippy::too_many_arguments)]
pub fn proximity_sweep_into(
    world: &World,
    mode: RfMode,
    listener: BadgeId,
    listener_pos: Point2,
    listener_room: RoomId,
    units: &[(BadgeId, Point2, RoomId)],
    t_local: SimTime,
    rng: &mut impl Rng,
    out: &mut Vec<ProximityObs>,
) {
    let params = world.sub_ghz.params();
    for &(other, pos, other_room) in units {
        if other == listener {
            continue;
        }
        let d = pos.distance(listener_pos);
        let walls = match mode {
            RfMode::Cached if other_room == listener_room => 0,
            RfMode::Cached => {
                let floor = world.plan.wall_floor(other_room, listener_room);
                if floor >= 2
                    && params.mean_rssi(d, floor) + 6.0 * params.shadowing_sigma_db
                        < params.sensitivity_dbm
                {
                    // Even the wall-count lower bound puts the link below
                    // sensitivity: the exact path would early-out before
                    // drawing, so skipping here stays bit-identical.
                    continue;
                }
                if pos == world.station {
                    // Docked / uncarried transmitters sit exactly at the
                    // station — resolved from its per-cell table.
                    world.field_cache().walls_from(
                        &world.plan,
                        world.station_source(),
                        listener_pos,
                    )
                } else {
                    world.plan.walls_crossed(pos, listener_pos)
                }
            }
            // The honest baseline: per-packet geometry, no shortcuts (a
            // same-room scan finds 0 crossings, so the value is unchanged).
            RfMode::Exact => world.plan.walls_crossed(pos, listener_pos),
        };
        if let Reception::Received(rssi) = world.sub_ghz.transmit_known_walls(d, walls, rng) {
            out.push(ProximityObs {
                t_local,
                other,
                rssi,
            });
        }
    }
}

/// Samples an infrared exchange between two *worn* badges. Badges on desks
/// or chargers never register IR contacts (nobody faces them). Under
/// [`RfMode::Cached`], same-room exchanges (the overwhelmingly common case
/// within the 2 m IR range) skip the wall scan — rooms are convex so the
/// count is zero by construction; [`RfMode::Exact`] runs the full visibility
/// test per exchange.
#[allow(clippy::too_many_arguments)]
pub fn ir_exchange(
    world: &World,
    mode: RfMode,
    a_pos: Point2,
    a_facing: Vec2,
    a_wear: WearState,
    a_room: RoomId,
    b_pos: Point2,
    b_facing: Vec2,
    b_wear: WearState,
    b_room: RoomId,
    rng: &mut impl Rng,
) -> bool {
    if !a_wear.is_worn() || !b_wear.is_worn() {
        return false;
    }
    let visible = if mode == RfMode::Cached && a_room == b_room {
        world
            .ir
            .mutually_visible_known_walls(0, a_pos, a_facing, b_pos, b_facing)
    } else {
        world
            .ir
            .mutually_visible(&world.plan, a_pos, a_facing, b_pos, b_facing)
    };
    visible && rng.gen::<f64>() < world.ir.detection_prob
}

/// Attempts an opportunistic sync exchange with the reference badge: succeeds
/// when the badge's BLE link to the station is up, and records both local
/// clocks' readings of the same true instant. The station is a cache source,
/// so [`RfMode::Cached`] resolves the wall count with a table lookup.
pub fn sync_attempt(
    world: &World,
    mode: RfMode,
    clocks: &ClockSet,
    badge: BadgeId,
    badge_pos: Point2,
    t_true: SimTime,
    rng: &mut impl Rng,
) -> Option<SyncSample> {
    if badge == BadgeId::REFERENCE {
        return None;
    }
    let walls = match mode {
        RfMode::Cached => {
            world
                .field_cache()
                .walls_from(&world.plan, world.station_source(), badge_pos)
        }
        RfMode::Exact => world.plan.walls_crossed(world.station, badge_pos),
    };
    let d = world.station.distance(badge_pos);
    match world.ble.transmit_known_walls(d, walls, rng) {
        Reception::Received(_) => Some(SyncSample {
            t_local: clocks.clock(badge).local_time(t_true),
            t_reference: clocks.reference().local_time(t_true),
        }),
        Reception::Lost => None,
    }
}

/// The run-level half of [`sync_attempt`]: the station link's deterministic
/// mean RSSI for a badge at `badge_pos`, hoisted once per dwell run. Feeding
/// it to [`sync_attempt_with_mean`] reproduces [`sync_attempt`] bit-for-bit
/// (the mean is exactly what `transmit_known_walls` would recompute).
#[must_use]
pub fn sync_link_mean(world: &World, mode: RfMode, badge_pos: Point2) -> f64 {
    let walls = match mode {
        RfMode::Cached => {
            world
                .field_cache()
                .walls_from(&world.plan, world.station_source(), badge_pos)
        }
        RfMode::Exact => world.plan.walls_crossed(world.station, badge_pos),
    };
    let d = world.station.distance(badge_pos);
    world.ble.params().mean_rssi(d, walls)
}

/// [`sync_attempt`] with the station-link mean already hoisted (see
/// [`sync_link_mean`]). Same early-outs, draws and result.
pub fn sync_attempt_with_mean(
    world: &World,
    clocks: &ClockSet,
    badge: BadgeId,
    mean: f64,
    t_true: SimTime,
    rng: &mut impl Rng,
) -> Option<SyncSample> {
    if badge == BadgeId::REFERENCE {
        return None;
    }
    match world.ble.transmit_precomputed_mean(mean, rng) {
        Reception::Received(_) => Some(SyncSample {
            t_local: clocks.clock(badge).local_time(t_true),
            t_reference: clocks.reference().local_time(t_true),
        }),
        Reception::Lost => None,
    }
}

/// Helper bundling the facing vector of a badge's wearer (or `None` when the
/// badge is off-body).
#[must_use]
pub fn worn_facing(
    world: &World,
    badge: BadgeId,
    t: SimTime,
    truth: &MissionTruth,
) -> Option<Vec2> {
    let carrier = world.carrier_of(badge, t.mission_day())?;
    let a = truth.of(carrier);
    if !a.wear_state(t).is_worn() {
        return None;
    }
    a.facing(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_habitat::rooms::RoomId;
    use ares_simkit::rng::SeedTree;
    use ares_simkit::time::SimDuration;

    #[test]
    fn proximity_hears_same_room_not_far_rooms() {
        let world = World::icares();
        let mut rng = SeedTree::new(20).stream("prox");
        let kitchen = world.plan.room_center(RoomId::Kitchen);
        let office = world.plan.room_center(RoomId::Office);
        let units = vec![
            (BadgeId(1), kitchen + Vec2::new(1.0, 0.0), RoomId::Kitchen),
            (BadgeId(2), office, RoomId::Office),
        ];
        let mut heard1 = 0;
        let mut heard2 = 0;
        for i in 0..200 {
            for mode in [RfMode::Cached, RfMode::Exact] {
                let obs = proximity_sweep(
                    &world,
                    mode,
                    BadgeId(0),
                    kitchen,
                    RoomId::Kitchen,
                    &units,
                    SimTime::from_secs(i),
                    &mut rng,
                );
                heard1 += obs.iter().filter(|o| o.other == BadgeId(1)).count();
                heard2 += obs.iter().filter(|o| o.other == BadgeId(2)).count();
            }
        }
        assert!(heard1 > 300, "same-room unit heard {heard1}");
        assert_eq!(heard2, 0, "cross-habitat unit must be shielded");
    }

    #[test]
    fn ir_requires_worn_badges() {
        let world = World::icares();
        let mut rng = SeedTree::new(21).stream("ir");
        let p = world.plan.room_center(RoomId::Kitchen);
        let q = p + Vec2::new(1.0, 0.0);
        let east = Vec2::new(1.0, 0.0);
        let west = Vec2::new(-1.0, 0.0);
        let mut worn_hits = 0;
        for _ in 0..100 {
            if ir_exchange(
                &world,
                RfMode::Cached,
                p,
                east,
                WearState::Worn,
                RoomId::Kitchen,
                q,
                west,
                WearState::Worn,
                RoomId::Kitchen,
                &mut rng,
            ) {
                worn_hits += 1;
            }
            assert!(!ir_exchange(
                &world,
                RfMode::Exact,
                p,
                east,
                WearState::Docked,
                RoomId::Kitchen,
                q,
                west,
                WearState::Worn,
                RoomId::Kitchen,
                &mut rng
            ));
        }
        assert!(worn_hits > 60);
    }

    #[test]
    fn sync_works_near_station_and_is_consistent() {
        let world = World::icares();
        let clocks = ClockSet::generate(&SeedTree::new(7));
        let mut rng = SeedTree::new(22).stream("sync");
        let t = SimTime::from_day_hms(3, 22, 0, 0);
        // Docked at the station: sync succeeds almost always.
        let mut got = None;
        for _ in 0..20 {
            if let Some(s) = sync_attempt(
                &world,
                RfMode::Cached,
                &clocks,
                BadgeId(0),
                world.station,
                t,
                &mut rng,
            ) {
                got = Some(s);
                break;
            }
        }
        let s = got.expect("sync at the station");
        // The pair encodes the true offset between the two clocks.
        let expected = clocks.clock(BadgeId(0)).local_time(t) - clocks.reference().local_time(t);
        assert!(((s.t_local - s.t_reference) - expected).abs() < SimDuration::from_micros(1));
        // Far away behind walls: never syncs, in either mode.
        let biolab = world.plan.room_center(RoomId::Biolab);
        for _ in 0..50 {
            for mode in [RfMode::Cached, RfMode::Exact] {
                assert!(
                    sync_attempt(&world, mode, &clocks, BadgeId(0), biolab, t, &mut rng).is_none()
                );
            }
        }
    }

    #[test]
    fn reference_never_syncs_to_itself() {
        let world = World::icares();
        let clocks = ClockSet::generate(&SeedTree::new(7));
        let mut rng = SeedTree::new(23).stream("sync2");
        assert!(sync_attempt(
            &world,
            RfMode::Cached,
            &clocks,
            BadgeId::REFERENCE,
            world.station,
            SimTime::from_secs(0),
            &mut rng
        )
        .is_none());
    }
}
