//! Property tests for the badge device model.

use ares_badge::clockdrift::ClockSet;
use ares_badge::records::{BadgeId, BeaconScan, SamplingConfig};
use ares_badge::sensors::{ImuModel, OFF_BODY_VAR_THRESHOLD, WALK_VAR_THRESHOLD};
use ares_badge::storage::{decode_scan, encode_scan, StorageMeter};
use ares_crew::truth::WearState;
use ares_habitat::beacons::BeaconId;
use ares_simkit::geometry::Point2;
use ares_simkit::rng::SeedTree;
use ares_simkit::time::{SimDuration, SimTime};
use bytes::BytesMut;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scan_frames_decode_to_what_was_encoded(
        t in i64::MIN / 4..i64::MAX / 4,
        hits in prop::collection::vec((0u8..32, -120.0f64..0.0), 0..=32),
    ) {
        let scan = BeaconScan {
            t_local: SimTime::from_micros(t),
            hits: hits.iter().map(|&(b, r)| (BeaconId(b), r)).collect(),
        };
        let mut buf = BytesMut::new();
        encode_scan(&scan, &mut buf);
        let back = decode_scan(&mut buf.freeze()).expect("well-formed frame");
        prop_assert_eq!(back.t_local, scan.t_local);
        prop_assert_eq!(back.hits.len(), scan.hits.len());
        for ((ba, ra), (bb, rb)) in scan.hits.iter().zip(&back.hits) {
            prop_assert_eq!(ba, bb);
            prop_assert!((ra - rb).abs() <= 0.0051);
        }
    }

    #[test]
    fn truncated_frames_never_panic(
        t in 0i64..1_000_000,
        hits in prop::collection::vec((0u8..32, -120.0f64..0.0), 0..=32),
        cut in 0usize..64,
    ) {
        let scan = BeaconScan {
            t_local: SimTime::from_micros(t),
            hits: hits.iter().map(|&(b, r)| (BeaconId(b), r)).collect(),
        };
        let mut buf = BytesMut::new();
        encode_scan(&scan, &mut buf);
        let full = buf.freeze();
        let cut = cut.min(full.len());
        let mut prefix = full.slice(..cut);
        // Either decodes (cut == full length) or returns a structured error.
        match decode_scan(&mut prefix) {
            Ok(s) => prop_assert_eq!(s.hits.len(), scan.hits.len()),
            Err(_) => prop_assert!(cut < full.len()),
        }
    }

    #[test]
    fn clock_sets_are_deterministic_and_bounded(seed in 0u64..100_000) {
        let a = ClockSet::generate(&SeedTree::new(seed));
        let b = ClockSet::generate(&SeedTree::new(seed));
        prop_assert_eq!(a.clone(), b);
        for i in 0..13u8 {
            let c = a.clock(BadgeId(i));
            prop_assert!(c.skew_ppm().abs() < 200.0, "skew {}", c.skew_ppm());
            prop_assert!(c.offset().abs() < SimDuration::from_secs(15));
        }
        // The reference is always the most stable unit.
        let worst_field = (0..6)
            .map(|i| a.clock(BadgeId(i)).skew_ppm().abs())
            .fold(0.0f64, f64::max);
        prop_assert!(a.reference().skew_ppm().abs() <= worst_field.max(0.5));
    }

    #[test]
    fn imu_feature_classes_never_bleed(energy in 0.7f64..1.4, seed in 0u64..10_000) {
        let model = ImuModel::default();
        let mut rng = SeedTree::new(seed).stream("prop-imu");
        let t = SimTime::EPOCH;
        for _ in 0..20 {
            let walk = model.sample(t, WearState::Worn, true, energy, &mut rng);
            prop_assert!(walk.accel_var > WALK_VAR_THRESHOLD);
            let off = model.sample(t, WearState::LeftAt(Point2::ORIGIN), false, energy, &mut rng);
            prop_assert!(off.accel_var < OFF_BODY_VAR_THRESHOLD);
            let still = model.sample(t, WearState::Worn, false, energy, &mut rng);
            prop_assert!(still.accel_var > OFF_BODY_VAR_THRESHOLD);
            prop_assert!(still.accel_var < WALK_VAR_THRESHOLD);
        }
    }

    #[test]
    fn storage_meter_is_additive(
        spans in prop::collection::vec((0i64..86_400, prop::bool::ANY), 1..20),
    ) {
        let cfg = SamplingConfig::default();
        let mut one = StorageMeter::new();
        let mut parts = 0u64;
        for &(secs, active) in &spans {
            let mut m = StorageMeter::new();
            let d = SimDuration::from_secs(secs);
            if active {
                one.record_active(&cfg, d);
                m.record_active(&cfg, d);
            } else {
                one.record_docked(&cfg, d);
                m.record_docked(&cfg, d);
            }
            parts += m.bytes();
        }
        prop_assert_eq!(one.bytes(), parts);
    }
}
