//! Property tests for the badge device model.

use ares_badge::clockdrift::ClockSet;
use ares_badge::records::{
    AudioFrame, BadgeId, BadgeLog, BeaconScan, EnvSample, ImuSample, IrContact, ProximityObs,
    SamplingConfig, SyncSample,
};
use ares_badge::sensors::{ImuModel, OFF_BODY_VAR_THRESHOLD, WALK_VAR_THRESHOLD};
use ares_badge::storage::{decode_scan, encode_scan, StorageMeter};
use ares_badge::telemetry::{Column, TelemetryStore};
use ares_crew::truth::WearState;
use ares_habitat::beacons::BeaconId;
use ares_simkit::geometry::Point2;
use ares_simkit::rng::SeedTree;
use ares_simkit::time::{SimDuration, SimTime};
use bytes::BytesMut;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scan_frames_decode_to_what_was_encoded(
        t in i64::MIN / 4..i64::MAX / 4,
        hits in prop::collection::vec((0u8..32, -120.0f64..0.0), 0..=32),
    ) {
        let scan = BeaconScan {
            t_local: SimTime::from_micros(t),
            hits: hits.iter().map(|&(b, r)| (BeaconId(b), r)).collect(),
        };
        let mut buf = BytesMut::new();
        encode_scan(&scan, &mut buf);
        let back = decode_scan(&mut buf.freeze()).expect("well-formed frame");
        prop_assert_eq!(back.t_local, scan.t_local);
        prop_assert_eq!(back.hits.len(), scan.hits.len());
        for ((ba, ra), (bb, rb)) in scan.hits.iter().zip(&back.hits) {
            prop_assert_eq!(ba, bb);
            prop_assert!((ra - rb).abs() <= 0.0051);
        }
    }

    #[test]
    fn truncated_frames_never_panic(
        t in 0i64..1_000_000,
        hits in prop::collection::vec((0u8..32, -120.0f64..0.0), 0..=32),
        cut in 0usize..64,
    ) {
        let scan = BeaconScan {
            t_local: SimTime::from_micros(t),
            hits: hits.iter().map(|&(b, r)| (BeaconId(b), r)).collect(),
        };
        let mut buf = BytesMut::new();
        encode_scan(&scan, &mut buf);
        let full = buf.freeze();
        let cut = cut.min(full.len());
        let mut prefix = full.slice(..cut);
        // Either decodes (cut == full length) or returns a structured error.
        match decode_scan(&mut prefix) {
            Ok(s) => prop_assert_eq!(s.hits.len(), scan.hits.len()),
            Err(_) => prop_assert!(cut < full.len()),
        }
    }

    #[test]
    fn clock_sets_are_deterministic_and_bounded(seed in 0u64..100_000) {
        let a = ClockSet::generate(&SeedTree::new(seed));
        let b = ClockSet::generate(&SeedTree::new(seed));
        prop_assert_eq!(a.clone(), b);
        for i in 0..13u8 {
            let c = a.clock(BadgeId(i));
            prop_assert!(c.skew_ppm().abs() < 200.0, "skew {}", c.skew_ppm());
            prop_assert!(c.offset().abs() < SimDuration::from_secs(15));
        }
        // The reference is always the most stable unit.
        let worst_field = (0..6)
            .map(|i| a.clock(BadgeId(i)).skew_ppm().abs())
            .fold(0.0f64, f64::max);
        prop_assert!(a.reference().skew_ppm().abs() <= worst_field.max(0.5));
    }

    #[test]
    fn imu_feature_classes_never_bleed(energy in 0.7f64..1.4, seed in 0u64..10_000) {
        let model = ImuModel::default();
        let mut rng = SeedTree::new(seed).stream("prop-imu");
        let t = SimTime::EPOCH;
        for _ in 0..20 {
            let walk = model.sample(t, WearState::Worn, true, energy, &mut rng);
            prop_assert!(walk.accel_var > WALK_VAR_THRESHOLD);
            let off = model.sample(t, WearState::LeftAt(Point2::ORIGIN), false, energy, &mut rng);
            prop_assert!(off.accel_var < OFF_BODY_VAR_THRESHOLD);
            let still = model.sample(t, WearState::Worn, false, energy, &mut rng);
            prop_assert!(still.accel_var > OFF_BODY_VAR_THRESHOLD);
            prop_assert!(still.accel_var < WALK_VAR_THRESHOLD);
        }
    }

    #[test]
    fn storage_meter_is_additive(
        spans in prop::collection::vec((0i64..86_400, prop::bool::ANY), 1..20),
    ) {
        let cfg = SamplingConfig::default();
        let mut one = StorageMeter::new();
        let mut parts = 0u64;
        for &(secs, active) in &spans {
            let mut m = StorageMeter::new();
            let d = SimDuration::from_secs(secs);
            if active {
                one.record_active(&cfg, d);
                m.record_active(&cfg, d);
            } else {
                one.record_docked(&cfg, d);
                m.record_docked(&cfg, d);
            }
            parts += m.bytes();
        }
        prop_assert_eq!(one.bytes(), parts);
    }

    #[test]
    fn telemetry_round_trip_is_lossless_up_to_stable_sort(
        scans in prop::collection::vec(
            (0i64..5_000, prop::collection::vec((0u8..27, -95.0f64..-30.0), 0..4)), 0..32),
        audio in prop::collection::vec((0i64..5_000, 30.0f64..90.0, prop::bool::ANY), 0..32),
        imu in prop::collection::vec((0i64..5_000, 0.0f64..2.0), 0..32),
        env in prop::collection::vec((0i64..5_000, -10.0f64..40.0), 0..32),
        prox in prop::collection::vec((0i64..5_000, 0u8..13, -100.0f64..-40.0), 0..32),
        ir in prop::collection::vec((0i64..5_000, 0u8..13), 0..32),
        sync in prop::collection::vec((0i64..5_000, 0i64..5_000), 0..32),
        bytes in 0u64..1 << 62,
    ) {
        let mut log = BadgeLog::new(BadgeId(7));
        log.scans = scans
            .iter()
            .map(|(t, hits)| BeaconScan {
                t_local: SimTime::from_secs(*t),
                hits: hits.iter().map(|&(b, r)| (BeaconId(b), r)).collect(),
            })
            .collect();
        log.audio = audio
            .iter()
            .map(|&(t, level_db, voiced)| AudioFrame {
                t_local: SimTime::from_secs(t),
                level_db,
                voiced,
                f0_hz: voiced.then_some(140.0),
            })
            .collect();
        log.imu = imu
            .iter()
            .map(|&(t, accel_var)| ImuSample {
                t_local: SimTime::from_secs(t),
                accel_var,
                accel_mean: 9.81,
                step_hz: None,
            })
            .collect();
        log.env = env
            .iter()
            .map(|&(t, temperature_c)| EnvSample {
                t_local: SimTime::from_secs(t),
                temperature_c,
                pressure_hpa: 990.0,
                light_lux: 120.0,
            })
            .collect();
        log.proximity = prox
            .iter()
            .map(|&(t, other, rssi)| ProximityObs {
                t_local: SimTime::from_secs(t),
                other: BadgeId(other),
                rssi,
            })
            .collect();
        log.ir = ir
            .iter()
            .map(|&(t, other)| IrContact {
                t_local: SimTime::from_secs(t),
                other: BadgeId(other),
            })
            .collect();
        log.sync = sync
            .iter()
            .map(|&(t, r)| SyncSample {
                t_local: SimTime::from_secs(t),
                t_reference: SimTime::from_secs(r),
            })
            .collect();
        log.bytes_written = bytes;

        // The columnar store keeps each family time-sorted; arrival order
        // breaks ties. So the round trip reproduces the stable sort of the
        // input — and exactly the input when it was already in order.
        let mut expected = log.clone();
        expected.scans.sort_by_key(|r| r.t_local);
        expected.audio.sort_by_key(|r| r.t_local);
        expected.imu.sort_by_key(|r| r.t_local);
        expected.env.sort_by_key(|r| r.t_local);
        expected.proximity.sort_by_key(|r| r.t_local);
        expected.ir.sort_by_key(|r| r.t_local);
        expected.sync.sort_by_key(|r| r.t_local);

        let store = TelemetryStore::from(&log);
        prop_assert_eq!(store.record_count(), log.record_count());
        let back = BadgeLog::from(&store);
        prop_assert_eq!(back, expected);
    }

    #[test]
    fn telemetry_window_matches_naive_filter(
        ts in prop::collection::vec(0i64..2_000, 0..160),
        a in 0i64..2_100,
        b in 0i64..2_100,
    ) {
        let mut col = Column::new();
        for (i, &t) in ts.iter().enumerate() {
            col.push(SimTime::from_secs(t), i);
        }
        let (start, end) = (
            SimTime::from_secs(a.min(b)),
            SimTime::from_secs(a.max(b)),
        );
        let mut rows: Vec<(SimTime, usize)> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| (SimTime::from_secs(t), i))
            .collect();
        rows.sort_by_key(|&(t, _)| t); // stable, like the column's insert
        let expect: Vec<(SimTime, usize)> = rows
            .into_iter()
            .filter(|&(t, _)| start <= t && t < end)
            .collect();
        let got: Vec<(SimTime, usize)> =
            col.window(start, end).iter().map(|(t, &p)| (t, p)).collect();
        prop_assert_eq!(got, expect);
    }
}
