//! Indoor localization from beacon scans.
//!
//! Two levels, as in the paper:
//!
//! * **Room classification** — "the room the badge located in was detected
//!   perfectly" because the metal walls shield foreign beacons; we classify
//!   by the strongest (and majority) received beacon's room.
//! * **In-room position** — RSSI ranging against the room's beacons followed
//!   by weighted-centroid initialization and Gauss–Newton refinement, giving
//!   the "dominant position of an astronaut within a 1 s-frame" that feeds
//!   the 28 cm × 28 cm heatmaps of Fig. 3.

use crate::sync::SyncCorrection;
use ares_badge::records::{BadgeLog, BeaconScan};
use ares_habitat::beacons::BeaconDeployment;
use ares_habitat::rf::ChannelParams;
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::{Grid, Point2};
use ares_simkit::series::Series;
use ares_simkit::time::SimTime;
use serde::{Deserialize, Serialize};

/// Localization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalizationParams {
    /// Calibrated channel model used for RSSI → distance ranging.
    pub channel: ChannelParams,
    /// Gauss–Newton iterations for in-room refinement.
    pub gn_iterations: usize,
    /// Minimum hits to attempt a position fix (room detection needs one).
    pub min_hits_for_fix: usize,
    /// Rolling window of same-room scans whose RSSI is averaged per beacon
    /// before ranging — log-normal shadowing shrinks by √window.
    pub smoothing_window: usize,
}

impl Default for LocalizationParams {
    fn default() -> Self {
        LocalizationParams {
            channel: ChannelParams::ble(),
            gn_iterations: 6,
            min_hits_for_fix: 2,
            smoothing_window: 5,
        }
    }
}

/// Averages the RSSI of several scans per beacon (the smoothing step applied
/// before ranging). The merged scan carries the latest timestamp.
#[must_use]
pub fn merge_scans(scans: &[&BeaconScan]) -> BeaconScan {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<ares_habitat::beacons::BeaconId, (f64, usize)> = BTreeMap::new();
    let mut t_local = SimTime::EPOCH;
    for s in scans {
        t_local = t_local.max(s.t_local);
        for &(id, rssi) in &s.hits {
            let e = acc.entry(id).or_insert((0.0, 0));
            e.0 += rssi;
            e.1 += 1;
        }
    }
    BeaconScan {
        t_local,
        hits: acc
            .into_iter()
            .map(|(id, (sum, n))| (id, sum / n as f64))
            .collect(),
    }
}

/// One localization fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fix {
    /// Detected room.
    pub room: RoomId,
    /// Estimated in-room position (room centre when hits are too few).
    pub position: Point2,
    /// Number of advertisements used.
    pub hits: usize,
}

/// The localized track of one badge: a fix per scan, on reference time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PositionTrack {
    /// Fixes in time order.
    pub fixes: Series<Fix>,
}

impl PositionTrack {
    /// The fix at or before `t`.
    #[must_use]
    pub fn at(&self, t: SimTime) -> Option<&Fix> {
        self.fixes.at(t).map(|s| &s.value)
    }

    /// The detected room at `t`.
    #[must_use]
    pub fn room_at(&self, t: SimTime) -> Option<RoomId> {
        self.at(t).map(|f| f.room)
    }
}

/// Classifies the room of one scan: the room owning the *strongest* received
/// beacon, confirmed by majority vote among all hits (doorway leakage can
/// sneak one foreign advertisement in, but never a majority *and* maximum).
#[must_use]
pub fn classify_room(scan: &BeaconScan, beacons: &BeaconDeployment) -> Option<RoomId> {
    let strongest = scan
        .hits
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite RSSI"))?;
    let room = beacons.get(strongest.0)?.room;
    Some(room)
}

/// Estimates the in-room position from one scan's hits.
///
/// Ranging inverts the calibrated path-loss model; the initial guess is the
/// distance-weighted centroid of the room's heard beacons, refined by
/// Gauss–Newton on the range residuals and clamped into the room polygon.
#[must_use]
pub fn estimate_position(
    scan: &BeaconScan,
    room: RoomId,
    beacons: &BeaconDeployment,
    plan: &ares_habitat::floorplan::FloorPlan,
    params: &LocalizationParams,
) -> Point2 {
    let poly = plan.room_polygon(room);
    let anchors: Vec<(Point2, f64)> = scan
        .hits
        .iter()
        .filter_map(|&(id, rssi)| {
            let b = beacons.get(id)?;
            (b.room == room).then(|| (b.position, params.channel.distance_for_rssi(rssi)))
        })
        .collect();
    if anchors.len() < params.min_hits_for_fix {
        return match anchors.first() {
            Some(&(p, _)) => poly.clamp_inside(p),
            None => poly.centroid(),
        };
    }
    // Weighted centroid: closer (smaller estimated distance) pulls harder.
    let mut wx = 0.0;
    let mut wy = 0.0;
    let mut wsum = 0.0;
    for &(p, d) in &anchors {
        let w = 1.0 / d.max(0.3);
        wx += p.x * w;
        wy += p.y * w;
        wsum += w;
    }
    let init = Point2::new(wx / wsum, wy / wsum);
    let mut est = init;
    // Regularized Gauss–Newton on f_i(p) = |p − a_i| − d_i, with a Tikhonov
    // pull toward the centroid initialization: with only three anchors and
    // log-normal range noise, the unregularized solution amplifies noise
    // (measured in the `ablation_localization` bench), so we shrink toward
    // the low-variance initial guess.
    let lambda = 0.8;
    for _ in 0..params.gn_iterations {
        let mut jt_j = [[lambda, 0.0], [0.0, lambda]];
        let mut jt_r = [lambda * (est.x - init.x), lambda * (est.y - init.y)];
        for &(a, d) in &anchors {
            let diff = est - a;
            let dist = diff.norm().max(1e-6);
            let r = dist - d;
            let j = [diff.x / dist, diff.y / dist];
            jt_j[0][0] += j[0] * j[0];
            jt_j[0][1] += j[0] * j[1];
            jt_j[1][0] += j[1] * j[0];
            jt_j[1][1] += j[1] * j[1];
            jt_r[0] += j[0] * r;
            jt_r[1] += j[1] * r;
        }
        let det = jt_j[0][0] * jt_j[1][1] - jt_j[0][1] * jt_j[1][0];
        if det.abs() < 1e-9 {
            break;
        }
        let dx = (jt_j[1][1] * jt_r[0] - jt_j[0][1] * jt_r[1]) / det;
        let dy = (-jt_j[1][0] * jt_r[0] + jt_j[0][0] * jt_r[1]) / det;
        est = Point2::new(est.x - dx, est.y - dy);
        if dx.hypot(dy) < 1e-3 {
            break;
        }
    }
    poly.clamp_inside(est)
}

/// The rolling same-room scan window — the smoothing stage kernel shared by
/// the batch localizer and the streaming analyzer.
///
/// Recent scans classified to the same room are retained (a room change
/// flushes the window) and their RSSI is averaged per beacon before ranging,
/// shrinking log-normal shadowing by √window.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScanSmoother {
    window: std::collections::VecDeque<BeaconScan>,
    room: Option<RoomId>,
}

impl ScanSmoother {
    /// An empty smoother.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one scan: classifies its room, flushes the window on a room
    /// change, caps it at the smoothing depth, and returns the room —
    /// `None` when the scan heard no classifiable beacon (the scan is then
    /// ignored, exactly as in the batch path).
    pub fn push(
        &mut self,
        scan: &BeaconScan,
        beacons: &BeaconDeployment,
        params: &LocalizationParams,
    ) -> Option<RoomId> {
        let room = classify_room(scan, beacons)?;
        if self.room.is_some_and(|r| r != room) {
            self.window.clear();
        }
        self.room = Some(room);
        self.window.push_back(scan.clone());
        while self.window.len() > params.smoothing_window.max(1) {
            self.window.pop_front();
        }
        Some(room)
    }

    /// The RSSI-averaged merge of the current window.
    #[must_use]
    pub fn merged(&self) -> BeaconScan {
        merge_scans(&self.window.iter().collect::<Vec<_>>())
    }

    /// The room of the most recent classified scan.
    #[must_use]
    pub fn room(&self) -> Option<RoomId> {
        self.room
    }

    /// Scans currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

/// Localizes a whole badge log onto reference time.
#[must_use]
pub fn localize(
    log: &BadgeLog,
    corr: &SyncCorrection,
    beacons: &BeaconDeployment,
    plan: &ares_habitat::floorplan::FloorPlan,
    params: &LocalizationParams,
) -> PositionTrack {
    let mut track = PositionTrack::default();
    let mut last_t = None;
    let mut smoother = ScanSmoother::new();
    for scan in &log.scans {
        let Some(room) = smoother.push(scan, beacons, params) else {
            continue;
        };
        let position = estimate_position(&smoother.merged(), room, beacons, plan, params);
        let t = corr.to_reference(scan.t_local);
        // Guard against pathological correction foldbacks.
        if last_t.is_some_and(|lt| t < lt) {
            continue;
        }
        last_t = Some(t);
        track.fixes.push(
            t,
            Fix {
                room,
                position,
                hits: scan.hits.len(),
            },
        );
    }
    track
}

/// A positional heatmap: seconds spent per 28 cm grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// The grid.
    pub grid: Grid,
    /// Dwell seconds per cell, row-major `[iy][ix]` flattened.
    pub seconds: Vec<f64>,
}

/// The paper's heatmap cell size: 28 cm.
pub const HEATMAP_CELL_M: f64 = 0.28;

impl Heatmap {
    /// Builds an empty heatmap covering the floor plan.
    #[must_use]
    pub fn covering(plan: &ares_habitat::floorplan::FloorPlan) -> Self {
        let (min, max) = plan.bounds();
        let grid = Grid::covering(min, max, HEATMAP_CELL_M);
        let n = grid.len();
        Heatmap {
            grid,
            seconds: vec![0.0; n],
        }
    }

    /// Accumulates a track into the map, crediting each fix with the time to
    /// the next fix (capped so gaps don't smear).
    pub fn accumulate(&mut self, track: &PositionTrack) {
        let fixes = track.fixes.samples();
        for w in fixes.windows(2) {
            let dt = (w[1].t - w[0].t).as_secs_f64().min(5.0);
            self.credit(w[0].value.position, dt);
        }
        if let Some(last) = fixes.last() {
            self.credit(last.value.position, 1.0);
        }
    }

    fn credit(&mut self, p: Point2, seconds: f64) {
        if let Some((ix, iy)) = self.grid.cell_of(p) {
            self.seconds[iy * self.grid.nx() + ix] += seconds;
        }
    }

    /// Dwell seconds of a cell.
    #[must_use]
    pub fn cell_seconds(&self, ix: usize, iy: usize) -> f64 {
        self.seconds[iy * self.grid.nx() + ix]
    }

    /// Total accumulated seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Log-scale intensity in `[0, 1]` for rendering (the paper's histograms
    /// use a logarithmic scale).
    #[must_use]
    pub fn log_intensity(&self, ix: usize, iy: usize) -> f64 {
        let max = self.seconds.iter().cloned().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return 0.0;
        }
        let v = self.cell_seconds(ix, iy);
        if v <= 0.0 {
            0.0
        } else {
            (1.0 + v).ln() / (1.0 + max).ln()
        }
    }

    /// Mean distance of dwell mass from the centroid of the room it falls in
    /// (peripheral rooms only). Quantifies astronaut A's stay-in-the-middle
    /// signature from Fig. 3: A's value is markedly smaller than everyone
    /// else's.
    #[must_use]
    pub fn mean_center_distance(&self, plan: &ares_habitat::floorplan::FloorPlan) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for iy in 0..self.grid.ny() {
            for ix in 0..self.grid.nx() {
                let s = self.cell_seconds(ix, iy);
                if s <= 0.0 {
                    continue;
                }
                let c = self.grid.cell_center(ix, iy);
                for room in RoomId::FIG2 {
                    if plan.room_polygon(room).contains(c) {
                        num += s * c.distance(plan.room_polygon(room).centroid());
                        den += s;
                        break;
                    }
                }
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Mean distance of dwell mass from a point (used to quantify astronaut
    /// A's stay-in-the-middle signature).
    #[must_use]
    pub fn mean_distance_from(&self, p: Point2) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for iy in 0..self.grid.ny() {
            for ix in 0..self.grid.nx() {
                let s = self.cell_seconds(ix, iy);
                if s > 0.0 {
                    num += s * self.grid.cell_center(ix, iy).distance(p);
                    den += s;
                }
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_badge::scanner;
    use ares_badge::world::World;
    use ares_simkit::rng::SeedTree;

    #[test]
    fn room_classification_is_perfect_at_stations() {
        let world = World::icares();
        let params = LocalizationParams::default();
        let mut rng = SeedTree::new(31).stream("loc");
        for room in RoomId::FIG2 {
            let pos = world.plan.room_center(room);
            for i in 0..50 {
                let scan = scanner::scan(&world, pos, SimTime::from_secs(i), &mut rng);
                if scan.hits.is_empty() {
                    continue;
                }
                assert_eq!(
                    classify_room(&scan, &world.beacons),
                    Some(room),
                    "misclassified {room}"
                );
            }
        }
        let _ = params;
    }

    #[test]
    fn position_error_is_sub_room() {
        let world = World::icares();
        let params = LocalizationParams::default();
        let mut rng = SeedTree::new(32).stream("loc2");
        let mut total_err = 0.0;
        let mut n = 0;
        for room in [RoomId::Biolab, RoomId::Kitchen, RoomId::Office] {
            let truth_pos =
                world.plan.room_center(room) + ares_simkit::geometry::Vec2::new(0.7, -0.6);
            for i in 0..100 {
                let scan = scanner::scan(&world, truth_pos, SimTime::from_secs(i), &mut rng);
                let Some(r) = classify_room(&scan, &world.beacons) else {
                    continue;
                };
                let est = estimate_position(&scan, r, &world.beacons, &world.plan, &params);
                total_err += est.distance(truth_pos);
                n += 1;
            }
        }
        let mean_err = total_err / n as f64;
        assert!(
            mean_err < 1.6,
            "mean in-room error {mean_err:.2} m too large"
        );
    }

    #[test]
    fn gauss_newton_beats_centroid_alone() {
        let world = World::icares();
        let refined = LocalizationParams::default();
        let coarse = LocalizationParams {
            gn_iterations: 0,
            ..refined
        };
        let mut rng = SeedTree::new(33).stream("loc3");
        // An off-centre truth position exposes centroid bias. Both variants
        // get the same RSSI smoothing the production path applies.
        let room = RoomId::Workshop;
        let truth_pos = world.plan.room_center(room) + ares_simkit::geometry::Vec2::new(1.3, 1.1);
        let (mut err_gn, mut err_c, mut n) = (0.0, 0.0, 0);
        let mut recent: Vec<ares_badge::records::BeaconScan> = Vec::new();
        for i in 0..400 {
            let scan = scanner::scan(&world, truth_pos, SimTime::from_secs(i), &mut rng);
            if classify_room(&scan, &world.beacons) != Some(room) {
                continue;
            }
            recent.push(scan);
            if recent.len() > 5 {
                recent.remove(0);
            }
            if recent.len() < 5 {
                continue;
            }
            let merged = merge_scans(&recent.iter().collect::<Vec<_>>());
            err_gn += estimate_position(&merged, room, &world.beacons, &world.plan, &refined)
                .distance(truth_pos);
            err_c += estimate_position(&merged, room, &world.beacons, &world.plan, &coarse)
                .distance(truth_pos);
            n += 1;
        }
        assert!(n > 200);
        assert!(
            err_gn < err_c,
            "refinement must help on smoothed RSSI: GN {err_gn:.1} vs centroid {err_c:.1}"
        );
    }

    #[test]
    fn heatmap_accumulates_dwell() {
        let world = World::icares();
        let mut track = PositionTrack::default();
        let p = world.plan.room_center(RoomId::Kitchen);
        for i in 0..60 {
            track.fixes.push(
                SimTime::from_secs(i),
                Fix {
                    room: RoomId::Kitchen,
                    position: p,
                    hits: 3,
                },
            );
        }
        let mut map = Heatmap::covering(&world.plan);
        map.accumulate(&track);
        assert!((map.total_seconds() - 60.0).abs() < 1.0);
        let (ix, iy) = map.grid.cell_of(p).unwrap();
        assert!(map.cell_seconds(ix, iy) > 50.0);
        assert!(map.log_intensity(ix, iy) > 0.99);
    }
}
