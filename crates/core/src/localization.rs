//! Indoor localization from beacon scans.
//!
//! Two levels, as in the paper:
//!
//! * **Room classification** — "the room the badge located in was detected
//!   perfectly" because the metal walls shield foreign beacons; we classify
//!   by the strongest (and majority) received beacon's room.
//! * **In-room position** — RSSI ranging against the room's beacons followed
//!   by weighted-centroid initialization and Gauss–Newton refinement, giving
//!   the "dominant position of an astronaut within a 1 s-frame" that feeds
//!   the 28 cm × 28 cm heatmaps of Fig. 3.

use crate::sync::SyncCorrection;
use ares_badge::records::{BadgeLog, BeaconScan};
use ares_badge::telemetry::{ColumnView, ScanHits};
use ares_habitat::beacons::{BeaconDeployment, BeaconId, BeaconIndex};
use ares_habitat::rf::{ChannelParams, RangingTable};
use ares_habitat::rooms::RoomId;
use ares_simkit::geometry::{Grid, Point2, Polygon};
use ares_simkit::lanes;
use ares_simkit::series::Series;
use ares_simkit::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Localization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalizationParams {
    /// Calibrated channel model used for RSSI → distance ranging.
    pub channel: ChannelParams,
    /// Gauss–Newton iterations for in-room refinement.
    pub gn_iterations: usize,
    /// Minimum hits to attempt a position fix (room detection needs one).
    pub min_hits_for_fix: usize,
    /// Rolling window of same-room scans whose RSSI is averaged per beacon
    /// before ranging — log-normal shadowing shrinks by √window.
    pub smoothing_window: usize,
}

impl Default for LocalizationParams {
    fn default() -> Self {
        LocalizationParams {
            channel: ChannelParams::ble(),
            gn_iterations: 6,
            min_hits_for_fix: 2,
            smoothing_window: 5,
        }
    }
}

/// Averages the RSSI of several scans per beacon (the smoothing step applied
/// before ranging). The merged scan carries the latest timestamp.
#[must_use]
pub fn merge_scans(scans: &[&BeaconScan]) -> BeaconScan {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<ares_habitat::beacons::BeaconId, (f64, usize)> = BTreeMap::new();
    let mut t_local = SimTime::EPOCH;
    for s in scans {
        t_local = t_local.max(s.t_local);
        for &(id, rssi) in &s.hits {
            let e = acc.entry(id).or_insert((0.0, 0));
            e.0 += rssi;
            e.1 += 1;
        }
    }
    BeaconScan {
        t_local,
        hits: acc
            .into_iter()
            .map(|(id, (sum, n))| (id, sum / n as f64))
            .collect(),
    }
}

/// One localization fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fix {
    /// Detected room.
    pub room: RoomId,
    /// Estimated in-room position (room centre when hits are too few).
    pub position: Point2,
    /// Number of advertisements used.
    pub hits: usize,
}

/// The localized track of one badge: a fix per scan, on reference time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PositionTrack {
    /// Fixes in time order.
    pub fixes: Series<Fix>,
}

impl PositionTrack {
    /// The fix at or before `t`.
    #[must_use]
    pub fn at(&self, t: SimTime) -> Option<&Fix> {
        self.fixes.at(t).map(|s| &s.value)
    }

    /// The detected room at `t`.
    #[must_use]
    pub fn room_at(&self, t: SimTime) -> Option<RoomId> {
        self.at(t).map(|f| f.room)
    }
}

/// Classifies the room of one scan: the room owning the *strongest* received
/// beacon, confirmed by majority vote among all hits (doorway leakage can
/// sneak one foreign advertisement in, but never a majority *and* maximum).
#[must_use]
pub fn classify_room(scan: &BeaconScan, beacons: &BeaconDeployment) -> Option<RoomId> {
    let strongest = scan
        .hits
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite RSSI"))?;
    let room = beacons.get(strongest.0)?.room;
    Some(room)
}

/// [`classify_room`] over raw advertisement hits, resolving beacons through
/// the dense [`BeaconIndex`] — the form used by the localization hot path
/// and the streaming analyzer.
#[must_use]
pub fn classify_room_hits(hits: &[(BeaconId, f64)], index: &BeaconIndex) -> Option<RoomId> {
    let strongest = hits
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite RSSI"))?;
    Some(index.get(strongest.0)?.room)
}

/// Estimates the in-room position from one scan's hits.
///
/// Ranging inverts the calibrated path-loss model; the initial guess is the
/// distance-weighted centroid of the room's heard beacons, refined by
/// Gauss–Newton on the range residuals and clamped into the room polygon.
#[must_use]
pub fn estimate_position(
    scan: &BeaconScan,
    room: RoomId,
    beacons: &BeaconDeployment,
    plan: &ares_habitat::floorplan::FloorPlan,
    params: &LocalizationParams,
) -> Point2 {
    let poly = plan.room_polygon(room);
    let anchors: Vec<(Point2, f64)> = scan
        .hits
        .iter()
        .filter_map(|&(id, rssi)| {
            let b = beacons.get(id)?;
            (b.room == room).then(|| (b.position, params.channel.distance_for_rssi(rssi)))
        })
        .collect();
    solve_position(&anchors, poly, params)
}

/// Solves a position from ranged in-room anchors: weighted-centroid
/// initialization refined by regularized Gauss–Newton, clamped into the room
/// polygon. Falls back to the first anchor (or the room centre) when hits
/// are too few for a fix. Shared by the exact [`estimate_position`] and the
/// table-ranged hot path inside [`localize`].
fn solve_position(
    anchors: &[(Point2, f64)],
    poly: &Polygon,
    params: &LocalizationParams,
) -> Point2 {
    if anchors.len() < params.min_hits_for_fix {
        return match anchors.first() {
            Some(&(p, _)) => poly.clamp_inside(p),
            None => poly.centroid(),
        };
    }
    // Weighted centroid: closer (smaller estimated distance) pulls harder.
    let mut wx = 0.0;
    let mut wy = 0.0;
    let mut wsum = 0.0;
    for &(p, d) in anchors {
        let w = 1.0 / d.max(0.3);
        wx += p.x * w;
        wy += p.y * w;
        wsum += w;
    }
    let init = Point2::new(wx / wsum, wy / wsum);
    let mut est = init;
    // Regularized Gauss–Newton on f_i(p) = |p − a_i| − d_i, with a Tikhonov
    // pull toward the centroid initialization: with only three anchors and
    // log-normal range noise, the unregularized solution amplifies noise
    // (measured in the `ablation_localization` bench), so we shrink toward
    // the low-variance initial guess.
    let lambda = 0.8;
    for _ in 0..params.gn_iterations {
        let mut jt_j = [[lambda, 0.0], [0.0, lambda]];
        let mut jt_r = [lambda * (est.x - init.x), lambda * (est.y - init.y)];
        for &(a, d) in anchors {
            let diff = est - a;
            // Plain sqrt, not hypot: anchor offsets are room-scale meters, so
            // the overflow guard hypot pays for is wasted in this inner loop.
            let dist = (diff.x * diff.x + diff.y * diff.y).sqrt().max(1e-6);
            let r = dist - d;
            let j = [diff.x / dist, diff.y / dist];
            jt_j[0][0] += j[0] * j[0];
            jt_j[0][1] += j[0] * j[1];
            jt_j[1][0] += j[1] * j[0];
            jt_j[1][1] += j[1] * j[1];
            jt_r[0] += j[0] * r;
            jt_r[1] += j[1] * r;
        }
        let det = jt_j[0][0] * jt_j[1][1] - jt_j[0][1] * jt_j[1][0];
        if det.abs() < 1e-9 {
            break;
        }
        let dx = (jt_j[1][1] * jt_r[0] - jt_j[0][1] * jt_r[1]) / det;
        let dy = (-jt_j[1][0] * jt_r[0] + jt_j[0][0] * jt_r[1]) / det;
        est = Point2::new(est.x - dx, est.y - dy);
        if dx * dx + dy * dy < 1e-6 {
            break;
        }
    }
    poly.clamp_inside(est)
}

/// The rolling same-room scan window — the smoothing stage kernel shared by
/// the batch localizer and the streaming analyzer.
///
/// Recent scans classified to the same room are retained (a room change
/// flushes the window) and their RSSI is averaged per beacon before ranging,
/// shrinking log-normal shadowing by √window.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScanSmoother {
    /// Local timestamps of the retained scans, in arrival order.
    ts: VecDeque<SimTime>,
    /// Advertisement count of each retained scan (delimits `hits`).
    counts: VecDeque<u32>,
    /// The retained scans' hits, flattened scan-by-scan (columnar: no
    /// per-scan `Vec` clone on push).
    hits: VecDeque<(BeaconId, f64)>,
    room: Option<RoomId>,
}

impl ScanSmoother {
    /// An empty smoother.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one scan: classifies its room, flushes the window on a room
    /// change, caps it at the smoothing depth, and returns the room —
    /// `None` when the scan heard no classifiable beacon (the scan is then
    /// ignored, exactly as in the batch path).
    pub fn push(
        &mut self,
        t_local: SimTime,
        hits: &[(BeaconId, f64)],
        index: &BeaconIndex,
        params: &LocalizationParams,
    ) -> Option<RoomId> {
        let room = classify_room_hits(hits, index)?;
        if self.room.is_some_and(|r| r != room) {
            self.ts.clear();
            self.counts.clear();
            self.hits.clear();
        }
        self.room = Some(room);
        self.ts.push_back(t_local);
        #[allow(clippy::cast_possible_truncation)]
        self.counts.push_back(hits.len() as u32);
        self.hits.extend(hits.iter().copied());
        while self.ts.len() > params.smoothing_window.max(1) {
            self.ts.pop_front();
            let n = self.counts.pop_front().unwrap_or(0);
            self.hits.drain(..n as usize);
        }
        Some(room)
    }

    /// Merges the window's RSSI per beacon into `out` (sorted by id),
    /// reusing `scratch` — the allocation-free form of [`merge_scans`]
    /// used by the localization hot path.
    pub fn merge_into(&self, scratch: &mut MergeScratch, out: &mut Vec<(BeaconId, f64)>) {
        out.clear();
        self.for_each_merged_sum(scratch, |id, sum, count| {
            out.push((id, sum / f64::from(count)));
        });
    }

    /// Accumulates the window's per-beacon RSSI sums (scan-arrival order,
    /// exactly as [`ScanSmoother::merge_into`]) and yields
    /// `(id, sum, count)` per touched beacon in ascending id order.
    ///
    /// The batched localizer consumes this form directly: deferring the
    /// `sum / count` division lets it run lane-wide over a whole block of
    /// scans, while `merge_into` divides inline — the same two operands in
    /// the same operation either way, so both paths produce bit-identical
    /// averaged RSSI.
    pub(crate) fn for_each_merged_sum(
        &self,
        scratch: &mut MergeScratch,
        mut f: impl FnMut(BeaconId, f64, u32),
    ) {
        for &(id, rssi) in &self.hits {
            let i = id.0 as usize;
            if i >= scratch.sums.len() {
                scratch.sums.resize(i + 1, 0.0);
                scratch.counts.resize(i + 1, 0);
            }
            if scratch.counts[i] == 0 {
                scratch.touched.push(id.0);
            }
            scratch.sums[i] += rssi;
            scratch.counts[i] += 1;
        }
        scratch.touched.sort_unstable();
        for &raw in &scratch.touched {
            let i = raw as usize;
            f(BeaconId(raw), scratch.sums[i], scratch.counts[i]);
            scratch.sums[i] = 0.0;
            scratch.counts[i] = 0;
        }
        scratch.touched.clear();
    }

    /// The RSSI-averaged merge of the current window (compatibility form;
    /// the hot path uses [`ScanSmoother::merge_into`]).
    #[must_use]
    pub fn merged(&self) -> BeaconScan {
        let mut scratch = MergeScratch::default();
        let mut hits = Vec::new();
        self.merge_into(&mut scratch, &mut hits);
        BeaconScan {
            t_local: self.latest_t().unwrap_or(SimTime::EPOCH),
            hits,
        }
    }

    /// The newest local timestamp in the window, if any.
    #[must_use]
    pub fn latest_t(&self) -> Option<SimTime> {
        self.ts.iter().copied().max()
    }

    /// The room of the most recent classified scan.
    #[must_use]
    pub fn room(&self) -> Option<RoomId> {
        self.room
    }

    /// Scans currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }
}

/// Reusable per-beacon accumulator for [`ScanSmoother::merge_into`] —
/// replaces the per-scan `BTreeMap` allocation of [`merge_scans`] with flat
/// arrays indexed by beacon id. Accumulation order (scan arrival) and output
/// order (ascending id) match `merge_scans` bit for bit.
#[derive(Debug, Clone, Default)]
pub struct MergeScratch {
    sums: Vec<f64>,
    counts: Vec<u32>,
    touched: Vec<u8>,
}

/// The shared localization loop: smoothing window → per-beacon RSSI merge →
/// table ranging → position solve, with reusable scratch buffers so the
/// steady state allocates nothing per scan. Both the row-façade
/// [`localize`] and the columnar [`localize_scans`] drive this one loop, so
/// the two paths cannot diverge.
fn localize_inner<'h>(
    scans: impl Iterator<Item = (SimTime, &'h [(BeaconId, f64)])>,
    corr: &SyncCorrection,
    index: &BeaconIndex,
    plan: &ares_habitat::floorplan::FloorPlan,
    params: &LocalizationParams,
) -> PositionTrack {
    let ranging = RangingTable::new(&params.channel);
    let mut track = PositionTrack::default();
    let mut last_t = None;
    let mut smoother = ScanSmoother::new();
    let mut scratch = MergeScratch::default();
    let mut merged: Vec<(BeaconId, f64)> = Vec::new();
    let mut anchors: Vec<(Point2, f64)> = Vec::new();
    for (t_local, hits) in scans {
        let Some(room) = smoother.push(t_local, hits, index, params) else {
            continue;
        };
        smoother.merge_into(&mut scratch, &mut merged);
        let poly = plan.room_polygon(room);
        anchors.clear();
        for &(id, rssi) in &merged {
            if let Some(b) = index.get(id) {
                if b.room == room {
                    anchors.push((b.position, ranging.distance(rssi)));
                }
            }
        }
        let position = solve_position(&anchors, poly, params);
        let t = corr.to_reference(t_local);
        // Guard against pathological correction foldbacks.
        if last_t.is_some_and(|lt| t < lt) {
            continue;
        }
        last_t = Some(t);
        track.fixes.push(
            t,
            Fix {
                room,
                position,
                hits: hits.len(),
            },
        );
    }
    track
}

/// Localizes a whole badge log onto reference time (row façade; builds the
/// beacon index on the fly).
#[must_use]
pub fn localize(
    log: &BadgeLog,
    corr: &SyncCorrection,
    beacons: &BeaconDeployment,
    plan: &ares_habitat::floorplan::FloorPlan,
    params: &LocalizationParams,
) -> PositionTrack {
    let index = beacons.index();
    localize_inner(
        log.scans.iter().map(|s| (s.t_local, s.hits.as_slice())),
        corr,
        &index,
        plan,
        params,
    )
}

/// The scalar reference form of [`localize_scans`]: the same loop as the row
/// façade, one scan at a time. Kept as the bit-identity oracle the batched
/// kernel is tested against.
#[must_use]
pub fn localize_scans_scalar(
    scans: ColumnView<'_, ScanHits>,
    corr: &SyncCorrection,
    index: &BeaconIndex,
    plan: &ares_habitat::floorplan::FloorPlan,
    params: &LocalizationParams,
) -> PositionTrack {
    localize_inner(
        scans.iter().map(|(t, h)| (t, h.as_slice())),
        corr,
        index,
        plan,
        params,
    )
}

/// Scans buffered per batched solve block. Large enough to amortize the
/// lane-transpose setup, small enough that the block's SoA buffers stay in
/// L2.
const BLOCK_SCANS: usize = 1024;

/// One smoothed scan awaiting the batched position solve: its anchors sit in
/// the block's flat SoA buffers at `astart..astart + alen`.
#[derive(Debug, Clone, Copy)]
struct PendingFix {
    t_local: SimTime,
    room: RoomId,
    hits: u32,
    astart: u32,
    alen: u32,
}

/// Reusable SoA buffers of the batched localizer. One per kernel invocation;
/// every `Vec` is recycled across blocks, so the steady state allocates
/// nothing per scan.
#[derive(Debug)]
struct BatchScratch {
    /// Per-beacon RSSI accumulator, indexed by raw id — fixed arrays sized
    /// to the `u8` id universe, so the scatter loop needs no bounds or
    /// resize checks.
    sums: [f64; 256],
    counts: [u32; 256],
    touched: Vec<u8>,
    /// Scans buffered for the current block, in arrival order.
    pend: Vec<PendingFix>,
    /// In-room anchor coordinates, flattened scan-by-scan.
    ax: Vec<f64>,
    ay: Vec<f64>,
    /// Per-anchor RSSI sums (phase A), averaged RSSI then ranged distance
    /// in place (phase B).
    ad: Vec<f64>,
    /// Per-anchor window hit counts, pre-converted to f64 for the lane-wide
    /// `sum / count` division.
    an: Vec<f64>,
    /// Solved (already clamped) position per pending scan.
    pos: Vec<Point2>,
    /// Pending scans bucketed by anchor count: `by_len[n]` holds indexes
    /// into `pend` whose scans have exactly `n` anchors.
    by_len: Vec<Vec<u32>>,
    /// Lane-transposed anchors of one solve group: row `a` holds anchor `a`
    /// of up to [`lanes::LANES`] scans.
    lx: Vec<[f64; lanes::LANES]>,
    ly: Vec<[f64; lanes::LANES]>,
    ld: Vec<[f64; lanes::LANES]>,
    /// Gathered local timestamps and their batch-corrected reference times.
    tloc: Vec<SimTime>,
    tref: Vec<SimTime>,
}

impl Default for BatchScratch {
    fn default() -> Self {
        BatchScratch {
            sums: [0.0; 256],
            counts: [0; 256],
            touched: Vec::new(),
            pend: Vec::new(),
            ax: Vec::new(),
            ay: Vec::new(),
            ad: Vec::new(),
            an: Vec::new(),
            pos: Vec::new(),
            by_len: Vec::new(),
            lx: Vec::new(),
            ly: Vec::new(),
            ld: Vec::new(),
            tloc: Vec::new(),
            tref: Vec::new(),
        }
    }
}

impl BatchScratch {
    /// Solves every buffered scan and emits its fix, then resets the block.
    ///
    /// Phase B of the batched kernel: lane-wide RSSI averaging and ranging,
    /// anchor-count bucketing, lane-transposed weighted-centroid +
    /// Gauss–Newton solves, then in-arrival-order emission through the
    /// batch-corrected clock map and the monotonic guard — each step
    /// performing, per scan, exactly the operations of the scalar loop.
    #[allow(clippy::cast_possible_truncation)]
    fn flush(
        &mut self,
        ranging: &RangingTable,
        corr: &SyncCorrection,
        plan: &ares_habitat::floorplan::FloorPlan,
        params: &LocalizationParams,
        last_t: &mut Option<SimTime>,
        track: &mut PositionTrack,
    ) {
        use lanes::{as_lanes, as_lanes_mut, LANES};
        if self.pend.is_empty() {
            return;
        }
        // Averaged RSSI: the merge's deferred `sum / count`, lane-wide, then
        // table ranging in place. Same two operations per anchor as the
        // scalar `merge_into` + `ranging.distance`.
        {
            let len = self.ad.len();
            let tail_start = len - len % LANES;
            let (dc, _) = as_lanes_mut(&mut self.ad);
            let (nc, _) = as_lanes(&self.an);
            for (d, n) in dc.iter_mut().zip(nc) {
                for l in 0..LANES {
                    d[l] /= n[l];
                }
            }
            for i in tail_start..len {
                self.ad[i] /= self.an[i];
            }
        }
        ranging.distances_in_place(&mut self.ad);
        // Bucket scans by anchor count so each solve group shares one lane
        // geometry — no masks, no padding columns.
        for b in &mut self.by_len {
            b.clear();
        }
        for (i, p) in self.pend.iter().enumerate() {
            let n = p.alen as usize;
            if n >= self.by_len.len() {
                self.by_len.resize_with(n + 1, Vec::new);
            }
            self.by_len[n].push(i as u32);
        }

        self.pos.clear();
        self.pos.resize(self.pend.len(), Point2::new(0.0, 0.0));
        for n in 0..self.by_len.len() {
            if self.by_len[n].is_empty() {
                continue;
            }
            if n < params.min_hits_for_fix {
                // Too few anchors for a solve: first anchor clamped inside,
                // or the room centre — the scalar fallback verbatim.
                for gi in 0..self.by_len[n].len() {
                    let i = self.by_len[n][gi] as usize;
                    let p = self.pend[i];
                    let poly = plan.room_polygon(p.room);
                    self.pos[i] = if p.alen == 0 {
                        poly.centroid()
                    } else {
                        poly.clamp_inside(Point2::new(
                            self.ax[p.astart as usize],
                            self.ay[p.astart as usize],
                        ))
                    };
                }
                continue;
            }
            self.lx.clear();
            self.lx.resize(n, [0.0; LANES]);
            self.ly.clear();
            self.ly.resize(n, [0.0; LANES]);
            self.ld.clear();
            self.ld.resize(n, [0.0; LANES]);
            let mut g = 0;
            while g < self.by_len[n].len() {
                let glen = LANES.min(self.by_len[n].len() - g);
                // Transpose the group's anchors into lane rows; tail groups
                // pad by repeating the last scan (its duplicate lanes are
                // solved and discarded).
                for l in 0..LANES {
                    let i = self.by_len[n][g + l.min(glen - 1)] as usize;
                    let s = self.pend[i].astart as usize;
                    for a in 0..n {
                        self.lx[a][l] = self.ax[s + a];
                        self.ly[a][l] = self.ay[s + a];
                        self.ld[a][l] = self.ad[s + a];
                    }
                }
                let (ex, ey) = solve_lanes(&self.lx, &self.ly, &self.ld, params.gn_iterations);
                for l in 0..glen {
                    let i = self.by_len[n][g + l] as usize;
                    let room = self.pend[i].room;
                    self.pos[i] = plan
                        .room_polygon(room)
                        .clamp_inside(Point2::new(ex[l], ey[l]));
                }
                g += glen;
            }
        }

        // Emit in arrival order: batch clock correction, monotonic guard,
        // fix push — the scalar tail of `localize_inner`, verbatim.
        self.tloc.clear();
        self.tloc.extend(self.pend.iter().map(|p| p.t_local));
        self.tref.clear();
        corr.to_reference_batch(&self.tloc, &mut self.tref);
        for (i, p) in self.pend.iter().enumerate() {
            let t = self.tref[i];
            if last_t.is_some_and(|lt| t < lt) {
                continue;
            }
            *last_t = Some(t);
            track.fixes.push(
                t,
                Fix {
                    room: p.room,
                    position: self.pos[i],
                    hits: p.hits as usize,
                },
            );
        }
        self.pend.clear();
        self.ax.clear();
        self.ay.clear();
        self.ad.clear();
        self.an.clear();
    }
}

/// Lane-batched weighted-centroid initialization + regularized Gauss–Newton:
/// [`lanes::LANES`] scans solved at once, every scan in the group sharing the
/// same anchor count `n` (= row count of the transposed inputs).
///
/// Per lane this performs exactly the operations of [`solve_position`]'s
/// solve path, in the same order — including the per-scan early exits, which
/// become per-lane `conv` flags (a converged lane's estimate is frozen while
/// the group finishes). The lane loops carry no cross-lane operations, so
/// autovectorization cannot reassociate anything: outputs are bit-identical
/// to the scalar solver.
fn solve_lanes(
    ax: &[[f64; lanes::LANES]],
    ay: &[[f64; lanes::LANES]],
    ad: &[[f64; lanes::LANES]],
    gn_iterations: usize,
) -> ([f64; lanes::LANES], [f64; lanes::LANES]) {
    use lanes::{splat, LANES};
    let mut wx = splat(0.0);
    let mut wy = splat(0.0);
    let mut wsum = splat(0.0);
    for a in 0..ax.len() {
        for l in 0..LANES {
            let w = 1.0 / ad[a][l].max(0.3);
            wx[l] += ax[a][l] * w;
            wy[l] += ay[a][l] * w;
            wsum[l] += w;
        }
    }
    let mut ix = splat(0.0);
    let mut iy = splat(0.0);
    for l in 0..LANES {
        ix[l] = wx[l] / wsum[l];
        iy[l] = wy[l] / wsum[l];
    }
    let mut ex = ix;
    let mut ey = iy;
    let mut conv = [false; LANES];
    let lambda = 0.8;
    for _ in 0..gn_iterations {
        if conv == [true; LANES] {
            break;
        }
        // J^T J is symmetric; the scalar solver's [0][1] and [1][0] entries
        // accumulate the same products, so one lane register serves both.
        let mut a00 = splat(lambda);
        let mut a01 = splat(0.0);
        let mut a11 = splat(lambda);
        let mut r0 = splat(0.0);
        let mut r1 = splat(0.0);
        for l in 0..LANES {
            r0[l] = lambda * (ex[l] - ix[l]);
            r1[l] = lambda * (ey[l] - iy[l]);
        }
        for a in 0..ax.len() {
            for l in 0..LANES {
                let dx = ex[l] - ax[a][l];
                let dy = ey[l] - ay[a][l];
                let dist = (dx * dx + dy * dy).sqrt().max(1e-6);
                let r = dist - ad[a][l];
                let j0 = dx / dist;
                let j1 = dy / dist;
                a00[l] += j0 * j0;
                a01[l] += j0 * j1;
                a11[l] += j1 * j1;
                r0[l] += j0 * r;
                r1[l] += j1 * r;
            }
        }
        for l in 0..LANES {
            if conv[l] {
                continue;
            }
            let det = a00[l] * a11[l] - a01[l] * a01[l];
            if det.abs() < 1e-9 {
                conv[l] = true;
                continue;
            }
            let dx = (a11[l] * r0[l] - a01[l] * r1[l]) / det;
            let dy = (-a01[l] * r0[l] + a00[l] * r1[l]) / det;
            ex[l] -= dx;
            ey[l] -= dy;
            if dx * dx + dy * dy < 1e-6 {
                conv[l] = true;
            }
        }
    }
    (ex, ey)
}

/// Localizes a columnar scan view onto reference time — the batched SoA hot
/// path driven by the engine (the pre-built [`BeaconIndex`] comes from
/// `MissionContext`).
///
/// Phase A walks scans in order, windowing them by **index ring** directly
/// over the column — the same window [`ScanSmoother`] keeps (last
/// `smoothing_window` classifiable scans, flushed on a room change) without
/// copying any hits — and scatter-merges each window into fixed per-beacon
/// accumulators, gathering each scan's in-room anchors (RSSI still as
/// `sum`/`count` pairs) into flat SoA buffers. Every [`BLOCK_SCANS`] scans,
/// phase B ([`BatchScratch::flush`]) averages, ranges, and solves the whole
/// block lane-wide.
///
/// Every per-scan floating-point operation matches
/// [`localize_scans_scalar`] in kind and order (accumulation in scan-arrival
/// order, output in ascending beacon id), so the track is bit-identical to
/// the scalar path — the contract `tests/batched_kernels.rs` enforces.
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub fn localize_scans(
    scans: ColumnView<'_, ScanHits>,
    corr: &SyncCorrection,
    index: &BeaconIndex,
    plan: &ares_habitat::floorplan::FloorPlan,
    params: &LocalizationParams,
) -> PositionTrack {
    let ranging = RangingTable::new(&params.channel);
    let mut track = PositionTrack::default();
    let mut last_t = None;
    let mut batch = BatchScratch::default();
    let window = params.smoothing_window.max(1);
    let mut ring: Vec<u32> = Vec::with_capacity(window);
    let mut room_cur: Option<RoomId> = None;
    let ts = scans.ts();
    let payloads = scans.payloads();
    for (si, hits) in payloads.iter().enumerate() {
        let Some(room) = classify_room_hits(hits, index) else {
            continue;
        };
        if room_cur.is_some_and(|r| r != room) {
            ring.clear();
        }
        room_cur = Some(room);
        if ring.len() == window {
            ring.remove(0);
        }
        ring.push(si as u32);
        for &wi in &ring {
            for &(id, rssi) in &payloads[wi as usize] {
                let i = id.0 as usize;
                if batch.counts[i] == 0 {
                    batch.touched.push(id.0);
                }
                batch.sums[i] += rssi;
                batch.counts[i] += 1;
            }
        }
        batch.touched.sort_unstable();
        let astart = batch.ax.len() as u32;
        for ti in 0..batch.touched.len() {
            let raw = batch.touched[ti];
            let i = raw as usize;
            if let Some(b) = index.get(BeaconId(raw)) {
                if b.room == room {
                    batch.ax.push(b.position.x);
                    batch.ay.push(b.position.y);
                    batch.ad.push(batch.sums[i]);
                    batch.an.push(f64::from(batch.counts[i]));
                }
            }
            batch.sums[i] = 0.0;
            batch.counts[i] = 0;
        }
        batch.touched.clear();
        batch.pend.push(PendingFix {
            t_local: ts[si],
            room,
            hits: hits.len() as u32,
            astart,
            alen: batch.ax.len() as u32 - astart,
        });
        if batch.pend.len() >= BLOCK_SCANS {
            batch.flush(&ranging, corr, plan, params, &mut last_t, &mut track);
        }
    }
    batch.flush(&ranging, corr, plan, params, &mut last_t, &mut track);
    track
}

/// A positional heatmap: seconds spent per 28 cm grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// The grid.
    pub grid: Grid,
    /// Dwell seconds per cell, row-major `[iy][ix]` flattened.
    pub seconds: Vec<f64>,
}

/// The paper's heatmap cell size: 28 cm.
pub const HEATMAP_CELL_M: f64 = 0.28;

impl Heatmap {
    /// Builds an empty heatmap covering the floor plan.
    #[must_use]
    pub fn covering(plan: &ares_habitat::floorplan::FloorPlan) -> Self {
        let (min, max) = plan.bounds();
        let grid = Grid::covering(min, max, HEATMAP_CELL_M);
        let n = grid.len();
        Heatmap {
            grid,
            seconds: vec![0.0; n],
        }
    }

    /// Accumulates a track into the map, crediting each fix with the time to
    /// the next fix (capped so gaps don't smear).
    pub fn accumulate(&mut self, track: &PositionTrack) {
        let fixes = track.fixes.samples();
        for w in fixes.windows(2) {
            let dt = (w[1].t - w[0].t).as_secs_f64().min(5.0);
            self.credit(w[0].value.position, dt);
        }
        if let Some(last) = fixes.last() {
            self.credit(last.value.position, 1.0);
        }
    }

    fn credit(&mut self, p: Point2, seconds: f64) {
        if let Some((ix, iy)) = self.grid.cell_of(p) {
            self.seconds[iy * self.grid.nx() + ix] += seconds;
        }
    }

    /// Dwell seconds of a cell.
    #[must_use]
    pub fn cell_seconds(&self, ix: usize, iy: usize) -> f64 {
        self.seconds[iy * self.grid.nx() + ix]
    }

    /// Total accumulated seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Log-scale intensity in `[0, 1]` for rendering (the paper's histograms
    /// use a logarithmic scale).
    #[must_use]
    pub fn log_intensity(&self, ix: usize, iy: usize) -> f64 {
        let max = self.seconds.iter().cloned().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return 0.0;
        }
        let v = self.cell_seconds(ix, iy);
        if v <= 0.0 {
            0.0
        } else {
            (1.0 + v).ln() / (1.0 + max).ln()
        }
    }

    /// Mean distance of dwell mass from the centroid of the room it falls in
    /// (peripheral rooms only). Quantifies astronaut A's stay-in-the-middle
    /// signature from Fig. 3: A's value is markedly smaller than everyone
    /// else's.
    #[must_use]
    pub fn mean_center_distance(&self, plan: &ares_habitat::floorplan::FloorPlan) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for iy in 0..self.grid.ny() {
            for ix in 0..self.grid.nx() {
                let s = self.cell_seconds(ix, iy);
                if s <= 0.0 {
                    continue;
                }
                let c = self.grid.cell_center(ix, iy);
                for room in RoomId::FIG2 {
                    if plan.room_polygon(room).contains(c) {
                        num += s * c.distance(plan.room_polygon(room).centroid());
                        den += s;
                        break;
                    }
                }
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Mean distance of dwell mass from a point (used to quantify astronaut
    /// A's stay-in-the-middle signature).
    #[must_use]
    pub fn mean_distance_from(&self, p: Point2) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for iy in 0..self.grid.ny() {
            for ix in 0..self.grid.nx() {
                let s = self.cell_seconds(ix, iy);
                if s > 0.0 {
                    num += s * self.grid.cell_center(ix, iy).distance(p);
                    den += s;
                }
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_badge::scanner;
    use ares_badge::world::World;
    use ares_simkit::rng::SeedTree;

    #[test]
    fn room_classification_is_near_perfect_at_stations() {
        let world = World::icares();
        let params = LocalizationParams::default();
        let mut rng = SeedTree::new(31).stream("loc");
        let mut correct = 0u32;
        let mut total = 0u32;
        for room in RoomId::FIG2 {
            let pos = world.plan.room_center(room);
            for i in 0..50 {
                let scan = scanner::scan(&world, pos, SimTime::from_secs(i), &mut rng);
                if scan.hits.is_empty() {
                    continue;
                }
                total += 1;
                if classify_room(&scan, &world.beacons) == Some(room) {
                    correct += 1;
                }
            }
        }
        // A room-centre scan can very rarely lose every in-room packet to
        // fading while a doorway leak slips in — the artifact the dwell
        // filter downstream absorbs. Near-perfect, not bitwise-perfect, is
        // the seed-robust expectation.
        assert!(total > 300);
        let accuracy = f64::from(correct) / f64::from(total);
        assert!(accuracy > 0.99, "accuracy {accuracy:.4}");
        let _ = params;
    }

    #[test]
    fn position_error_is_sub_room() {
        let world = World::icares();
        let params = LocalizationParams::default();
        let mut rng = SeedTree::new(32).stream("loc2");
        let mut total_err = 0.0;
        let mut n = 0;
        for room in [RoomId::Biolab, RoomId::Kitchen, RoomId::Office] {
            let truth_pos =
                world.plan.room_center(room) + ares_simkit::geometry::Vec2::new(0.7, -0.6);
            for i in 0..100 {
                let scan = scanner::scan(&world, truth_pos, SimTime::from_secs(i), &mut rng);
                let Some(r) = classify_room(&scan, &world.beacons) else {
                    continue;
                };
                let est = estimate_position(&scan, r, &world.beacons, &world.plan, &params);
                total_err += est.distance(truth_pos);
                n += 1;
            }
        }
        let mean_err = total_err / n as f64;
        assert!(
            mean_err < 1.6,
            "mean in-room error {mean_err:.2} m too large"
        );
    }

    #[test]
    fn gauss_newton_beats_centroid_alone() {
        let world = World::icares();
        let refined = LocalizationParams::default();
        let coarse = LocalizationParams {
            gn_iterations: 0,
            ..refined
        };
        let mut rng = SeedTree::new(33).stream("loc3");
        // An off-centre truth position exposes centroid bias. Both variants
        // get the same RSSI smoothing the production path applies.
        let room = RoomId::Workshop;
        let truth_pos = world.plan.room_center(room) + ares_simkit::geometry::Vec2::new(1.3, 1.1);
        let (mut err_gn, mut err_c, mut n) = (0.0, 0.0, 0);
        let mut recent: Vec<ares_badge::records::BeaconScan> = Vec::new();
        for i in 0..400 {
            let scan = scanner::scan(&world, truth_pos, SimTime::from_secs(i), &mut rng);
            if classify_room(&scan, &world.beacons) != Some(room) {
                continue;
            }
            recent.push(scan);
            if recent.len() > 5 {
                recent.remove(0);
            }
            if recent.len() < 5 {
                continue;
            }
            let merged = merge_scans(&recent.iter().collect::<Vec<_>>());
            err_gn += estimate_position(&merged, room, &world.beacons, &world.plan, &refined)
                .distance(truth_pos);
            err_c += estimate_position(&merged, room, &world.beacons, &world.plan, &coarse)
                .distance(truth_pos);
            n += 1;
        }
        assert!(n > 200);
        assert!(
            err_gn < err_c,
            "refinement must help on smoothed RSSI: GN {err_gn:.1} vs centroid {err_c:.1}"
        );
    }

    #[test]
    fn flattened_smoother_matches_merge_scans() {
        let world = World::icares();
        let params = LocalizationParams::default();
        let index = world.beacons.index();
        let mut rng = SeedTree::new(34).stream("loc4");
        let pos = world.plan.room_center(RoomId::Workshop);
        let mut smoother = ScanSmoother::new();
        let mut window: Vec<ares_badge::records::BeaconScan> = Vec::new();
        for i in 0..40 {
            let scan = scanner::scan(&world, pos, SimTime::from_secs(i), &mut rng);
            let room = smoother.push(scan.t_local, &scan.hits, &index, &params);
            assert_eq!(room, classify_room(&scan, &world.beacons));
            if room.is_none() {
                continue;
            }
            window.push(scan);
            if window.len() > params.smoothing_window {
                window.remove(0);
            }
            let expect = merge_scans(&window.iter().collect::<Vec<_>>());
            assert_eq!(smoother.merged(), expect, "scan {i}");
            assert_eq!(smoother.len(), window.len());
        }
        assert!(!smoother.is_empty());
    }

    #[test]
    fn columnar_localize_matches_row_facade() {
        use ares_badge::records::BadgeLog;
        use ares_badge::telemetry::TelemetryStore;
        let world = World::icares();
        let params = LocalizationParams::default();
        let index = world.beacons.index();
        let mut rng = SeedTree::new(35).stream("loc5");
        let mut log = BadgeLog::new(ares_badge::records::BadgeId(0));
        for (i, room) in [RoomId::Kitchen, RoomId::Biolab, RoomId::Office]
            .into_iter()
            .cycle()
            .take(120)
            .enumerate()
        {
            let pos = world.plan.room_center(room);
            log.scans.push(scanner::scan(
                &world,
                pos,
                SimTime::from_secs(i as i64),
                &mut rng,
            ));
        }
        let corr = SyncCorrection::identity();
        let row = localize(&log, &corr, &world.beacons, &world.plan, &params);
        let store = TelemetryStore::from(&log);
        let col = localize_scans(store.view().scans, &corr, &index, &world.plan, &params);
        assert_eq!(row, col, "columnar path must match the row façade");
        assert!(!row.fixes.is_empty());
    }

    #[test]
    fn heatmap_accumulates_dwell() {
        let world = World::icares();
        let mut track = PositionTrack::default();
        let p = world.plan.room_center(RoomId::Kitchen);
        for i in 0..60 {
            track.fixes.push(
                SimTime::from_secs(i),
                Fix {
                    room: RoomId::Kitchen,
                    position: p,
                    hits: 3,
                },
            );
        }
        let mut map = Heatmap::covering(&world.plan);
        map.accumulate(&track);
        assert!((map.total_seconds() - 60.0).abs() < 1.0);
        let (ix, iy) = map.grid.cell_of(p).unwrap();
        assert!(map.cell_seconds(ix, iy) > 50.0);
        assert!(map.log_intensity(ix, iy) > 0.99);
    }
}
