//! Offline clock correction against the reference badge.
//!
//! "At the station, we also deployed an additional reference badge, which …
//! served for the other badges as a time source, with which they communicated
//! opportunistically. In effect, we were able to compute clock shifts between
//! distinct devices."
//!
//! Each [`SyncSample`] pairs a badge-local timestamp with the reference
//! badge's local timestamp at the same true instant. Fitting
//! `t_local − t_ref = offset + skew·t_ref` by least squares yields a linear
//! correction mapping any badge-local timestamp onto the reference timeline.
//! All cross-badge analyses run on reference time.

use ares_badge::records::SyncSample;
use ares_badge::telemetry::{ColumnView, SyncPayload};
use ares_simkit::stats::linear_fit;
use ares_simkit::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A fitted correction from one badge's local time to reference time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncCorrection {
    /// Offset at the reference epoch (s): `local − ref` extrapolated to t=0.
    pub offset_s: f64,
    /// Relative skew (ppm) of the badge clock against the reference.
    pub skew_ppm: f64,
    /// Number of samples the fit used.
    pub samples: usize,
    /// RMS residual of the fit (s).
    pub rms_residual_s: f64,
}

impl SyncCorrection {
    /// The identity correction (used when no sync data exists).
    #[must_use]
    pub fn identity() -> Self {
        SyncCorrection {
            offset_s: 0.0,
            skew_ppm: 0.0,
            samples: 0,
            rms_residual_s: f64::INFINITY,
        }
    }

    /// Fits a correction from sync exchanges.
    ///
    /// Returns the identity correction when fewer than two samples exist.
    #[must_use]
    pub fn fit(samples: &[SyncSample]) -> Self {
        let xs: Vec<f64> = samples
            .iter()
            .map(|s| s.t_reference.as_secs_f64())
            .collect();
        let ys: Vec<f64> = samples
            .iter()
            .map(|s| (s.t_local - s.t_reference).as_secs_f64())
            .collect();
        Self::fit_xy(&xs, &ys)
    }

    /// Fits a correction straight off a columnar sync view — the same least
    /// squares as [`SyncCorrection::fit`] on byte-identical inputs, without
    /// materializing row structs.
    #[must_use]
    pub fn fit_view(view: ColumnView<'_, SyncPayload>) -> Self {
        let xs: Vec<f64> = view
            .payloads()
            .iter()
            .map(|p| p.t_reference.as_secs_f64())
            .collect();
        let ys: Vec<f64> = view
            .iter()
            .map(|(t_local, p)| (t_local - p.t_reference).as_secs_f64())
            .collect();
        Self::fit_xy(&xs, &ys)
    }

    /// The shared least-squares tail of [`SyncCorrection::fit`] and
    /// [`SyncCorrection::fit_view`].
    fn fit_xy(xs: &[f64], ys: &[f64]) -> Self {
        if xs.len() < 2 {
            return SyncCorrection::identity();
        }
        let (offset, slope) = linear_fit(xs, ys);
        let mut sq = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let r = y - (offset + slope * x);
            sq += r * r;
        }
        SyncCorrection {
            offset_s: offset,
            skew_ppm: slope * 1e6,
            samples: xs.len(),
            rms_residual_s: (sq / xs.len() as f64).sqrt(),
        }
    }

    /// Maps a badge-local timestamp onto the reference timeline.
    ///
    /// Inverts `local = ref + offset + slope·ref`, i.e.
    /// `ref = (local − offset) / (1 + slope)`.
    #[must_use]
    pub fn to_reference(&self, t_local: SimTime) -> SimTime {
        let k = 1.0 + self.skew_ppm * 1e-6;
        SimTime::from_secs_f64((t_local.as_secs_f64() - self.offset_s) / k)
    }

    /// Maps a whole timestamp column onto the reference timeline, appending
    /// to `out` — the lane-batched form of [`SyncCorrection::to_reference`].
    ///
    /// The subtract/divide runs over fixed `[f64; LANES]` chunks so it
    /// vectorizes; per element the arithmetic is exactly `to_reference`'s,
    /// so the output timestamps are bit-identical.
    pub fn to_reference_batch(&self, ts: &[SimTime], out: &mut Vec<SimTime>) {
        use ares_simkit::lanes::{as_lanes, splat, LANES};
        out.reserve(ts.len());
        let k = 1.0 + self.skew_ppm * 1e-6;
        let (chunks, tail) = as_lanes(ts);
        for chunk in chunks {
            let mut secs = splat(0.0);
            for l in 0..LANES {
                secs[l] = (chunk[l].as_secs_f64() - self.offset_s) / k;
            }
            for s in secs {
                out.push(SimTime::from_secs_f64(s));
            }
        }
        for &t in tail {
            out.push(SimTime::from_secs_f64(
                (t.as_secs_f64() - self.offset_s) / k,
            ));
        }
    }

    /// The correction's estimate of `local − ref` at a reference instant.
    #[must_use]
    pub fn shift_at(&self, t_ref: SimTime) -> SimDuration {
        SimDuration::from_secs_f64(self.offset_s + self.skew_ppm * 1e-6 * t_ref.as_secs_f64())
    }
}

/// Incremental least-squares fit of `local − ref = offset + skew·ref`:
/// running sums only, O(1) memory and per-sample cost — the streaming
/// counterpart of [`SyncCorrection::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IncrementalSync {
    n: f64,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
}

impl IncrementalSync {
    /// Folds in one sync exchange.
    pub fn update(&mut self, s: &SyncSample) {
        let x = s.t_reference.as_secs_f64();
        let y = (s.t_local - s.t_reference).as_secs_f64();
        self.n += 1.0;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
    }

    /// Samples folded so far.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.n as usize
    }

    /// Current `(offset_s, skew_ppm)` estimate; identity until two samples.
    #[must_use]
    pub fn estimate(&self) -> (f64, f64) {
        if self.n < 2.0 {
            return (if self.n > 0.0 { self.sy / self.n } else { 0.0 }, 0.0);
        }
        let det = self.n * self.sxx - self.sx * self.sx;
        if det.abs() < 1e-9 {
            return (self.sy / self.n, 0.0);
        }
        let slope = (self.n * self.sxy - self.sx * self.sy) / det;
        let offset = (self.sy - slope * self.sx) / self.n;
        (offset, slope * 1e6)
    }

    /// Maps a local timestamp to reference time with the current estimate.
    #[must_use]
    pub fn to_reference(&self, t_local: SimTime) -> SimTime {
        let (offset, skew_ppm) = self.estimate();
        let k = 1.0 + skew_ppm * 1e-6;
        SimTime::from_secs_f64((t_local.as_secs_f64() - offset) / k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ares_simkit::clock::DriftingClock;

    fn samples_from_clocks(
        badge: &DriftingClock,
        reference: &DriftingClock,
        hours: &[f64],
    ) -> Vec<SyncSample> {
        hours
            .iter()
            .map(|&h| {
                let t = SimTime::from_hours_true(h);
                SyncSample {
                    t_local: badge.local_time(t),
                    t_reference: reference.local_time(t),
                }
            })
            .collect()
    }

    #[test]
    fn recovers_offset_and_skew() {
        let badge = DriftingClock::new(SimDuration::from_secs_f64(3.2), 55.0);
        let reference = DriftingClock::new(SimDuration::ZERO, 0.0);
        let hours: Vec<f64> = (0..40).map(|i| i as f64 * 8.0).collect();
        let s = samples_from_clocks(&badge, &reference, &hours);
        let corr = SyncCorrection::fit(&s);
        assert!(
            (corr.offset_s - 3.2).abs() < 0.01,
            "offset {}",
            corr.offset_s
        );
        assert!((corr.skew_ppm - 55.0).abs() < 0.5, "skew {}", corr.skew_ppm);
        assert!(corr.rms_residual_s < 1e-6);
    }

    #[test]
    fn correction_aligns_to_reference_timeline() {
        let badge = DriftingClock::new(SimDuration::from_secs_f64(-2.0), -40.0);
        let reference = DriftingClock::new(SimDuration::from_millis(50), 0.3);
        let hours: Vec<f64> = (0..60).map(|i| i as f64 * 5.0).collect();
        let corr = SyncCorrection::fit(&samples_from_clocks(&badge, &reference, &hours));
        // Mapping a local stamp through the correction should land on the
        // reference badge's local time for the same true instant.
        for h in [10.0, 150.0, 300.0] {
            let t = SimTime::from_hours_true(h);
            let est_ref = corr.to_reference(badge.local_time(t));
            let true_ref = reference.local_time(t);
            assert!(
                (est_ref - true_ref).abs() < SimDuration::from_millis(20),
                "at {h} h: {} vs {}",
                est_ref,
                true_ref
            );
        }
    }

    #[test]
    fn too_few_samples_gives_identity() {
        let corr = SyncCorrection::fit(&[]);
        assert_eq!(corr.samples, 0);
        let t = SimTime::from_secs(1234);
        assert_eq!(corr.to_reference(t), t);
    }

    #[test]
    fn noisy_samples_still_fit_well() {
        use rand::Rng;
        let mut rng = ares_simkit::rng::SeedTree::new(3).stream("sync-noise");
        let badge = DriftingClock::new(SimDuration::from_secs_f64(1.0), 20.0);
        let reference = DriftingClock::ideal();
        let samples: Vec<SyncSample> = (0..200)
            .map(|i| {
                let t = SimTime::from_hours_true(i as f64 * 1.5);
                // ±5 ms exchange jitter.
                let jitter = SimDuration::from_micros(rng.gen_range(-5000..5000));
                SyncSample {
                    t_local: badge.local_time(t) + jitter,
                    t_reference: reference.local_time(t),
                }
            })
            .collect();
        let corr = SyncCorrection::fit(&samples);
        assert!((corr.offset_s - 1.0).abs() < 0.01);
        assert!((corr.skew_ppm - 20.0).abs() < 0.5);
        assert!(corr.rms_residual_s < 0.01);
    }
}
